#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>

#include "common/csv.hpp"

namespace sg {

namespace {

/// Minimal JSON string escaping (names are ASCII-ish; be safe anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds -> microseconds with exact 3-decimal precision (integer
/// arithmetic: no float rounding, so output is byte-stable).
std::string fmt_us(SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string fmt_us(TimePoint p) { return fmt_us(p.ns()); }
std::string fmt_us(Duration d) { return fmt_us(d.ns()); }

std::string fmt_us_d(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e3);
  return buf;
}

/// Stable thread id for a container (client endpoint -1 maps to 1).
long long tid_of(int container) { return container + 2; }

std::map<int, std::string> name_map(const TraceReport& report) {
  std::map<int, std::string> names;
  names[-1] = "client";
  for (const TraceContainerInfo& c : report.containers) names[c.id] = c.name;
  return names;
}

std::string name_of(const std::map<int, std::string>& names, int container) {
  const auto it = names.find(container);
  if (it != names.end()) return it->second;
  std::string fallback = "c";
  fallback += std::to_string(container);
  return fallback;
}

}  // namespace

std::string chrome_trace_json(const TraceReport& report) {
  const std::map<int, std::string> names = name_map(report);
  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto event = [&](const std::string& body) {
    if (!first) out += ',';
    first = false;
    out += '{';
    out += body;
    out += '}';
  };

  // Track metadata: process names + per-container thread names. std::map
  // iteration keeps the order stable.
  event("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"services\"}");
  event("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"network\"}");
  event("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"controllers\"}");
  for (const auto& [id, name] : names) {
    for (int pid = 0; pid <= 2; ++pid) {
      event("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
            std::to_string(pid) +
            ",\"tid\":" + std::to_string(tid_of(id)) +
            ",\"args\":{\"name\":\"" + json_escape(name) + "\"}");
    }
  }

  for (const RequestTrace& tr : report.traces) {
    const std::string req = std::to_string(tr.id);
    for (const TraceSpan& s : tr.spans) {
      std::string body;
      switch (s.kind) {
        case SpanKind::kVisit:
          body = "\"name\":\"" + json_escape(name_of(names, s.container)) +
                 "\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
                 std::to_string(tid_of(s.container)) +
                 ",\"ts\":" + fmt_us(s.begin) + ",\"dur\":" + fmt_us(s.wall()) +
                 ",\"args\":{\"req\":" + req +
                 ",\"boost_active_us\":" + fmt_us_d(s.boost_active_ns) + "}";
          break;
        case SpanKind::kExec:
          body = "\"name\":\"exec\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
                 std::to_string(tid_of(s.container)) +
                 ",\"ts\":" + fmt_us(s.begin) + ",\"dur\":" + fmt_us(s.wall()) +
                 ",\"args\":{\"req\":" + req +
                 ",\"cpu_served_us\":" + fmt_us_d(s.cpu_served_ns) +
                 ",\"cpu_queue_us\":" +
                 fmt_us_d(static_cast<double>(s.wall().ns()) - s.cpu_served_ns) +
                 "}";
          break;
        case SpanKind::kConnWait:
          body = "\"name\":\"conn-wait\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
                 std::to_string(tid_of(s.container)) +
                 ",\"ts\":" + fmt_us(s.begin) + ",\"dur\":" + fmt_us(s.wall()) +
                 ",\"args\":{\"req\":" + req + "}";
          break;
        case SpanKind::kNetHop:
          body = std::string("\"name\":\"") +
                 (s.is_response ? "rpc-response" : "rpc") +
                 "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
                 std::to_string(tid_of(s.container)) +
                 ",\"ts\":" + fmt_us(s.begin) + ",\"dur\":" + fmt_us(s.wall()) +
                 ",\"args\":{\"req\":" + req + ",\"src\":\"" +
                 json_escape(name_of(names, s.src_container)) + "\"}";
          break;
      }
      event(body);
    }
  }

  for (const DecisionEvent& d : report.decisions) {
    event(std::string("\"name\":\"") + d.controller + " " +
          to_string(d.kind) + "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\"tid\":" +
          std::to_string(tid_of(d.container)) + ",\"ts\":" + fmt_us(d.at) +
          ",\"args\":{\"amount\":" + std::to_string(d.amount) +
          ",\"node\":" + std::to_string(d.node) + "}");
  }

  out += "]}";
  return out;
}

std::vector<BreakdownRow> latency_breakdown(const TraceReport& report) {
  struct Acc {
    std::uint64_t visits = 0;
    double visit_wall = 0.0;
    double exec_wall = 0.0;
    double served = 0.0;
    double conn_wait = 0.0;
    double boost = 0.0;
    double net_in = 0.0;
    std::uint64_t net_in_hops = 0;
  };
  std::map<int, Acc> acc;  // ordered: stable row order by container id
  for (const RequestTrace& tr : report.traces) {
    for (const TraceSpan& s : tr.spans) {
      Acc& a = acc[s.container];
      switch (s.kind) {
        case SpanKind::kVisit:
          ++a.visits;
          a.visit_wall += static_cast<double>(s.wall().ns());
          a.boost += s.boost_active_ns;
          break;
        case SpanKind::kExec:
          a.exec_wall += static_cast<double>(s.wall().ns());
          a.served += s.cpu_served_ns;
          break;
        case SpanKind::kConnWait:
          a.conn_wait += static_cast<double>(s.wall().ns());
          break;
        case SpanKind::kNetHop:
          if (!s.is_response) {
            a.net_in += static_cast<double>(s.wall().ns());
            ++a.net_in_hops;
          }
          break;
      }
    }
  }

  const std::map<int, std::string> names = name_map(report);
  std::vector<BreakdownRow> rows;
  for (const auto& [container, a] : acc) {
    if (a.visits == 0) continue;  // client endpoint / hop-only entries
    BreakdownRow r;
    r.container = container;
    r.service = name_of(names, container);
    r.visits = a.visits;
    r.avg_visit_us = a.visit_wall / static_cast<double>(a.visits) / 1e3;
    if (a.visit_wall > 0.0) {
      const double downstream =
          std::max(0.0, a.visit_wall - a.exec_wall - a.conn_wait);
      r.exec_frac = a.served / a.visit_wall;
      r.cpu_queue_frac = std::max(0.0, a.exec_wall - a.served) / a.visit_wall;
      r.conn_wait_frac = a.conn_wait / a.visit_wall;
      r.downstream_frac = downstream / a.visit_wall;
      r.boost_frac = a.boost / a.visit_wall;
    }
    if (a.net_in_hops > 0) {
      r.avg_net_in_us = a.net_in / static_cast<double>(a.net_in_hops) / 1e3;
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

TablePrinter breakdown_table(const TraceReport& report) {
  TablePrinter t({"service", "visits", "avg visit (us)", "exec", "cpu queue",
                  "conn wait", "downstream", "boost active", "net in (us)"});
  auto pct = [](double f) { return fmt_double(100.0 * f, 1) + "%"; };
  for (const BreakdownRow& r : latency_breakdown(report)) {
    t.add_row({r.service, std::to_string(r.visits),
               fmt_double(r.avg_visit_us, 1), pct(r.exec_frac),
               pct(r.cpu_queue_frac), pct(r.conn_wait_frac),
               pct(r.downstream_frac), pct(r.boost_frac),
               fmt_double(r.avg_net_in_us, 1)});
  }
  return t;
}

std::vector<CriticalPath> critical_paths(const TraceReport& report,
                                         std::size_t k) {
  // Slowest k kept traces, latency desc (id asc on ties: deterministic).
  std::vector<std::size_t> order(report.traces.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (report.traces[a].latency != report.traces[b].latency) {
      return report.traces[a].latency > report.traces[b].latency;
    }
    return report.traces[a].id < report.traces[b].id;
  });
  if (order.size() > k) order.resize(k);

  std::vector<CriticalPath> out;
  for (const std::size_t ti : order) {
    const RequestTrace& tr = report.traces[ti];
    std::vector<TraceSpan> spans;
    for (const TraceSpan& s : tr.spans) {
      if (s.kind != SpanKind::kVisit) spans.push_back(s);
    }
    CriticalPath cp;
    cp.id = tr.id;
    cp.latency = tr.latency;

    // Greedy interval cover: at each instant follow the covering span that
    // extends furthest; uncovered stretches (possible only for parallel
    // fan-out) are reported as gaps rather than silently attributed.
    TimePoint t = tr.begin;
    const TimePoint end = tr.end;
    while (t < end) {
      const TraceSpan* best = nullptr;
      for (const TraceSpan& s : spans) {
        if (s.begin <= t && s.end > t && (best == nullptr || s.end > best->end)) {
          best = &s;
        }
      }
      if (best == nullptr) {
        TimePoint next = end;
        for (const TraceSpan& s : spans) {
          if (s.begin > t && s.begin < next) next = s.begin;
        }
        cp.gap_ns += next - t;
        t = next;
        continue;
      }
      const TimePoint seg_end = std::min(best->end, end);
      const Duration d = seg_end - t;
      switch (best->kind) {
        case SpanKind::kExec: {
          const double frac =
              best->wall() > Duration::zero()
                  ? std::clamp(best->cpu_served_ns /
                                   static_cast<double>(best->wall().ns()),
                               0.0, 1.0)
                  : 0.0;
          const Duration served = Duration{
              std::llround(static_cast<double>(d.ns()) * frac)};
          cp.exec_ns += served;
          cp.queue_ns += d - served;
          break;
        }
        case SpanKind::kConnWait:
          cp.queue_ns += d;
          break;
        case SpanKind::kNetHop:
          cp.net_ns += d;
          break;
        case SpanKind::kVisit:
          break;  // filtered out above
      }
      cp.segments.push_back({best->kind, best->container, t, seg_end});
      t = seg_end;
    }
    out.push_back(std::move(cp));
  }
  return out;
}

TablePrinter critical_path_table(const TraceReport& report, std::size_t k) {
  TablePrinter t({"request", "latency", "exec", "cpu+conn queue", "net",
                  "gap", "segments"});
  for (const CriticalPath& cp : critical_paths(report, k)) {
    t.add_row({std::to_string(cp.id), format_time(cp.latency),
               format_time(cp.exec_ns), format_time(cp.queue_ns),
               format_time(cp.net_ns), format_time(cp.gap_ns),
               std::to_string(cp.segments.size())});
  }
  return t;
}

}  // namespace sg
