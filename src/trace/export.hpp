// Trace exporters: Chrome trace_event JSON, per-service latency-breakdown
// tables, and critical-path extraction.
//
// All output is deterministic for a given TraceReport: fixed-precision
// number formatting and stable iteration order, so a fixed seed produces
// byte-identical artifacts (integration_trace_test asserts this).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "trace/trace.hpp"

namespace sg {

/// Chrome trace_event JSON (load in chrome://tracing or Perfetto).
/// Track layout: pid 0 = services (one thread per container, visit slices
/// with nested exec/conn-wait slices), pid 1 = network (hop slices on the
/// destination's thread), pid 2 = controllers (instant decision events).
/// Timestamps are microseconds with fixed 3-decimal (ns) precision.
std::string chrome_trace_json(const TraceReport& report);

/// Per-service latency decomposition averaged over the kept traces.
/// Fractions are of total visit wall time at that service.
struct BreakdownRow {
  int container = -1;
  std::string service;
  std::uint64_t visits = 0;
  double avg_visit_us = 0.0;   // mean wall time per visit
  double exec_frac = 0.0;      // CPU actually served (core share held)
  double cpu_queue_frac = 0.0; // runnable but no core share
  double conn_wait_frac = 0.0; // blocked on a connection-pool slot
  double downstream_frac = 0.0;// waiting on child RPCs (net + child time)
  double boost_frac = 0.0;     // running above base frequency
  double avg_net_in_us = 0.0;  // mean inbound request-hop transit
};

std::vector<BreakdownRow> latency_breakdown(const TraceReport& report);

/// latency_breakdown rendered via TablePrinter (one row per service).
TablePrinter breakdown_table(const TraceReport& report);

/// One segment of a request's critical path (clipped to the covered
/// interval, so segments tile [trace.begin, trace.end] minus gaps).
struct CriticalSegment {
  SpanKind kind = SpanKind::kExec;
  int container = -1;
  TimePoint begin;
  TimePoint end;
};

struct CriticalPath {
  RequestId id = 0;
  Duration latency;
  Duration exec_ns;   // served CPU on the path
  Duration queue_ns;  // cpu-queue + conn-wait on the path
  Duration net_ns;    // wire transits on the path
  Duration gap_ns;    // uncovered time (non-sequential structure)
  std::vector<CriticalSegment> segments;
};

/// Critical paths of the k slowest kept requests (greedy interval cover
/// over exec/conn-wait/net spans; exact for sequential task graphs).
std::vector<CriticalPath> critical_paths(const TraceReport& report,
                                         std::size_t k);

/// critical_paths rendered via TablePrinter.
TablePrinter critical_path_table(const TraceReport& report, std::size_t k);

}  // namespace sg
