#include "trace/trace.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"
#include "common/shard_context.hpp"

namespace sg {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kVisit: return "visit";
    case SpanKind::kExec: return "exec";
    case SpanKind::kConnWait: return "conn-wait";
    case SpanKind::kNetHop: return "net-hop";
  }
  return "?";
}

const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kCoreGrant: return "core-grant";
    case DecisionKind::kCoreRevoke: return "core-revoke";
    case DecisionKind::kFreqBoost: return "freq-boost";
    case DecisionKind::kFreqLower: return "freq-lower";
    case DecisionKind::kUpscaleStamp: return "upscale-stamp";
    case DecisionKind::kAllocSet: return "alloc-set";
  }
  return "?";
}

namespace {

/// SplitMix64 finalizer: a high-quality 64-bit mix, evaluated on the
/// request id only — sampling must never touch the simulator RNG or the
/// traced/untraced event sequences would diverge.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

TraceSink::TraceSink(TraceOptions options) : options_(options) {
  SG_ASSERT_MSG(options_.head_sample_rate >= 0.0 &&
                    options_.head_sample_rate <= 1.0,
                "head_sample_rate outside [0, 1]");
  SG_ASSERT_MSG(options_.capacity > 0, "trace capacity must be positive");
}

bool TraceSink::head_sampled(RequestId id) const {
  if (options_.head_sample_rate >= 1.0) return true;
  if (options_.head_sample_rate <= 0.0) return false;
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(mix64(id ^ options_.sample_salt) >> 11) *
                   0x1.0p-53;
  return u < options_.head_sample_rate;
}

void TraceSink::configure_shards(int shard_count, int home_shard) {
  SG_ASSERT_MSG(shard_count >= 1, "shard count must be >= 1");
  sharded_ = shard_count > 1;
  home_shard_ = home_shard;
  shard_logs_.assign(static_cast<std::size_t>(shard_count), {});
}

void TraceSink::compact_shard_logs() {
  for (ShardLog& log : shard_logs_) {
    for (const TraceSpan& span : log.spans) {
      const auto it = pending_.find(span.request_id);
      if (it == pending_.end()) continue;  // sampled out / overflow
      it->second.spans.push_back(span);
      ++stats_.spans_recorded;
    }
    log.spans.clear();
    for (const DecisionEvent& e : log.decisions) record_decision(e);
    log.decisions.clear();
  }
}

bool TraceSink::begin_request(RequestId id, TimePoint now) {
  SG_ASSERT_MSG(!sharded_ || current_shard() == home_shard_,
                "request lifecycle must run on the home shard");
  if (pending_.size() >= options_.max_pending) {
    ++stats_.pending_overflow;
    return false;
  }
  RequestTrace& t = pending_[id];
  t.id = id;
  t.begin = now;
  t.head_sampled = head_sampled(id);
  ++stats_.requests_recorded;
  return true;
}

void TraceSink::add_span(const TraceSpan& span) {
  if (sharded_ && current_shard() != home_shard_) {
    // Off-home shards may not read pending_ (the home shard owns it).
    // Buffer unconditionally; compact_shard_logs() filters at the barrier.
    shard_logs_[static_cast<std::size_t>(current_shard())].spans.push_back(
        span);
    return;
  }
  const auto it = pending_.find(span.request_id);
  if (it == pending_.end()) return;  // not recorded (sampled out / overflow)
  it->second.spans.push_back(span);
  ++stats_.spans_recorded;
}

void TraceSink::end_request(RequestId id, TimePoint now, Duration latency) {
  SG_ASSERT_MSG(!sharded_ || current_shard() == home_shard_,
                "request lifecycle must run on the home shard");
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  RequestTrace t = std::move(it->second);
  pending_.erase(it);
  t.end = now;
  t.latency = latency;
  t.slo_violation = slo_ > Duration::zero() && latency > slo_;
  const bool keep =
      t.head_sampled || (options_.keep_slo_violators && t.slo_violation);
  if (!keep) {
    ++stats_.requests_discarded;
    return;
  }
  ++stats_.requests_kept;
  if (t.slo_violation) ++stats_.slo_violators_kept;
  kept_.push_back(std::move(t));
  while (kept_.size() > options_.capacity) {
    kept_.pop_front();
    ++stats_.traces_evicted;
  }
}

void TraceSink::abandon_request(RequestId id) {
  SG_ASSERT_MSG(!sharded_ || current_shard() == home_shard_,
                "request lifecycle must run on the home shard");
  if (pending_.erase(id) > 0) ++stats_.requests_abandoned;
}

void TraceSink::record_decision(const DecisionEvent& e) {
  if (decisions_.size() >= options_.max_decisions) {
    ++stats_.decisions_dropped;
    return;
  }
  decisions_.push_back(e);
  ++stats_.decisions_recorded;
}

void TraceSink::add_decision(const DecisionEvent& e) {
  if (sharded_) {
    // All decisions route through the shard logs (home shard included) so
    // the max_decisions cap is applied in one deterministic merge order.
    shard_logs_[static_cast<std::size_t>(current_shard())].decisions.push_back(
        e);
    return;
  }
  record_decision(e);
}

namespace {

/// Full-content span key: spans with equal timestamps still sort
/// identically at any shard count because every payload field is part of
/// the key (and payloads are bit-identical across modes by construction).
bool span_content_less(const TraceSpan& a, const TraceSpan& b) {
  return std::tie(a.begin, a.end, a.kind, a.container, a.src_container,
                  a.is_response, a.cpu_served_ns, a.boost_active_ns) <
         std::tie(b.begin, b.end, b.kind, b.container, b.src_container,
                  b.is_response, b.cpu_served_ns, b.boost_active_ns);
}

}  // namespace

TraceReport TraceSink::report() const {
  TraceReport r;
  r.traces.assign(kept_.begin(), kept_.end());
  // Canonicalize: recording order differs between serial execution (global
  // event order) and sharded execution (window + barrier-merge order), so
  // exports sort by content instead. Applied in every mode so shard counts
  // 1 and N produce byte-identical artifacts.
  for (RequestTrace& t : r.traces) {
    std::stable_sort(t.spans.begin(), t.spans.end(), span_content_less);
  }
  r.decisions = decisions_;
  // Same-timestamp decisions on one node keep their event order (stable
  // sort; one node = one shard = one deterministic sequence); across nodes
  // the node id breaks the tie.
  std::stable_sort(r.decisions.begin(), r.decisions.end(),
                   [](const DecisionEvent& a, const DecisionEvent& b) {
                     return std::tie(a.at, a.node) < std::tie(b.at, b.node);
                   });
  r.containers = containers_;
  r.stats = stats_;
  r.slo = slo_;
  return r;
}

}  // namespace sg
