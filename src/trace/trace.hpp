// Per-request distributed tracing with exact slack attribution.
//
// SurgeGuard's premise is per-packet slack accounting at ingress; this
// subsystem makes that slack inspectable per request. Every traced request
// carries a `traced` bit across RPC hops (the trace context); the
// instrumented layers record spans against a central TraceSink:
//
//   kNetHop   — one wire transit (send stamp -> delivery), request or
//               response leg, recorded by sg::net.
//   kExec     — one CPU segment of a service visit (submit -> completion)
//               under processor sharing. `cpu_served_ns` carries the
//               integrated core share over the segment, so
//               wall = served + cpu-queue decomposes exactly.
//   kConnWait — time blocked on a connection-pool slot (the hidden
//               dependency of paper Fig. 5b).
//   kVisit    — the whole stay at one service (ingress -> reply), enclosing
//               its exec/conn-wait segments; `boost_active_ns` is the time
//               the container ran above base frequency (FirstResponder).
//
// For sequential task graphs the segments tile the request exactly:
//   e2e latency == sum(kExec walls) + sum(kConnWait) + sum(kNetHop),
// to the nanosecond (integration_trace_test asserts this).
//
// Controllers additionally log DecisionEvents (core grants/revokes,
// frequency boosts, upscale stamps) so a trace shows not only where slack
// went but which decision responded.
//
// Determinism: head sampling hashes the request id (SplitMix64) — it NEVER
// draws from the simulator RNG — and the sink schedules no events, so a
// run's event sequence and RNG streams are bit-identical whether tracing is
// enabled, disabled, or sampled differently. Exported artifacts are
// byte-identical for a fixed seed. Tracing disabled costs one null-pointer
// check at each instrumentation site.
//
// Memory is O(capacity + in-flight): kept traces live in a fixed-capacity
// ring (oldest evicted), in-flight buffers are bounded by max_pending, and
// decision events by max_decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace sg {

using RequestId = std::uint64_t;

enum class SpanKind { kVisit, kExec, kConnWait, kNetHop };

const char* to_string(SpanKind k);

struct TraceSpan {
  RequestId request_id = 0;
  SpanKind kind = SpanKind::kExec;
  /// Container the time is attributed to (destination for net hops);
  /// kClientEndpoint (-1) for the client.
  int container = -1;
  /// Sending container (net hops only).
  int src_container = -1;
  TimePoint begin;
  TimePoint end;
  /// Net hops: response leg.
  bool is_response = false;
  /// kExec: integrated core share over [begin, end] — the time the job
  /// effectively held a core. wall minus this is CPU-queue time.
  double cpu_served_ns = 0.0;
  /// kVisit: time the serving container spent above base frequency.
  double boost_active_ns = 0.0;

  Duration wall() const { return end - begin; }
};

enum class DecisionKind {
  kCoreGrant,     // amount = cores granted
  kCoreRevoke,    // amount = cores revoked
  kFreqBoost,     // amount = resulting MHz
  kFreqLower,     // amount = resulting MHz
  kUpscaleStamp,  // amount = hint depth stamped on outgoing RPCs
  kAllocSet,      // amount = resulting cores (centralized allocators)
};

const char* to_string(DecisionKind k);

struct DecisionEvent {
  TimePoint at;
  DecisionKind kind = DecisionKind::kCoreGrant;
  /// Static string: "escalator", "first-responder", "parties", ...
  const char* controller = "";
  int node = -1;
  int container = -1;
  int amount = 0;
};

struct TraceOptions {
  /// Head-sampling rate in [0, 1]: fraction of requests recorded AND kept
  /// unconditionally. Pure hash of the request id — no RNG draws.
  double head_sample_rate = 1.0;
  /// Tail sampling: record every request, keep those whose e2e latency
  /// exceeds the SLO threshold even when not head-sampled.
  bool keep_slo_violators = true;
  /// Kept-trace ring capacity (oldest evicted beyond this).
  std::size_t capacity = 4096;
  /// In-flight request buffers; begin_request beyond this is refused.
  std::size_t max_pending = 1u << 16;
  /// Decision-event cap (events beyond it are counted, not stored).
  std::size_t max_decisions = 1u << 20;
  /// Salt for the head-sampling hash (fixed default keeps runs comparable).
  std::uint64_t sample_salt = 0x53757267;
};

/// One kept request: its spans in recording order plus keep provenance.
struct RequestTrace {
  RequestId id = 0;
  TimePoint begin;
  TimePoint end;
  Duration latency;
  bool head_sampled = false;
  bool slo_violation = false;
  std::vector<TraceSpan> spans;
};

struct TraceStats {
  std::uint64_t requests_recorded = 0;  // began buffering spans
  std::uint64_t requests_kept = 0;      // survived sampling at completion
  std::uint64_t requests_discarded = 0; // completed, sampled out
  std::uint64_t requests_abandoned = 0; // dropped by the client
  std::uint64_t pending_overflow = 0;   // refused: too many in flight
  std::uint64_t traces_evicted = 0;     // ring overflow
  std::uint64_t spans_recorded = 0;
  std::uint64_t slo_violators_kept = 0;
  std::uint64_t decisions_recorded = 0;
  std::uint64_t decisions_dropped = 0;
};

/// Name/placement metadata exporters use to label containers.
struct TraceContainerInfo {
  int id = -1;
  int node = -1;
  std::string name;
};

/// Detached, self-contained snapshot of a sink — the sink (and the whole
/// testbed) can be torn down before exporters run.
struct TraceReport {
  std::vector<RequestTrace> traces;  // completion order
  std::vector<DecisionEvent> decisions;
  std::vector<TraceContainerInfo> containers;
  TraceStats stats;
  /// SLO threshold in force (zero = tail sampling off).
  Duration slo;
};

class TraceSink {
 public:
  explicit TraceSink(TraceOptions options);

  const TraceOptions& options() const { return options_; }

  /// Deterministic head-sampling verdict for a request id (pure hash).
  bool head_sampled(RequestId id) const;

  /// Whether spans for this request should be collected at all: head
  /// sampled, or tail sampling may keep it at completion.
  bool should_record(RequestId id) const {
    return options_.keep_slo_violators || head_sampled(id);
  }

  /// Tail-sampling threshold; completions with latency > slo are kept
  /// regardless of head sampling. Zero disables (set once QoS is known).
  void set_slo_threshold(Duration slo) { slo_ = slo; }
  Duration slo_threshold() const { return slo_; }

  /// Opens a span buffer for a request. Returns false (and records nothing
  /// for this request) when max_pending in-flight buffers already exist.
  bool begin_request(RequestId id, TimePoint now);

  /// Appends a span to its request's buffer; ignored (O(1)) when the
  /// request is not being recorded.
  void add_span(const TraceSpan& span);

  /// Completes a request: applies the keep decision (head sample || SLO
  /// violation) and moves the buffer into the kept ring or discards it.
  void end_request(RequestId id, TimePoint now, Duration latency);

  /// Drops an in-flight buffer (client abandoned the request).
  void abandon_request(RequestId id);

  void add_decision(const DecisionEvent& e);

  /// Container metadata for exporters (typically set once before report()).
  void set_container_info(std::vector<TraceContainerInfo> info) {
    containers_ = std::move(info);
  }

  const TraceStats& stats() const { return stats_; }
  std::size_t kept_count() const { return kept_.size(); }
  std::size_t pending_count() const { return pending_.size(); }

  /// --- sharded execution (DESIGN.md §8) ---
  ///
  /// The request lifecycle (begin/end/abandon) runs on the *home* shard —
  /// the one owning the client endpoint — which also mutates the pending
  /// map and kept ring directly in add_span. Other shards append spans and
  /// decisions to private per-shard logs; compact_shard_logs() merges them
  /// in shard order at every window barrier, before any same-window
  /// end_request could run (a response crosses the mailbox, so it always
  /// completes in a *later* window than the spans it follows).

  /// Enables per-shard logging. Called by Simulator::configure_shards /
  /// enable_tracing; `home_shard` is the shard owning the client endpoint.
  void configure_shards(int shard_count, int home_shard);

  /// Barrier hook: replays per-shard logs through the serial record paths.
  void compact_shard_logs();

  /// Snapshot for export; in-flight buffers are not included. Span order
  /// within a trace and decision order are canonicalized (content-keyed
  /// sorts), so the report is identical for any shard count.
  TraceReport report() const;

 private:
  struct ShardLog {
    std::vector<TraceSpan> spans;
    std::vector<DecisionEvent> decisions;
  };

  /// Serial decision-record path (cap + stats), shared by add_decision and
  /// the barrier compaction.
  void record_decision(const DecisionEvent& e);

  TraceOptions options_;
  Duration slo_;
  std::unordered_map<RequestId, RequestTrace> pending_;
  std::deque<RequestTrace> kept_;
  std::vector<DecisionEvent> decisions_;
  std::vector<TraceContainerInfo> containers_;
  TraceStats stats_;
  bool sharded_ = false;
  int home_shard_ = 0;
  std::vector<ShardLog> shard_logs_;
};

}  // namespace sg
