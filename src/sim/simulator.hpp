// Discrete-event simulator core.
//
// Deterministic by construction: one Simulator per experiment replication,
// with its own clock(s), event queue(s), and RNG. Two execution modes share
// this interface:
//
//  - Single shard (default): one event queue, one clock, one thread —
//    exactly the classic loop.
//  - Sharded (configure_shards with N > 1): per-node-group shards, each with
//    its own queue and clock, executed in parallel under conservative
//    time-window synchronization by ShardCoordinator (DESIGN.md §8).
//    Cross-shard events go through schedule_cross_shard() into a
//    deterministic mailbox; the merged event order is a function of packet
//    identity, not thread timing, so results are bit-identical to the
//    single-shard run.
//
// All scheduling calls are routed through the calling thread's current shard
// (common/shard_context.hpp); with one shard that routing collapses to the
// historical behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/shard_context.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard_guard.hpp"

namespace sg {

class TraceSink;
struct TraceOptions;
class ShardCoordinator;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return shards_[shard_index()].now; }
  /// The clock as a strong timestamp (quantity layer, DESIGN.md §9).
  TimePoint now_point() const { return TimePoint::at(now()); }
  Rng& rng() { return rng_; }

  /// Schedules a callback at absolute time t (clamped to now for past times,
  /// so "immediate" follow-ups from within a handler are legal).
  EventId schedule_at(SimTime t, EventQueue::Callback cb);

  /// schedule_at with an explicit same-timestamp tie-break rank (see
  /// EventQueue); used by Network so delivery order is canonical.
  EventId schedule_at_ranked(SimTime t, std::uint64_t rank,
                             EventQueue::Callback cb);

  /// Schedules a callback `delay` from now (delay < 0 clamps to 0).
  EventId schedule_after(SimTime delay, EventQueue::Callback cb);

  // Strong-typed equivalents: migrated call sites pass TimePoint/Duration
  // directly instead of raw nanosecond counts.
  EventId schedule_at(TimePoint t, EventQueue::Callback cb) {
    return schedule_at(t.ns(), std::move(cb));
  }
  EventId schedule_after(Duration delay, EventQueue::Callback cb) {
    return schedule_after(delay.ns(), std::move(cb));
  }

  /// Cancels a pending event (no-op for fired/unknown handles). The event
  /// must live on the calling shard — which it does for every handle the
  /// caller could legally hold, since handles never cross shards.
  bool cancel(EventId id) {
    SG_SHARD_GUARD_CHECK(shard_index());
    return shards_[shard_index()].queue.cancel(id);
  }

  /// Processes one event on the current shard; returns false when empty.
  bool step();

  /// Runs events with time <= end; the clock finishes exactly at `end` even
  /// if the queue drains early (so time-integrated statistics are exact).
  /// With multiple shards this delegates to the ShardCoordinator.
  void run_until(SimTime end);

  /// Runs until the event queue is empty (single-shard only).
  void run_to_completion();

  std::uint64_t events_processed() const;
  std::size_t events_pending() const;

  /// --- sharded execution (DESIGN.md §8) ---

  /// Splits the simulator into `shard_count` independently clocked event
  /// loops. `shard_of_node[n]` maps node n to its owning shard; `lookahead`
  /// is the minimum cross-shard wire latency (conservative-sync window).
  /// Must be called before anything is scheduled. With shard_count == 1 only
  /// the node map is recorded and execution stays on the classic path.
  void configure_shards(int shard_count, std::vector<int> shard_of_node,
                        SimTime lookahead);

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Shard owning `node`. Negative node ids (the client endpoint) live with
  /// node 0, whose shard also hosts the load generator and trace bookkeeping.
  int shard_of_node(int node) const;

  /// Posts an event into another shard's queue via the deterministic
  /// mailbox. `t` must respect the lookahead guarantee (asserted): it is at
  /// least the sending shard's clock plus the configured lookahead.
  void schedule_cross_shard(int dst_shard, SimTime t, std::uint64_t rank,
                            EventQueue::Callback cb);

  /// Class of a periodic tick, used by fault injection to stall specific
  /// consumers (controller decision loops) without touching others (metric
  /// publication).
  enum class TickClass { kDefault, kController };

  /// Registers a periodic tick: fn runs every `period` starting at `start`,
  /// until it returns false. Used for controller decision loops. The chain
  /// stays on the shard that was current when this was called.
  ///
  /// When a tick gate is installed and vetoes a firing, fn is skipped for
  /// that period (the tick is "missed") but the chain keeps rescheduling —
  /// this models a stalled controller that resumes after the stall window.
  void schedule_periodic(SimTime start, SimTime period,
                         std::function<bool()> fn,
                         TickClass tick_class = TickClass::kDefault);

  /// Strong-typed equivalent of schedule_periodic.
  void schedule_periodic(TimePoint start, Duration period,
                         std::function<bool()> fn,
                         TickClass tick_class = TickClass::kDefault) {
    schedule_periodic(start.ns(), period.ns(), std::move(fn), tick_class);
  }

  /// Strong-typed equivalent of run_until.
  void run_until(TimePoint end) { run_until(end.ns()); }

  /// Installs the periodic-tick gate (nullptr clears it). The gate returns
  /// false to veto a firing of the given class. Installed by the fault
  /// injector; at most one gate exists per simulator. The gate must be a
  /// pure function of immutable state and the calling shard's clock — it is
  /// evaluated concurrently from all shards.
  void set_tick_gate(std::function<bool(TickClass)> gate) {
    tick_gate_ = std::move(gate);
  }

  /// Periodic firings vetoed by the tick gate so far (summed over shards).
  std::uint64_t ticks_stalled() const;

  /// --- tracing (sg::trace) ---
  ///
  /// The simulator owns the trace sink so every layer holding a Simulator&
  /// (network, application, containers, controllers) reaches it without
  /// extra plumbing. The sink never schedules events or draws from the RNG,
  /// so enabling tracing leaves the event sequence bit-identical.

  /// Installs a sink (replacing any previous one); returns it for further
  /// configuration (SLO threshold, container metadata).
  TraceSink& enable_tracing(const TraceOptions& options);

  /// Removes the sink; instrumentation reverts to the no-op path.
  void disable_tracing();

  /// Active sink, or nullptr when tracing is disabled. Instrumentation
  /// sites null-check this — the disabled cost is one pointer load.
  TraceSink* trace_sink() const { return trace_sink_.get(); }

 private:
  friend class ShardCoordinator;

  struct Shard {
    EventQueue queue;
    SimTime now = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t ticks_stalled = 0;
  };

  // With one shard the thread-local index is ignored entirely, so stray
  // thread state can never misroute a single-shard simulation.
  std::size_t shard_index() const {
    return shards_.size() == 1 ? 0 : static_cast<std::size_t>(current_shard());
  }

  std::vector<Shard> shards_ = std::vector<Shard>(1);
  std::vector<int> shard_of_node_;
  std::unique_ptr<ShardCoordinator> coordinator_;
  Rng rng_;
  std::function<bool(TickClass)> tick_gate_;
  std::unique_ptr<TraceSink> trace_sink_;
};

}  // namespace sg
