// Discrete-event simulator core.
//
// Single-threaded and fully deterministic: one Simulator per experiment
// replication, with its own clock, event queue, and RNG. Parallelism in the
// harness is across replications (one Simulator per thread), never within
// one — which is both simpler and what keeps results bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace sg {

class TraceSink;
struct TraceOptions;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules a callback at absolute time t (clamped to now for past times,
  /// so "immediate" follow-ups from within a handler are legal).
  EventId schedule_at(SimTime t, EventQueue::Callback cb);

  /// Schedules a callback `delay` from now (delay < 0 clamps to 0).
  EventId schedule_after(SimTime delay, EventQueue::Callback cb);

  /// Cancels a pending event (no-op for fired/unknown handles).
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Processes one event; returns false when the queue is empty.
  bool step();

  /// Runs events with time <= end; the clock finishes exactly at `end` even
  /// if the queue drains early (so time-integrated statistics are exact).
  void run_until(SimTime end);

  /// Runs until the event queue is empty.
  void run_to_completion();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t events_pending() const { return queue_.size(); }

  /// Class of a periodic tick, used by fault injection to stall specific
  /// consumers (controller decision loops) without touching others (metric
  /// publication).
  enum class TickClass { kDefault, kController };

  /// Registers a periodic tick: fn runs every `period` starting at `start`,
  /// until it returns false. Used for controller decision loops.
  ///
  /// When a tick gate is installed and vetoes a firing, fn is skipped for
  /// that period (the tick is "missed") but the chain keeps rescheduling —
  /// this models a stalled controller that resumes after the stall window.
  void schedule_periodic(SimTime start, SimTime period,
                         std::function<bool()> fn,
                         TickClass tick_class = TickClass::kDefault);

  /// Installs the periodic-tick gate (nullptr clears it). The gate returns
  /// false to veto a firing of the given class. Installed by the fault
  /// injector; at most one gate exists per simulator.
  void set_tick_gate(std::function<bool(TickClass)> gate) {
    tick_gate_ = std::move(gate);
  }

  /// Periodic firings vetoed by the tick gate so far.
  std::uint64_t ticks_stalled() const { return ticks_stalled_; }

  /// --- tracing (sg::trace) ---
  ///
  /// The simulator owns the trace sink so every layer holding a Simulator&
  /// (network, application, containers, controllers) reaches it without
  /// extra plumbing. The sink never schedules events or draws from the RNG,
  /// so enabling tracing leaves the event sequence bit-identical.

  /// Installs a sink (replacing any previous one); returns it for further
  /// configuration (SLO threshold, container metadata).
  TraceSink& enable_tracing(const TraceOptions& options);

  /// Removes the sink; instrumentation reverts to the no-op path.
  void disable_tracing();

  /// Active sink, or nullptr when tracing is disabled. Instrumentation
  /// sites null-check this — the disabled cost is one pointer load.
  TraceSink* trace_sink() const { return trace_sink_.get(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t events_processed_ = 0;
  std::function<bool(TickClass)> tick_gate_;
  std::uint64_t ticks_stalled_ = 0;
  std::unique_ptr<TraceSink> trace_sink_;
};

}  // namespace sg
