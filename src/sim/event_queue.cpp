#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace sg {

EventId EventQueue::push(SimTime time, std::uint64_t rank, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{time, rank, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  // Only genuinely pending events can be cancelled; fired or unknown ids are
  // a no-op so callers can hold handles without lifetime bookkeeping.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  SG_ASSERT_MSG(!heap_.empty(), "pop() on empty EventQueue");
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(top.cb)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

}  // namespace sg
