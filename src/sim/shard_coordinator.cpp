#include "sim/shard_coordinator.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "common/shard_context.hpp"
#include "sim/shard_guard.hpp"
#include "sim/simulator.hpp"

namespace sg {

ShardCoordinator::ShardCoordinator(Simulator& sim, SimTime lookahead)
    : sim_(sim), lookahead_(lookahead) {
  const auto n = static_cast<std::size_t>(sim_.shard_count());
  outboxes_.resize(n);
  outbox_seq_.assign(n, 0);
  active_.assign(n, 0);
}

ShardCoordinator::~ShardCoordinator() = default;

void ShardCoordinator::add_barrier_task(std::function<void()> task) {
  barrier_tasks_.push_back(std::move(task));
}

void ShardCoordinator::post(int src_shard, int dst_shard, SimTime deliver_time,
                            std::uint64_t rank, EventQueue::Callback cb) {
  auto& src = sim_.shards_[static_cast<std::size_t>(src_shard)];
  SG_ASSERT_MSG(deliver_time >= src.now + lookahead_,
                "cross-shard event violates the lookahead bound");
  auto& box = outboxes_[static_cast<std::size_t>(src_shard)];
  box.push_back(MailboxEntry{deliver_time, rank, src_shard,
                             outbox_seq_[static_cast<std::size_t>(src_shard)]++,
                             dst_shard, std::move(cb)});
}

void ShardCoordinator::run_shard_window(int shard, SimTime horizon) {
  ShardScope scope(shard);
  SG_SHARD_GUARD_BIND(shard);
  auto& sh = sim_.shards_[static_cast<std::size_t>(shard)];
  while (sh.queue.next_time() < horizon) {
    auto fired = sh.queue.pop();
    SG_ASSERT_MSG(fired.time >= sh.now,
                  "event queue returned time in the past");
    sh.now = fired.time;
    ++sh.events_processed;
    fired.cb();
  }
}

void ShardCoordinator::drain_mailboxes() {
  drain_buf_.clear();
  for (auto& box : outboxes_) {
    for (auto& e : box) drain_buf_.push_back(std::move(e));
    box.clear();
  }
  if (drain_buf_.empty()) return;
  std::sort(drain_buf_.begin(), drain_buf_.end(),
            [](const MailboxEntry& a, const MailboxEntry& b) {
              return std::tie(a.time, a.rank, a.src_shard, a.seq) <
                     std::tie(b.time, b.rank, b.src_shard, b.seq);
            });
  for (auto& e : drain_buf_) {
    sim_.shards_[static_cast<std::size_t>(e.dst_shard)].queue.push(
        e.time, e.rank, std::move(e.cb));
  }
  drain_buf_.clear();
}

void ShardCoordinator::worker_loop(int shard) {
  ShardScope scope(shard);
  std::uint64_t seen = 0;
  for (;;) {
    SimTime horizon = 0;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (epoch_ != seen && active_[static_cast<std::size_t>(shard)]);
      });
      if (stop_) return;
      seen = epoch_;
      horizon = horizon_;
    }
    run_shard_window(shard, horizon);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardCoordinator::run_until(SimTime end) {
  const int n = sim_.shard_count();
  // A window's active shards run sequentially when the host cannot actually
  // execute them in parallel: identical results (shards touch disjoint
  // queues; the deterministic merge happens at the barrier either way)
  // without paying a futile CV round-trip per window. The env override
  // forces the worker path so single-core hosts can still exercise it
  // (e.g. under TSan); it cannot change simulation output, only scheduling.
  const bool spawn_workers = std::thread::hardware_concurrency() >= 2 ||
                             std::getenv("SG_SHARD_FORCE_WORKERS") != nullptr;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = false;
    remaining_ = 0;
    active_.assign(static_cast<std::size_t>(n), 0);
  }
  if (spawn_workers) {
    workers_.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }

  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (;;) {
    SimTime next = kTimeInfinity;
    for (const auto& sh : sim_.shards_) {
      next = std::min(next, sh.queue.next_time());
    }
    if (next > end) break;
    // end + 1 lets the final window cover events at exactly `end`,
    // matching the single-shard run_until contract (events with t <= end).
    const SimTime horizon = std::min(next + lookahead_, end + 1);

    int active_count = 0;
    int only = -1;
    for (int s = 0; s < n; ++s) {
      const bool runs =
          sim_.shards_[static_cast<std::size_t>(s)].queue.next_time() <
          horizon;
      mark[static_cast<std::size_t>(s)] = runs ? 1 : 0;
      if (runs) {
        ++active_count;
        only = s;
      }
    }
    SG_SHARD_GUARD_WINDOW_BEGIN();
    if (active_count == 1) {
      // Single active shard: run it inline instead of a CV round-trip.
      run_shard_window(only, horizon);
    } else if (!spawn_workers) {
      for (int s = 0; s < n; ++s) {
        if (mark[static_cast<std::size_t>(s)]) run_shard_window(s, horizon);
      }
    } else {
      {
        std::lock_guard<std::mutex> lk(mutex_);
        active_ = mark;
        remaining_ = active_count;
        horizon_ = horizon;
        ++epoch_;
      }
      work_cv_.notify_all();
      {
        std::unique_lock<std::mutex> lk(mutex_);
        done_cv_.wait(lk, [&] { return remaining_ == 0; });
      }
    }
    SG_SHARD_GUARD_WINDOW_END();
    drain_mailboxes();
    for (const auto& task : barrier_tasks_) task();
  }

  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  for (auto& sh : sim_.shards_) {
    if (sh.now < end) sh.now = end;
  }
}

}  // namespace sg
