// Conservative time-window executor for the sharded event loop
// (DESIGN.md §8).
//
// Protocol, per window:
//
//   1. The coordinator computes next = min over shards of the earliest
//      pending event, and a horizon = min(next + lookahead, end + 1).
//   2. Every shard with work before the horizon runs its events with
//      t < horizon on its own worker thread (or inline on the coordinator
//      thread when only one shard is active — the common case under low
//      load, where waking workers would cost more than it buys).
//   3. At the barrier, cross-shard sends that occurred during the window are
//      drained from per-source outboxes, sorted by the canonical key
//      (deliver_time, rank, src_shard, seq), and pushed into the destination
//      queues; then barrier tasks (trace-log compaction) run.
//
// Safety: a send at local time s schedules delivery at s + wire latency, and
// every cross-shard latency is >= lookahead, so deliveries land at
// >= s + lookahead >= horizon — never inside the window being executed.
// This is asserted on every post().
//
// Workers never spin and never touch the wall clock: all coordination is a
// mutex + two condition variables, so the executor is correct (if pointless)
// on a single hardware thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace sg {

class Simulator;

class ShardCoordinator {
 public:
  ShardCoordinator(Simulator& sim, SimTime lookahead);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  SimTime lookahead() const { return lookahead_; }

  /// Registers a task to run at every window barrier (coordinator thread,
  /// all shards quiescent). Used for deterministic trace-log merging.
  void add_barrier_task(std::function<void()> task);

  /// Enqueues a cross-shard event from `src_shard` (must be the calling
  /// thread's shard). Delivery must respect the lookahead bound.
  void post(int src_shard, int dst_shard, SimTime deliver_time,
            std::uint64_t rank, EventQueue::Callback cb);

  /// Runs all shards up to and including `end` under windowed sync, then
  /// advances every shard clock to exactly `end`.
  void run_until(SimTime end);

 private:
  struct MailboxEntry {
    SimTime time;
    std::uint64_t rank;
    int src_shard;
    std::uint64_t seq;
    int dst_shard;
    EventQueue::Callback cb;
  };

  void run_shard_window(int shard, SimTime horizon);
  void drain_mailboxes();
  void worker_loop(int shard);

  Simulator& sim_;
  const SimTime lookahead_;
  std::vector<std::function<void()>> barrier_tasks_;

  // One outbox per source shard: only that shard's thread appends during a
  // window, and the coordinator drains them at the barrier, so no lock is
  // needed (the barrier's mutex hand-off orders the accesses).
  std::vector<std::vector<MailboxEntry>> outboxes_;
  std::vector<std::uint64_t> outbox_seq_;
  std::vector<MailboxEntry> drain_buf_;

  // Fork-join state, all guarded by mutex_.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  SimTime horizon_ = 0;
  std::vector<char> active_;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sg
