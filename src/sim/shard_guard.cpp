#include "sim/shard_guard.hpp"

#ifdef SG_DEBUG_SHARD_GUARD

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sg::shard_guard {
namespace {

// Set by the coordinator strictly before workers are released and cleared
// strictly after they quiesce; acquire/release keeps the flag itself
// race-free even though the surrounding mutex hand-off already orders it.
std::atomic<bool> g_window_active{false};

// The shard this thread is allowed to touch during a window; -1 = unbound
// (the coordinator/main thread outside its inline-execution stretch).
thread_local int t_bound_shard = -1;

}  // namespace

void window_begin() { g_window_active.store(true, std::memory_order_release); }

void window_end() { g_window_active.store(false, std::memory_order_release); }

void check(std::size_t shard) {
  if (!g_window_active.load(std::memory_order_acquire)) return;
  if (t_bound_shard >= 0 && static_cast<std::size_t>(t_bound_shard) == shard) {
    return;
  }
  std::fprintf(stderr,
               "SG_DEBUG_SHARD_GUARD: thread bound to shard %d touched shard "
               "%zu inside a parallel window — cross-shard work must go "
               "through schedule_cross_shard (DESIGN.md §8)\n",
               t_bound_shard, shard);
  std::abort();
}

BindScope::BindScope(int shard) : prev_(t_bound_shard) {
  t_bound_shard = shard;
}

BindScope::~BindScope() { t_bound_shard = prev_; }

}  // namespace sg::shard_guard

#else

// The TU must not be empty when the guard is compiled out.
namespace sg::shard_guard {
void unused_translation_unit_anchor() {}
}  // namespace sg::shard_guard

#endif  // SG_DEBUG_SHARD_GUARD
