// Step-function time series with exact time-weighted integration.
//
// Used for (a) per-container core-allocation timelines (paper Fig. 14),
// (b) average-cores-used and energy accounting (Figs. 11-13), and (c) the
// output-latency timeline that the violation-volume metric integrates.
#pragma once

#include <algorithm>
#include <vector>

#include "common/time.hpp"

namespace sg {

/// Piecewise-constant series: value v_i holds on [t_i, t_{i+1}).
class StepTimeline {
 public:
  /// Starts the series at t=0 with `initial`.
  explicit StepTimeline(double initial = 0.0);

  /// Records a new value effective from `t`. Times must be non-decreasing;
  /// same-time updates overwrite (last writer wins).
  void set(SimTime t, double value);

  /// Current (latest) value.
  double current() const { return points_.back().value; }

  /// Value in effect at time t (t before the first point returns the
  /// initial value).
  double at(SimTime t) const;

  /// Time integral of the series over [t0, t1] (units: value * ns).
  double integrate(SimTime t0, SimTime t1) const;

  /// Time-weighted average over [t0, t1].
  double average(SimTime t0, SimTime t1) const;

  /// Time integral of max(0, value - threshold) over [t0, t1]. This is the
  /// violation-volume primitive (paper Fig. 3) when the series is latency.
  double integrate_above(SimTime t0, SimTime t1, double threshold) const;

  /// Total time within [t0, t1] during which value > threshold. With a
  /// frequency timeline and threshold = base MHz this is the
  /// "boost active" duration trace spans report.
  SimTime time_above(SimTime t0, SimTime t1, double threshold) const;

  struct Point {
    SimTime time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

  /// Samples the series every `dt` over [t0, t1] (for CSV/plot output).
  std::vector<Point> sample(SimTime t0, SimTime t1, SimTime dt) const;

 private:
  std::vector<Point> points_;
};

}  // namespace sg
