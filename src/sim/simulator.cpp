#include "sim/simulator.hpp"

#include <memory>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace sg {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

// Out of line: TraceSink is only forward-declared in the header.
Simulator::~Simulator() = default;

TraceSink& Simulator::enable_tracing(const TraceOptions& options) {
  trace_sink_ = std::make_unique<TraceSink>(options);
  return *trace_sink_;
}

void Simulator::disable_tracing() { trace_sink_.reset(); }

EventId Simulator::schedule_at(SimTime t, EventQueue::Callback cb) {
  if (t < now_) t = now_;
  return queue_.push(t, std::move(cb));
}

EventId Simulator::schedule_after(SimTime delay, EventQueue::Callback cb) {
  if (delay < 0) delay = 0;
  return queue_.push(now_ + delay, std::move(cb));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  SG_ASSERT_MSG(fired.time >= now_, "event queue returned time in the past");
  now_ = fired.time;
  ++events_processed_;
  fired.cb();
  return true;
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.next_time() <= end) {
    step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

void Simulator::schedule_periodic(SimTime start, SimTime period,
                                  std::function<bool()> fn,
                                  TickClass tick_class) {
  SG_ASSERT_MSG(period > 0, "periodic event needs a positive period");
  // Each firing reschedules itself. Only event callbacks hold strong
  // references to the closure; the closure holds a weak one, so the chain is
  // freed as soon as fn() returns false or the queue is destroyed (no cycle).
  auto fire = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_fire = fire;
  *fire = [this, period, fn = std::move(fn), weak_fire, tick_class]() {
    if (tick_gate_ && !tick_gate_(tick_class)) {
      // Stalled: the tick is missed, but the chain survives the window.
      ++ticks_stalled_;
      if (auto strong = weak_fire.lock()) {
        schedule_after(period, [strong]() { (*strong)(); });
      }
      return;
    }
    if (!fn()) return;
    if (auto strong = weak_fire.lock()) {
      schedule_after(period, [strong]() { (*strong)(); });
    }
  };
  schedule_at(start, [fire]() { (*fire)(); });
}

}  // namespace sg
