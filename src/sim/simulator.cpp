#include "sim/simulator.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "sim/shard_coordinator.hpp"
#include "sim/shard_guard.hpp"
#include "trace/trace.hpp"

namespace sg {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

// Out of line: TraceSink/ShardCoordinator are only forward-declared in the
// header.
Simulator::~Simulator() = default;

TraceSink& Simulator::enable_tracing(const TraceOptions& options) {
  trace_sink_ = std::make_unique<TraceSink>(options);
  if (shard_count() > 1) {
    trace_sink_->configure_shards(shard_count(), shard_of_node(-1));
  }
  return *trace_sink_;
}

void Simulator::disable_tracing() { trace_sink_.reset(); }

void Simulator::configure_shards(int shard_count,
                                 std::vector<int> shard_of_node,
                                 SimTime lookahead) {
  SG_ASSERT_MSG(shard_count >= 1, "shard count must be >= 1");
  SG_ASSERT_MSG(shards_.size() == 1 && shards_[0].queue.empty() &&
                    shards_[0].now == 0 && shards_[0].events_processed == 0,
                "configure_shards must run before anything is scheduled");
  for (int s : shard_of_node) {
    SG_ASSERT_MSG(s >= 0 && s < shard_count,
                  "node mapped to out-of-range shard");
  }
  shard_of_node_ = std::move(shard_of_node);
  if (shard_count == 1) return;
  SG_ASSERT_MSG(!shard_of_node_.empty(),
                "sharded execution needs a node-to-shard map");
  SG_ASSERT_MSG(lookahead > 0, "conservative sync needs positive lookahead");
  shards_.resize(static_cast<std::size_t>(shard_count));
  coordinator_ = std::make_unique<ShardCoordinator>(*this, lookahead);
  // Trace spans recorded off the home shard are merged at every window
  // barrier, keeping the sink's decisions identical to a serial run.
  coordinator_->add_barrier_task([this] {
    if (trace_sink_) trace_sink_->compact_shard_logs();
  });
  if (trace_sink_) {
    trace_sink_->configure_shards(shard_count, this->shard_of_node(-1));
  }
}

int Simulator::shard_of_node(int node) const {
  if (shard_of_node_.empty()) return 0;
  // The client endpoint (negative node id) is co-located with node 0: that
  // shard owns the load generator, its timers, and trace bookkeeping.
  if (node < 0) return shard_of_node_[0];
  SG_ASSERT_MSG(static_cast<std::size_t>(node) < shard_of_node_.size(),
                "shard_of_node: unknown node");
  return shard_of_node_[static_cast<std::size_t>(node)];
}

void Simulator::schedule_cross_shard(int dst_shard, SimTime t,
                                     std::uint64_t rank,
                                     EventQueue::Callback cb) {
  SG_ASSERT_MSG(coordinator_ != nullptr,
                "cross-shard scheduling requires configured shards");
  coordinator_->post(current_shard(), dst_shard, t, rank, std::move(cb));
}

EventId Simulator::schedule_at(SimTime t, EventQueue::Callback cb) {
  SG_SHARD_GUARD_CHECK(shard_index());
  auto& sh = shards_[shard_index()];
  if (t < sh.now) t = sh.now;
  return sh.queue.push(t, std::move(cb));
}

EventId Simulator::schedule_at_ranked(SimTime t, std::uint64_t rank,
                                      EventQueue::Callback cb) {
  SG_SHARD_GUARD_CHECK(shard_index());
  auto& sh = shards_[shard_index()];
  if (t < sh.now) t = sh.now;
  return sh.queue.push(t, rank, std::move(cb));
}

EventId Simulator::schedule_after(SimTime delay, EventQueue::Callback cb) {
  SG_SHARD_GUARD_CHECK(shard_index());
  auto& sh = shards_[shard_index()];
  if (delay < 0) delay = 0;
  return sh.queue.push(sh.now + delay, std::move(cb));
}

bool Simulator::step() {
  SG_SHARD_GUARD_CHECK(shard_index());
  auto& sh = shards_[shard_index()];
  if (sh.queue.empty()) return false;
  auto fired = sh.queue.pop();
  SG_ASSERT_MSG(fired.time >= sh.now, "event queue returned time in the past");
  sh.now = fired.time;
  ++sh.events_processed;
  fired.cb();
  return true;
}

void Simulator::run_until(SimTime end) {
  if (shards_.size() > 1) {
    coordinator_->run_until(end);
    return;
  }
  auto& sh = shards_[0];
  while (!sh.queue.empty() && sh.queue.next_time() <= end) {
    step();
  }
  if (sh.now < end) sh.now = end;
}

void Simulator::run_to_completion() {
  SG_ASSERT_MSG(shards_.size() == 1,
                "run_to_completion is single-shard only; use run_until");
  while (step()) {
  }
}

std::uint64_t Simulator::events_processed() const {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.events_processed;
  return total;
}

std::size_t Simulator::events_pending() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.queue.size();
  return total;
}

std::uint64_t Simulator::ticks_stalled() const {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.ticks_stalled;
  return total;
}

void Simulator::schedule_periodic(SimTime start, SimTime period,
                                  std::function<bool()> fn,
                                  TickClass tick_class) {
  SG_ASSERT_MSG(period > 0, "periodic event needs a positive period");
  // Each firing reschedules itself. Only event callbacks hold strong
  // references to the closure; the closure holds a weak one, so the chain is
  // freed as soon as fn() returns false or the queue is destroyed (no cycle).
  auto fire = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_fire = fire;
  *fire = [this, period, fn = std::move(fn), weak_fire, tick_class]() {
    if (tick_gate_ && !tick_gate_(tick_class)) {
      // Stalled: the tick is missed, but the chain survives the window.
      ++shards_[shard_index()].ticks_stalled;
      if (auto strong = weak_fire.lock()) {
        schedule_after(period, [strong]() { (*strong)(); });
      }
      return;
    }
    if (!fn()) return;
    if (auto strong = weak_fire.lock()) {
      schedule_after(period, [strong]() { (*strong)(); });
    }
  };
  schedule_at(start, [fire]() { (*fire)(); });
}

}  // namespace sg
