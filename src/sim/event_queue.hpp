// Pending-event set for the discrete-event simulator.
//
// A binary heap ordered by (time, sequence) gives deterministic FIFO
// tie-breaking for simultaneous events — essential for reproducible
// experiments. Cancellation is lazy (tombstones), which keeps schedule and
// pop at O(log n) without a handle-indexed heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace sg {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Adds an event; returns a handle usable with cancel().
  EventId push(SimTime time, Callback cb);

  /// Cancels a pending event. Safe to call on already-fired or invalid
  /// handles (no-op). Returns true when the event was actually pending.
  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event (kTimeInfinity when empty).
  SimTime next_time() const;

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback cb;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // mutable so pop() can move the callback out of the priority_queue's
    // const top() reference; the comparator never inspects cb.
    mutable Callback cb;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace sg
