// Pending-event set for the discrete-event simulator.
//
// A binary heap ordered by (time, rank, sequence) gives deterministic
// tie-breaking for simultaneous events — essential for reproducible
// experiments. The rank is a caller-supplied canonical key: events pushed
// without one (kDefaultRank) fall back to FIFO order among themselves, while
// ranked events (network deliveries, which carry a per-source-node sequence)
// order by rank *regardless of insertion order*. That makes same-nanosecond
// delivery order a function of packet identity rather than of which shard's
// queue the event happened to be inserted into — the property the sharded
// executor (DESIGN.md §8) relies on for bit-identical results at any shard
// count. Cancellation is lazy (tombstones), which keeps schedule and pop at
// O(log n) without a handle-indexed heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace sg {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Rank of events that do not carry a canonical tie-break key. Ranked events
/// always use a non-zero rank, so at equal timestamps unranked events (ticks,
/// timers) run before deliveries, in both sharded and unsharded execution.
inline constexpr std::uint64_t kDefaultRank = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Adds an event; returns a handle usable with cancel().
  EventId push(SimTime time, Callback cb) {
    return push(time, kDefaultRank, std::move(cb));
  }

  /// Adds an event with an explicit tie-break rank.
  EventId push(SimTime time, std::uint64_t rank, Callback cb);

  /// Cancels a pending event. Safe to call on already-fired or invalid
  /// handles (no-op). Returns true when the event was actually pending.
  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event (kTimeInfinity when empty).
  SimTime next_time() const;

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback cb;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t rank;
    std::uint64_t seq;
    EventId id;
    // mutable so pop() can move the callback out of the priority_queue's
    // const top() reference; the comparator never inspects cb.
    mutable Callback cb;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (rank != other.rank) return rank > other.rank;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace sg
