// Runtime shard-access guard (debug builds only, -DSG_DEBUG_SHARD_GUARD=ON).
//
// The sharded event loop's safety argument (DESIGN.md §8) rests on shard
// confinement: during a parallel window, the thread bound to shard S touches
// ONLY shard S's queue and clock; everything cross-shard goes through the
// lookahead-checked mailbox. The type system cannot express that, and a
// violation (say, a callback opening a ShardScope on a foreign shard and
// scheduling directly) is a data race that may or may not trip TSan
// depending on timing.
//
// This guard makes the confinement rule an *assertion*: while a window is
// executing, every queue/clock access is checked against the calling
// thread's bound shard, and a mismatch aborts deterministically at the
// offending call — with a precise source location instead of a racy
// interleaving report.
//
// Everything compiles to nothing unless SG_DEBUG_SHARD_GUARD is defined
// (the CMake option adds it tree-wide); release binaries pay zero cost.
// The CI TSan job builds with the guard ON, so the WILL_FAIL violation
// test and the belt-and-braces combination (guard catches confinement
// breaks deterministically, TSan catches anything racier) both run there.
#pragma once

#include <cstddef>

namespace sg::shard_guard {

#ifdef SG_DEBUG_SHARD_GUARD

/// Marks the start/end of a parallel window: between the two calls, only
/// bound threads may touch shard state, and only their own shard's.
void window_begin();
void window_end();

/// Checks that the calling thread may access `shard` right now. Outside a
/// window everything is permitted (setup and barrier code run while the
/// workers are quiescent, ordered by the coordinator's mutex hand-off).
void check(std::size_t shard);

/// RAII binding of the calling thread to a shard for the enclosing window
/// execution; nests (the previous binding is restored on destruction).
class BindScope {
 public:
  explicit BindScope(int shard);
  ~BindScope();

  BindScope(const BindScope&) = delete;
  BindScope& operator=(const BindScope&) = delete;

 private:
  int prev_;
};

#define SG_SHARD_GUARD_WINDOW_BEGIN() ::sg::shard_guard::window_begin()
#define SG_SHARD_GUARD_WINDOW_END() ::sg::shard_guard::window_end()
#define SG_SHARD_GUARD_BIND(shard) \
  ::sg::shard_guard::BindScope sg_shard_guard_bind_scope { (shard) }
#define SG_SHARD_GUARD_CHECK(shard) ::sg::shard_guard::check(shard)

#else  // !SG_DEBUG_SHARD_GUARD

#define SG_SHARD_GUARD_WINDOW_BEGIN() ((void)0)
#define SG_SHARD_GUARD_WINDOW_END() ((void)0)
#define SG_SHARD_GUARD_BIND(shard) ((void)0)
#define SG_SHARD_GUARD_CHECK(shard) ((void)0)

#endif  // SG_DEBUG_SHARD_GUARD

}  // namespace sg::shard_guard
