#include "sim/timeline.hpp"

#include "common/assert.hpp"

namespace sg {

StepTimeline::StepTimeline(double initial) {
  points_.push_back({0, initial});
}

void StepTimeline::set(SimTime t, double value) {
  SG_ASSERT_MSG(t >= points_.back().time, "timeline updates must be ordered");
  if (t == points_.back().time) {
    points_.back().value = value;
    return;
  }
  if (points_.back().value == value) return;  // no-op transition
  points_.push_back({t, value});
}

double StepTimeline::at(SimTime t) const {
  // Find last point with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it == points_.begin()) return points_.front().value;
  return std::prev(it)->value;
}

double StepTimeline::integrate(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return 0.0;
  double acc = 0.0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it != points_.begin()) --it;
  for (; it != points_.end(); ++it) {
    const SimTime seg_start = std::max(it->time, t0);
    const SimTime seg_end =
        (std::next(it) == points_.end()) ? t1
                                         : std::min(std::next(it)->time, t1);
    if (seg_start >= t1) break;
    if (seg_end > seg_start) {
      acc += it->value * static_cast<double>(seg_end - seg_start);
    }
  }
  return acc;
}

double StepTimeline::average(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return at(t0);
  return integrate(t0, t1) / static_cast<double>(t1 - t0);
}

double StepTimeline::integrate_above(SimTime t0, SimTime t1,
                                     double threshold) const {
  if (t1 <= t0) return 0.0;
  double acc = 0.0;
  // Locate the first segment that overlaps [t0, t1].
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it != points_.begin()) --it;
  for (; it != points_.end(); ++it) {
    const SimTime seg_start = std::max(it->time, t0);
    const SimTime seg_end =
        (std::next(it) == points_.end()) ? t1
                                         : std::min(std::next(it)->time, t1);
    if (seg_start >= t1) break;
    if (seg_end > seg_start) {
      const double excess = it->value - threshold;
      if (excess > 0.0) {
        acc += excess * static_cast<double>(seg_end - seg_start);
      }
    }
  }
  return acc;
}

SimTime StepTimeline::time_above(SimTime t0, SimTime t1,
                                 double threshold) const {
  if (t1 <= t0) return 0;
  SimTime acc = 0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it != points_.begin()) --it;
  for (; it != points_.end(); ++it) {
    const SimTime seg_start = std::max(it->time, t0);
    const SimTime seg_end =
        (std::next(it) == points_.end()) ? t1
                                         : std::min(std::next(it)->time, t1);
    if (seg_start >= t1) break;
    if (seg_end > seg_start && it->value > threshold) {
      acc += seg_end - seg_start;
    }
  }
  return acc;
}

std::vector<StepTimeline::Point> StepTimeline::sample(SimTime t0, SimTime t1,
                                                      SimTime dt) const {
  std::vector<Point> out;
  if (dt <= 0) return out;
  for (SimTime t = t0; t <= t1; t += dt) out.push_back({t, at(t)});
  return out;
}

}  // namespace sg
