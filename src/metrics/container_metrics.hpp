// Per-container runtime metrics (paper §III-B).
//
// The container runtimes in the paper compute, per request:
//   execTime            — wall time from request arrival to reply
//   timeWaitingForFreeConn — time blocked waiting for a free connection /
//                         threadpool slot toward downstream services
// and derive the two SurgeGuard metrics:
//   execMetric  = execTime - timeWaitingForFreeConn            (eq. 2)
//   queueBuildup = execTime / execMetric                       (eq. 3)
// Averages are computed over a reporting window and periodically shared with
// Escalator (shared files/pipes in the paper; the MetricsBus here).
#pragma once

#include <cstdint>

#include "common/ewma.hpp"
#include "common/time.hpp"

namespace sg {

/// One completed request's passage through one container.
struct VisitRecord {
  int container = 0;
  TimePoint arrive;
  TimePoint depart;
  /// Total time spent blocked waiting for a free downstream connection.
  Duration conn_wait;
  /// Observed elapsed time since job start when the request arrived here
  /// (currentTime - pkt.startTime; feeds expectedTimeFromStart profiling).
  Duration time_from_start;
  /// Whether the arriving packet carried pkt.upscale > 0.
  bool upscale_hint = false;

  Duration exec_time() const { return depart - arrive; }
  Duration exec_metric() const { return exec_time() - conn_wait; }
};

/// Windowed averages published by a container runtime.
struct MetricsSnapshot {
  int container = 0;
  SimTime window_end = 0;
  long visits = 0;

  double avg_exec_time_ns = 0.0;
  double avg_exec_metric_ns = 0.0;
  double avg_conn_wait_ns = 0.0;
  double avg_time_from_start_ns = 0.0;

  /// queueBuildup (eq. 3) computed on the window means; 1.0 when the window
  /// had no connection waiting at all.
  double queue_buildup = 1.0;

  /// True if any request in the window arrived with an upscale hint.
  bool upscale_hint_received = false;

  bool valid() const { return visits > 0; }
};

/// Accumulates VisitRecords within the current reporting window.
class ContainerRuntimeMetrics {
 public:
  explicit ContainerRuntimeMetrics(int container = 0) : container_(container) {}

  void record_visit(const VisitRecord& rec);

  bool window_empty() const { return exec_time_.empty(); }
  long window_visits() const { return exec_time_.count(); }

  /// Closes the window: returns the snapshot and starts a fresh window.
  MetricsSnapshot flush(SimTime now);

  /// Lifetime counters (profiling / sanity checks).
  std::uint64_t total_visits() const { return total_visits_; }
  double lifetime_avg_exec_metric_ns() const { return lifetime_exec_metric_.peek(); }
  double lifetime_avg_time_from_start_ns() const {
    return lifetime_time_from_start_.peek();
  }

 private:
  int container_;
  WindowedMean exec_time_;
  WindowedMean exec_metric_;
  WindowedMean conn_wait_;
  WindowedMean time_from_start_;
  bool hint_in_window_ = false;
  std::uint64_t total_visits_ = 0;
  WindowedMean lifetime_exec_metric_;     // never flushed; used by profiling
  WindowedMean lifetime_time_from_start_;
};

}  // namespace sg
