#include "metrics/sensitivity.hpp"

namespace sg {

void SensitivityTracker::observe(int container, int cores,
                                 double exec_metric_ns) {
  if (cores < 0 || exec_metric_ns <= 0.0) return;
  auto [it, inserted] =
      table_.try_emplace({container, cores}, Ewma{alpha_});
  it->second.add(exec_metric_ns);
}

std::optional<double> SensitivityTracker::exec_avg(int container,
                                                   int cores) const {
  const auto it = table_.find({container, cores});
  if (it == table_.end() || !it->second.initialized()) return std::nullopt;
  return it->second.value();
}

std::optional<double> SensitivityTracker::sensitivity(int container,
                                                      int cores) const {
  const auto at_n = exec_avg(container, cores);
  const auto at_n1 = exec_avg(container, cores + 1);
  if (!at_n || !at_n1 || *at_n <= 0.0) return std::nullopt;
  return 1.0 - *at_n1 / *at_n;
}

double SensitivityTracker::sensitivity_or(int container, int cores,
                                          double unknown_value) const {
  return sensitivity(container, cores).value_or(unknown_value);
}

bool SensitivityTracker::revocation_candidate(int container, int cores,
                                              double threshold) const {
  if (cores <= 1) return false;  // never starve a container entirely
  const auto s = sensitivity(container, cores - 1);
  return s.has_value() && *s < threshold;
}

}  // namespace sg
