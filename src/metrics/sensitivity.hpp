// Online resource-sensitivity profiling (paper §III-C, Design Feature #3).
//
// SurgeGuard keeps execAvg[container][#cores]: an exponential running
// average (alpha = 0.5, weighting new samples heavily) of the execution
// metric observed at each core allocation the container has actually run
// with. The sensitivity of adding a core is the fractional execution-time
// reduction the next core historically bought:
//
//   sens[c][n] = 1 - execAvg[c][n+1] / execAvg[c][n]
//
// Escalator uses sens for two things: preferring high-sensitivity containers
// when upscaling, and periodically revoking a core from containers where
// sens[c][cores-1] < 0.02 (the allocation buys less than 2% improvement).
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "common/ewma.hpp"

namespace sg {

class SensitivityTracker {
 public:
  /// alpha follows the paper's convention: new_avg = alpha*old + (1-alpha)*new,
  /// with alpha = 0.5.
  explicit SensitivityTracker(double alpha = 0.5) : alpha_(alpha) {}

  /// Feeds one observation: the container ran with `cores` and exhibited the
  /// given average execMetric over the reporting window.
  void observe(int container, int cores, double exec_metric_ns);

  /// execAvg[c][n], if that allocation has been observed.
  std::optional<double> exec_avg(int container, int cores) const;

  /// sens[c][n] = 1 - execAvg[c][n+1]/execAvg[c][n]; nullopt unless both
  /// cells have been observed.
  std::optional<double> sensitivity(int container, int cores) const;

  /// Sensitivity with an optimistic default for unexplored cells: unknown
  /// allocations return `unknown_value`, so upscaling prefers exploring them
  /// over allocations known to be useless.
  double sensitivity_or(int container, int cores, double unknown_value) const;

  /// True when the tracker is confident the container's *current* top core
  /// is buying less than `threshold` improvement: sens[c][cores-1] known and
  /// below threshold (the revocation test, paper: threshold 0.02).
  bool revocation_candidate(int container, int cores,
                            double threshold = 0.02) const;

  /// Number of (container, cores) cells observed so far.
  std::size_t cells() const { return table_.size(); }

 private:
  double alpha_;
  std::map<std::pair<int, int>, Ewma> table_;
};

}  // namespace sg
