#include "metrics/metrics_bus.hpp"

namespace sg {

void MetricsBus::publish(const MetricsSnapshot& snap) {
  latest_[snap.container] = snap;
}

std::optional<MetricsSnapshot> MetricsBus::latest(int container) const {
  const auto it = latest_.find(container);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> MetricsBus::known_containers() const {
  std::vector<int> out;
  out.reserve(latest_.size());
  for (const auto& [id, _] : latest_) out.push_back(id);
  return out;
}

bool MetricsBus::is_stale(int container, SimTime now, SimTime staleness) const {
  const auto it = latest_.find(container);
  if (it == latest_.end()) return true;
  return now - it->second.window_end > staleness;
}

}  // namespace sg
