#include "metrics/container_metrics.hpp"

#include "common/assert.hpp"

namespace sg {

void ContainerRuntimeMetrics::record_visit(const VisitRecord& rec) {
  SG_ASSERT_MSG(rec.depart >= rec.arrive, "visit departs before it arrives");
  SG_ASSERT_MSG(rec.conn_wait >= Duration::zero() &&
                    rec.conn_wait <= rec.exec_time(),
                "conn_wait outside [0, exec_time]");
  exec_time_.add(static_cast<double>(rec.exec_time().ns()));
  exec_metric_.add(static_cast<double>(rec.exec_metric().ns()));
  conn_wait_.add(static_cast<double>(rec.conn_wait.ns()));
  time_from_start_.add(static_cast<double>(rec.time_from_start.ns()));
  hint_in_window_ = hint_in_window_ || rec.upscale_hint;
  ++total_visits_;
  lifetime_exec_metric_.add(static_cast<double>(rec.exec_metric().ns()));
  lifetime_time_from_start_.add(static_cast<double>(rec.time_from_start.ns()));
}

MetricsSnapshot ContainerRuntimeMetrics::flush(SimTime now) {
  MetricsSnapshot snap;
  snap.container = container_;
  snap.window_end = now;
  snap.visits = exec_time_.count();
  snap.avg_exec_time_ns = exec_time_.take();
  snap.avg_exec_metric_ns = exec_metric_.take();
  snap.avg_conn_wait_ns = conn_wait_.take();
  snap.avg_time_from_start_ns = time_from_start_.take();
  snap.upscale_hint_received = hint_in_window_;
  hint_in_window_ = false;
  // queueBuildup (eq. 3) on window means. Guard the denominator: a window
  // where requests spent ~all time waiting for connections would divide by
  // ~0; clamp to a large finite ratio.
  if (snap.visits > 0 && snap.avg_exec_metric_ns > 1.0) {
    snap.queue_buildup = snap.avg_exec_time_ns / snap.avg_exec_metric_ns;
  } else if (snap.visits > 0) {
    snap.queue_buildup = 1e6;
  } else {
    snap.queue_buildup = 1.0;
  }
  return snap;
}

}  // namespace sg
