// Per-node metrics exchange (shared files/pipes analog, paper Fig. 7 step 4).
//
// Container runtimes publish windowed MetricsSnapshots; the node's Escalator
// (or baseline controller) reads the latest snapshot per container at the
// start of each decision cycle. The bus is per node: controllers on one node
// never see another node's metrics (decentralization, Fig. 1).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "metrics/container_metrics.hpp"

namespace sg {

class MetricsBus {
 public:
  /// Publishes/overwrites the latest snapshot for a container.
  void publish(const MetricsSnapshot& snap);

  /// Latest snapshot for a container (nullopt if never published).
  std::optional<MetricsSnapshot> latest(int container) const;

  /// Containers that have ever published, in ascending id order.
  std::vector<int> known_containers() const;

  /// True when the latest snapshot for `container` is older than `now -
  /// staleness`; controllers skip stale entries so an idle container does
  /// not get judged on ancient data.
  bool is_stale(int container, SimTime now, SimTime staleness) const;

 private:
  // Ordered map: controllers and exporters enumerate published containers,
  // and that order must be identical across runs (determinism rule D1).
  std::map<int, MetricsSnapshot> latest_;
};

/// One MetricsBus per node. Container runtimes publish to their own node's
/// bus; per-node controllers read only their own.
class MetricsPlane {
 public:
  explicit MetricsPlane(std::size_t node_count) : buses_(node_count) {}

  MetricsBus& node_bus(int node) { return buses_.at(static_cast<std::size_t>(node)); }
  const MetricsBus& node_bus(int node) const {
    return buses_.at(static_cast<std::size_t>(node));
  }
  std::size_t node_count() const { return buses_.size(); }

 private:
  std::vector<MetricsBus> buses_;
};

}  // namespace sg
