#include "controllers/escalator.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

Escalator::Escalator(ControllerEnv env, Options options)
    : env_(std::move(env)), options_(options) {}

void Escalator::start() {
  env_.sim->schedule_periodic(options_.interval, options_.interval, [this]() {
    tick();
    return true;
  }, Simulator::TickClass::kController);
}

double Escalator::exec_signal(const MetricsSnapshot& snap) const {
  // Design Feature #2 decouples execution time from connection waiting;
  // with the ablation flag off we regress to Parties' total execTime.
  return options_.use_new_metrics ? snap.avg_exec_metric_ns
                                  : snap.avg_exec_time_ns;
}

void Escalator::tick() {
  ++tick_count_;
  TraceSink* trace = env_.sim->trace_sink();
  const auto audit = [&](DecisionKind kind, int container, int amount) {
    if (trace != nullptr) {
      trace->add_decision({env_.sim->now_point(), kind, "escalator",
                           env_.node->id(), container, amount});
    }
  };
  // Ordered maps (determinism rule D1/D3): scores feed the sorted candidate
  // list and exec_ratio is FP state consulted across the downscale walk —
  // neither may depend on hash order.
  std::map<int, int> scores;
  std::map<int, double> exec_ratio;

  // --- scoring pass (paper §IV-B's three checks) ---
  for (Container* c : env_.node->containers()) {
    const int id = c->id();
    busy_.window_busy_cores(*env_.sim, c);  // keep revocation guard fresh
    const auto snap = env_.bus->latest(id);
    if (!snap || !snap->valid()) continue;

    // Feed the online sensitivity profile with (allocation, execMetric),
    // normalized to base frequency so FirstResponder boosts do not corrupt
    // the per-core-count cells.
    if (options_.use_sensitivity) {
      const double speed = c->dvfs().speed(c->frequency());
      sens_.observe(id, c->cores(), snap->avg_exec_metric_ns * speed);
    }

    const double limit = env_.targets.of(id).expected_exec_metric_ns;
    const double ratio = limit > 0.0 ? exec_signal(*snap) / limit : 0.0;
    exec_ratio[id] = ratio;

    // Check 1: upscale hint received from upstream (Table II row 1).
    if (options_.use_new_metrics && snap->upscale_hint_received) {
      scores[id] += 1;
    }

    // Check 2: queueBuildup violation -> downstream candidates + stamp.
    if (options_.use_new_metrics &&
        snap->queue_buildup > options_.queue_threshold) {
      const auto dit = env_.topology.downstream.find(id);
      if (dit != env_.topology.downstream.end()) {
        for (int d : dit->second) {
          // Local downstream containers are scored directly; remote ones
          // hear about it via the pkt.upscale stamp below.
          if (env_.cluster->container(d).node() == env_.node->id()) {
            scores[d] += 1;
          }
        }
      }
      env_.app->set_upscale_stamp(id, options_.hint_depth);
      audit(DecisionKind::kUpscaleStamp, id, options_.hint_depth);
    } else if (options_.use_new_metrics) {
      env_.app->set_upscale_stamp(id, 0);
    }

    // Check 3: execMetric violation -> the container itself.
    if (ratio > options_.exec_threshold) {
      scores[id] += 1;
    }
  }
  last_scores_ = scores;

  // --- upscale pass: score desc, then sensitivity desc, one step each ---
  struct Candidate {
    Container* container;
    int score;
    double sens;
  };
  std::vector<Candidate> candidates;
  for (Container* c : env_.node->containers()) {
    const auto it = scores.find(c->id());
    if (it == scores.end() || it->second <= 0) continue;
    const double s =
        options_.use_sensitivity
            ? sens_.sensitivity_or(c->id(), c->cores(),
                                   options_.unknown_sensitivity)
            : 0.0;
    candidates.push_back({c, it->second, s});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.sens > b.sens;
            });
  for (const Candidate& cand : candidates) {
    const int granted = env_.node->grant(cand.container, options_.core_step);
    if (granted > 0) {
      audit(DecisionKind::kCoreGrant, cand.container->id(), granted);
    }
    if (granted == 0 && options_.manage_frequency) {
      const DvfsModel& dvfs = cand.container->dvfs();
      const FreqMhz was = cand.container->frequency();
      cand.container->set_frequency(cand.container->frequency() +
                                    options_.freq_step_levels * dvfs.step_mhz);
      if (cand.container->frequency() != was) {
        audit(DecisionKind::kFreqBoost, cand.container->id(),
              static_cast<int>(cand.container->frequency()));
      }
    } else if (granted > 0 && options_.manage_frequency &&
               cand.container->frequency() > cand.container->dvfs().min_mhz) {
      // Swap FirstResponder's stopgap frequency boost for the cores just
      // granted: sustained load is served by cores (cheap), the boost was
      // only buying time until this slower path caught up (shFreq/shCores
      // synchronization in paper Fig. 7). Stepping down gradually (rather
      // than resetting) avoids oscillating with the fast path while the
      // backlog is still draining.
      cand.container->set_frequency(
          cand.container->frequency() -
          options_.freq_step_levels * cand.container->dvfs().step_mhz);
      audit(DecisionKind::kFreqLower, cand.container->id(),
            static_cast<int>(cand.container->frequency()));
    }
    SG_DEBUG << "[escalator n" << env_.node->id() << "] upscale "
             << cand.container->name() << " score=" << cand.score
             << " sens=" << cand.sens << " cores=" << cand.container->cores();
  }

  // --- downscale pass ---
  // Paper §IV-B ordering: deallocate first from score-0 containers (Parties'
  // slack rule); ONLY when every container is an upscaling candidate does
  // sensitivity-based revocation kick in — freeing cores from insensitive
  // violators so sensitive ones can take them (Fig. 14's mid-surge
  // revocations).
  bool any_zero_score = false;
  for (Container* c : env_.node->containers()) {
    if (exec_ratio.count(c->id()) &&
        (!scores.count(c->id()) || scores[c->id()] <= 0)) {
      any_zero_score = true;
      break;
    }
  }
  for (Container* c : env_.node->containers()) {
    const int id = c->id();
    const auto rit = exec_ratio.find(id);
    if (rit == exec_ratio.end()) continue;
    const bool is_candidate = scores.count(id) && scores[id] > 0;

    if (!is_candidate) {
      // Frequency steps back toward the floor first.
      const bool boosted = c->frequency() > c->dvfs().min_mhz;
      if (options_.manage_frequency && boosted) {
        c->set_frequency(c->frequency() -
                         options_.freq_step_levels * c->dvfs().step_mhz);
        audit(DecisionKind::kFreqLower, id, static_cast<int>(c->frequency()));
      }
      // Parties' slack rule on score-0 containers. Two guards: (a) a
      // container still running above base frequency owes its low execution
      // time to the boost, not to spare cores; (b) latency slack can be
      // downstream speed in disguise (exec includes downstream time), so a
      // core is only taken when the container's measured CPU usage fits in
      // the smaller allocation.
      if (!boosted && rit->second < options_.downscale_threshold) {
        if (++slack_streak_[id] >= options_.downscale_hold &&
            busy_.safe_to_revoke(c, options_.core_step)) {
          const int revoked =
              env_.node->revoke(c, options_.core_step, /*floor=*/1);
          if (revoked > 0) audit(DecisionKind::kCoreRevoke, id, revoked);
          slack_streak_[id] = 0;
        }
      } else {
        slack_streak_[id] = 0;
      }
    } else {
      slack_streak_[id] = 0;
    }

    // Sensitivity-based revocation (Design Feature #3): when there is no
    // score-0 container to reclaim from, periodically take a core back from
    // containers whose top core buys < 2% — insensitive containers must not
    // hog cores even while "violating" (Fig. 6 right, Fig. 14's mid-surge
    // revocations).
    if (options_.use_sensitivity && !any_zero_score &&
        tick_count_ % options_.sens_revoke_period_ticks == 0 &&
        sens_.revocation_candidate(id, c->cores(),
                                   options_.sens_revoke_threshold) &&
        busy_.safe_to_revoke(c, options_.core_step, /*util_limit=*/0.9)) {
      const int revoked = env_.node->revoke(c, options_.core_step, /*floor=*/1);
      if (revoked > 0) audit(DecisionKind::kCoreRevoke, id, revoked);
      SG_DEBUG << "[escalator n" << env_.node->id() << "] sens-revoke "
               << c->name() << " cores=" << c->cores();
    }
  }
}

}  // namespace sg
