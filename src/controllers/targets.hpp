// Per-container QoS parameters (paper §IV "SurgeGuard Parameters").
//
// Each container has two configurable targets, set by the user or obtained
// through online profiling:
//   expectedExecMetric    — expected per-request execution metric
//   expectedTimeFromStart — expected elapsed time since job start when a
//                           request reaches this container
// Following Dirigent and Nightcore (and the paper's artifact), the harness
// profiles at low load and sets targets to 2x the measured values.
#pragma once

#include <unordered_map>

#include "common/time.hpp"

namespace sg {

struct ContainerTargets {
  /// expectedExecMetric, in ns.
  double expected_exec_metric_ns = 0.0;
  /// expectedTimeFromStart, in ns (per-packet slack reference, eq. 4).
  Duration expected_time_from_start;
};

/// Targets per container id, plus application-level context derived in the
/// same profiling pass.
struct TargetMap {
  std::unordered_map<int, ContainerTargets> per_container;

  /// Expected end-to-end latency at the profiled operating point (used for
  /// FirstResponder's path-freeze window, ~2x of this).
  Duration expected_e2e_latency;

  const ContainerTargets& of(int container) const {
    static const ContainerTargets kZero{};
    const auto it = per_container.find(container);
    return it == per_container.end() ? kZero : it->second;
  }

  bool has(int container) const { return per_container.count(container) > 0; }
};

}  // namespace sg
