#include "controllers/caladan.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

CaladanAlgo::CaladanAlgo(ControllerEnv env, Options options)
    : env_(std::move(env)), options_(options) {}

void CaladanAlgo::start() {
  env_.sim->schedule_periodic(options_.interval, options_.interval, [this]() {
    tick();
    return true;
  }, Simulator::TickClass::kController);
}

void CaladanAlgo::tick() {
  TraceSink* trace = env_.sim->trace_sink();
  const auto audit = [&](DecisionKind kind, int container, int amount) {
    if (trace != nullptr) {
      trace->add_decision({env_.sim->now_point(), kind, "caladan",
                           env_.node->id(), container, amount});
    }
  };
  struct Entry {
    Container* container;
    double queue_buildup;
  };
  std::vector<Entry> queued;

  for (Container* c : env_.node->containers()) {
    const auto snap = env_.bus->latest(c->id());
    const double busy = busy_.window_busy_cores(*env_.sim, c);
    if (!snap || !snap->valid()) continue;

    if (snap->queue_buildup > options_.queue_threshold) {
      queued.push_back({c, snap->queue_buildup});
      continue;
    }
    // Reclaim: no queueing signal and the top core sat mostly idle over the
    // window (Caladan parks cores the moment they stop being needed).
    if (snap->queue_buildup < options_.idle_threshold &&
        busy < static_cast<double>(c->cores()) - 1.0 - options_.idle_margin) {
      const int revoked = env_.node->revoke(c, options_.revoke_step, /*floor=*/1);
      if (revoked > 0) audit(DecisionKind::kCoreRevoke, c->id(), revoked);
    }
  }

  // Feed the longest queue first — Caladan's "add a core to the congested
  // kthread" policy mapped onto containers.
  std::sort(queued.begin(), queued.end(), [](const Entry& a, const Entry& b) {
    return a.queue_buildup > b.queue_buildup;
  });
  for (const Entry& e : queued) {
    const int granted = env_.node->grant(e.container, options_.grant_step);
    if (granted > 0) audit(DecisionKind::kCoreGrant, e.container->id(), granted);
    SG_DEBUG << "[caladan n" << env_.node->id() << "] upscale "
             << e.container->name() << " qb=" << e.queue_buildup
             << " cores=" << e.container->cores();
  }
}

}  // namespace sg
