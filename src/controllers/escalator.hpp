// Escalator: SurgeGuard's user-space controller (paper §IV-B).
//
// Escalator's contribution is *candidate identification*, layered on the
// Parties allocation algorithm:
//
//   score(c) += 1 for each failed check of (paper §IV-B):
//     (1) an upscale hint arrived on an incoming packet (pkt.upscale > 0)
//     (2) queueBuildup(c) > QUEUE_TH   -> candidates are c's DOWNSTREAM
//         containers (Table II row 2), and c starts stamping pkt.upscale on
//         outgoing RPCs so remote downstream containers hear about it
//     (3) execMetric(c) / expectedExecMetric(c) > EXEC_TH -> candidate is c
//
// Upscaling: higher scores first; ties broken by core sensitivity; one core
// step at a time (the Parties step policy). Downscaling: Parties' slack rule
// on score-0 containers first, then sensitivity-based revocation — take a
// core back whenever execAvg says the container's top core buys < 2%
// improvement (Design Feature #3).
//
// Feature flags reproduce the paper's Fig. 15 ablation: new metrics only,
// sensitivity only, or the full Escalator.
#pragma once

#include <map>

#include "controllers/controller.hpp"
#include "metrics/sensitivity.hpp"

namespace sg {

class Escalator final : public Controller {
 public:
  struct Options {
    /// Decision interval (the slower, precise path; the paper leaves this
    /// unspecified — 100 ms sits between Parties' 500 ms and the metric
    /// publication interval).
    SimTime interval = 100 * kMillisecond;

    /// QUEUE_TH: queueBuildup above this flags hidden-queue pressure.
    double queue_threshold = 1.30;

    /// EXEC_TH: execMetric / expectedExecMetric above this flags a true
    /// slowdown of the container itself.
    double exec_threshold = 1.0;

    /// pkt.upscale stamp depth (how many successive downstream containers
    /// an upstream violation may upscale).
    int hint_depth = 3;

    /// Logical cores per adjustment (2 = hyperthread pair, §V).
    int core_step = 2;

    /// Parties-style downscale rule for score-0 containers.
    double downscale_threshold = 0.5;
    int downscale_hold = 3;

    /// Sensitivity-based revocation threshold (paper: sens < 0.02) and how
    /// often it runs, in ticks (paper: "periodically revoking").
    double sens_revoke_threshold = 0.02;
    int sens_revoke_period_ticks = 2;

    /// Treats unexplored sensitivity cells as this value so upscaling
    /// prefers exploring unknown allocations over known-useless ones.
    double unknown_sensitivity = 0.5;

    /// Escalator also manages frequency (Fig. 7): boost when violating with
    /// an empty pool, step back toward the floor when calm.
    bool manage_frequency = true;
    int freq_step_levels = 5;

    /// --- ablation flags (Fig. 15) ---
    /// Use execMetric/queueBuildup/hints (Design Feature #2). When false,
    /// falls back to Parties' total-execution-time signal.
    bool use_new_metrics = true;
    /// Use sensitivity-aware allocation + revocation (Design Feature #3).
    bool use_sensitivity = true;
  };

  Escalator(ControllerEnv env, Options options);
  Escalator(ControllerEnv env) : Escalator(std::move(env), Options()) {}

  std::string name() const override { return "escalator"; }
  void start() override;

  void tick();

  /// Scores computed on the last tick (exposed for tests / Fig. 14 traces).
  const std::map<int, int>& last_scores() const { return last_scores_; }

  const SensitivityTracker& sensitivity() const { return sens_; }

 private:
  double exec_signal(const MetricsSnapshot& snap) const;

  ControllerEnv env_;
  Options options_;
  SensitivityTracker sens_;
  BusyWindowTracker busy_;
  // Ordered maps: the decision loop walks these (directly or via exported
  // score snapshots), and decisions must replay identically per seed
  // (determinism rule D1).
  std::map<int, int> slack_streak_;
  std::map<int, int> last_scores_;
  long tick_count_ = 0;
};

}  // namespace sg
