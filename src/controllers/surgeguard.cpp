#include "controllers/surgeguard.hpp"

namespace sg {

SurgeGuard::SurgeGuard(ControllerEnv env, Network& network, Options options) {
  // Both units get their own copy of the (cheap, read-mostly) environment.
  escalator_ = std::make_unique<Escalator>(env, options.escalator);
  if (options.enable_first_responder) {
    first_responder_ = std::make_unique<FirstResponder>(
        std::move(env), network, options.first_responder);
  }
}

void SurgeGuard::start() {
  escalator_->start();
  if (first_responder_) first_responder_->start();
}

}  // namespace sg
