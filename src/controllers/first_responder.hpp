// FirstResponder: SurgeGuard's fast path (paper §IV-A, Design Feature #1).
//
// A per-node kernel module hooked on the earliest receive-side point of the
// network stack. For EVERY packet it computes per-packet slack
//
//   slack = expectedTimeFromStart - (now - pkt.startTime)     (eqs. 4-5)
//
// and on negative slack immediately boosts the frequency of the receiving
// container and its same-node downstream containers. No averaging — one
// late packet is enough, which is what makes 100us-scale surges detectable
// at all (Fig. 10a).
//
// The two-thread coordinator-worker design (Fig. 9) keeps the MSR write off
// the packet path: the hook only enqueues a work item (0.44us) and the
// worker applies the frequency (2.1us) off the critical path. Here that is
// modeled as a small delay between detection and the boost taking effect.
//
// To bound update churn from noisy per-packet slack, once a path is boosted
// its frequency is frozen for ~2x the end-to-end request latency.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "controllers/controller.hpp"

namespace sg {

class FirstResponder final : public Controller, public RxHook {
 public:
  struct Options {
    /// Delay between detecting a violation and the frequency change taking
    /// effect (work-item enqueue 0.44us + worker MSR write 2.1us, §VI-D).
    SimTime update_latency = 2540 * kNanosecond;

    /// Per-path freeze window; 0 means "derive as freeze_multiple x the
    /// profiled end-to-end latency" at start().
    SimTime freeze_window = 0;
    double freeze_multiple = 2.0;

    /// Extra margin on expectedTimeFromStart before slack counts as
    /// negative. The paper's 2x-low-load targets assume the many-core
    /// containers of its testbed, whose base-load latency distribution is
    /// tight; the simulator's 1-2-core containers have heavier processor-
    /// sharing tails, so without margin FirstResponder would fire on
    /// ordinary base-load jitter rather than genuine surges.
    double slack_margin = 1.75;
  };

  FirstResponder(ControllerEnv env, Network& network, Options options);
  FirstResponder(ControllerEnv env, Network& network)
      : FirstResponder(std::move(env), network, Options()) {}

  std::string name() const override { return "first-responder"; }

  /// Attaches the hook to this node's receive path.
  void start() override;

  /// RxHook: the per-packet slack check (the 0.26us critical-path code).
  void on_packet(const RpcPacket& pkt) override;

  /// --- overhead counters (§VI-D) ---
  std::uint64_t packets_inspected() const { return packets_inspected_; }
  std::uint64_t violations_detected() const { return violations_detected_; }
  std::uint64_t boosts_applied() const { return boosts_applied_; }

  Duration effective_freeze_window() const { return freeze_window_; }

 private:
  void boost(int container);

  ControllerEnv env_;
  Network& network_;
  Options options_;
  Duration freeze_window_;
  /// Per-container "do not touch until" timestamps.
  std::unordered_map<int, TimePoint> frozen_until_;

  std::uint64_t packets_inspected_ = 0;
  std::uint64_t violations_detected_ = 0;
  std::uint64_t boosts_applied_ = 0;
};

}  // namespace sg
