// Parties controller (Chen et al., ASPLOS'19), reimplemented as the paper
// does (§V "Controllers Evaluated": "We implement the Parties controller in
// C++ following the code open-sourced by the authors").
//
// Parties is a per-container heuristic: every 500 ms it compares each
// latency-critical container's measured latency against its QoS limit and
// moves one unit of one resource at a time — upscaling violators, slowly
// reclaiming from containers with large slack. Crucially (paper §III-B), it
// treats containers in isolation: its latency signal is the container's
// total execution time, which *includes* time spent waiting for downstream
// connections, so with fixed-size threadpools it pours cores into the
// container holding the implicit queue (Fig. 14's user-timeline-service)
// instead of the root-cause downstream service.
#pragma once

#include <map>

#include "controllers/controller.hpp"

namespace sg {

class PartiesController final : public Controller {
 public:
  struct Options {
    /// Decision interval (paper Table I: 500 ms).
    SimTime interval = 500 * kMillisecond;
    /// Violation when avg execTime > upscale_threshold * QoS limit.
    double upscale_threshold = 1.0;
    /// Downscale when avg execTime < downscale_threshold * limit ...
    double downscale_threshold = 0.5;
    /// ... for this many consecutive intervals.
    int downscale_hold = 3;
    /// Logical cores moved per adjustment (2 = both hyperthreads of a
    /// physical core, per the paper's §V allocation policy).
    int core_step = 2;
    /// Whether Parties may also raise per-container frequency when the free
    /// pool is exhausted (Parties manages frequency as one of its knobs).
    bool manage_frequency = true;
    /// DVFS steps per frequency adjustment.
    int freq_step_levels = 3;
  };

  PartiesController(ControllerEnv env, Options options);
  PartiesController(ControllerEnv env) : PartiesController(std::move(env), Options()) {}

  std::string name() const override { return "parties"; }
  void start() override;

  /// One decision cycle (exposed for tests).
  void tick();

 private:
  /// Parties' latency signal: container execution time vs its limit.
  double violation_ratio(const MetricsSnapshot& snap, int container) const;

  ControllerEnv env_;
  Options options_;
  BusyWindowTracker busy_;
  /// Consecutive low-latency intervals per container (downscale FSM).
  /// Ordered map (determinism rule D1): decision-loop state stays
  /// order-stable so future traversals cannot introduce hash-order runs.
  std::map<int, int> slack_streak_;
};

}  // namespace sg
