#include "controllers/first_responder.hpp"

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

FirstResponder::FirstResponder(ControllerEnv env, Network& network,
                               Options options)
    : env_(std::move(env)), network_(network), options_(options) {}

void FirstResponder::start() {
  freeze_window_ = Duration{options_.freeze_window};
  if (freeze_window_ <= Duration::zero()) {
    const Duration e2e = env_.targets.expected_e2e_latency;
    freeze_window_ =
        e2e > Duration::zero()
            ? Duration{static_cast<SimTime>(options_.freeze_multiple *
                                            static_cast<double>(e2e.ns()))}
            : Duration::ms(2);
  }
  network_.add_rx_hook(env_.node->id(), this);
}

void FirstResponder::on_packet(const RpcPacket& pkt) {
  ++packets_inspected_;
  if (pkt.dst_container == kClientEndpoint) return;
  // Progress tracking compares arrival time against the expected elapsed
  // time at request INGRESS; responses flowing back upstream carry the whole
  // downstream latency and would trivially (and meaninglessly) violate.
  if (pkt.is_response) return;
  if (!env_.targets.has(pkt.dst_container)) return;

  // Per-packet slack (eqs. 4-5): expected minus observed progress.
  const Duration observed = env_.sim->now_point() - pkt.start_time;
  const Duration expected = Duration{static_cast<SimTime>(
      options_.slack_margin *
      static_cast<double>(
          env_.targets.of(pkt.dst_container).expected_time_from_start.ns()))};
  const Duration slack = expected - observed;
  if (slack >= Duration::zero()) return;
  ++violations_detected_;

  // Path freeze: one boost per path per window bounds update churn.
  const TimePoint now = env_.sim->now_point();
  const auto frozen = frozen_until_.find(pkt.dst_container);
  if (frozen != frozen_until_.end() && now < frozen->second) return;
  frozen_until_[pkt.dst_container] = now + freeze_window_;

  // Coordinator enqueues; worker applies the boost off the critical path.
  const int target = pkt.dst_container;
  env_.sim->schedule_after(options_.update_latency,
                           [this, target]() { boost(target); });
}

void FirstResponder::boost(int container) {
  TraceSink* trace = env_.sim->trace_sink();
  const auto audit = [&](const Container& tc, FreqMhz before) {
    if (trace != nullptr && tc.frequency() != before) {
      trace->add_decision({env_.sim->now_point(), DecisionKind::kFreqBoost,
                           "first-responder", env_.node->id(), tc.id(),
                           static_cast<int>(tc.frequency())});
    }
  };
  Container& c = env_.cluster->container(container);
  // The violating container and its same-node downstream containers jump to
  // max frequency (the paper's FirstResponder response).
  const FreqMhz was = c.frequency();
  c.set_frequency(c.dvfs().max_mhz);
  audit(c, was);
  ++boosts_applied_;
  for (int d : env_.topology.downstream_on_node(container, env_.node->id(),
                                                *env_.cluster)) {
    Container& dc = env_.cluster->container(d);
    const FreqMhz dwas = dc.frequency();
    dc.set_frequency(dc.dvfs().max_mhz);
    audit(dc, dwas);
    ++boosts_applied_;
  }
  SG_DEBUG << "[first-responder n" << env_.node->id() << "] boost "
           << c.name() << " and downstream to max frequency";
}

}  // namespace sg
