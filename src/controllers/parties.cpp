#include "controllers/parties.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

PartiesController::PartiesController(ControllerEnv env, Options options)
    : env_(std::move(env)), options_(options) {}

void PartiesController::start() {
  env_.sim->schedule_periodic(options_.interval, options_.interval, [this]() {
    tick();
    return true;
  }, Simulator::TickClass::kController);
}

double PartiesController::violation_ratio(const MetricsSnapshot& snap,
                                          int container) const {
  const double limit = env_.targets.of(container).expected_exec_metric_ns;
  if (limit <= 0.0) return 0.0;
  return snap.avg_exec_time_ns / limit;
}

void PartiesController::tick() {
  TraceSink* trace = env_.sim->trace_sink();
  const auto audit = [&](DecisionKind kind, int container, int amount) {
    if (trace != nullptr) {
      trace->add_decision({env_.sim->now_point(), kind, "parties",
                           env_.node->id(), container, amount});
    }
  };
  struct Candidate {
    Container* container;
    double ratio;
  };
  std::vector<Candidate> violators;
  std::vector<Candidate> calm;

  for (Container* c : env_.node->containers()) {
    busy_.window_busy_cores(*env_.sim, c);  // keep revocation guard fresh
    const auto snap = env_.bus->latest(c->id());
    if (!snap || !snap->valid()) continue;
    const double ratio = violation_ratio(*snap, c->id());
    if (ratio > options_.upscale_threshold) {
      violators.push_back({c, ratio});
      slack_streak_[c->id()] = 0;
    } else {
      // Core slack only counts at base frequency: a boosted container's low
      // latency is bought by the frequency knob, not by spare cores.
      if (ratio < options_.downscale_threshold &&
          c->frequency() <= c->dvfs().min_mhz) {
        ++slack_streak_[c->id()];
      } else {
        slack_streak_[c->id()] = 0;
      }
      calm.push_back({c, ratio});
    }
  }

  // Upscale: Parties runs one FSM per latency-critical service, all
  // stepping concurrently — every violator gets one core step per interval,
  // worst ratio served first while the pool lasts. When the pool runs dry,
  // Parties reallocates: the worst violator takes a step from the container
  // with the most slack. Because the violation signal is total execTime,
  // the container holding the implicit threadpool queue has the worst ratio
  // every interval and keeps winning the scarce cores — the paper's Fig. 14
  // pathology.
  std::sort(violators.begin(), violators.end(),
            [](const Candidate& a, const Candidate& b) { return a.ratio > b.ratio; });
  bool stole_this_tick = false;
  for (const Candidate& v : violators) {
    const int granted = env_.node->grant(v.container, options_.core_step);
    if (granted > 0) {
      audit(DecisionKind::kCoreGrant, v.container->id(), granted);
    }
    if (granted < options_.core_step && !stole_this_tick && !calm.empty()) {
      // Pool dry: take a step from the calmest container (lowest ratio)
      // whose measured CPU usage actually fits in the smaller allocation —
      // latency slack alone is not idleness (a leaf service with no
      // downstream hops shows low latency even at high utilization).
      const Candidate* donor = nullptr;
      for (const Candidate& c : calm) {
        // The floor caps what a revoke can actually take; judge safety on
        // that amount, not the nominal step.
        const int takeable = std::min(options_.core_step, c.container->cores() - 1);
        if (takeable <= 0 || !busy_.safe_to_revoke(c.container, takeable)) {
          continue;
        }
        if (donor == nullptr || c.ratio < donor->ratio) donor = &c;
      }
      if (donor != nullptr) {
        const int freed = env_.node->revoke(donor->container,
                                            options_.core_step, /*floor=*/1);
        if (freed > 0) {
          audit(DecisionKind::kCoreRevoke, donor->container->id(), freed);
          const int regranted = env_.node->grant(v.container, freed);
          if (regranted > 0) {
            audit(DecisionKind::kCoreGrant, v.container->id(), regranted);
          }
          stole_this_tick = true;
        }
      }
    }
    SG_DEBUG << "[parties n" << env_.node->id() << "] upscale "
             << v.container->name() << " ratio=" << v.ratio
             << " cores=" << v.container->cores();
  }
  // Frequency is a per-container knob (no shared pool), so Parties steps it
  // up on every violator each interval.
  if (options_.manage_frequency) {
    for (const Candidate& v : violators) {
      const DvfsModel& dvfs = v.container->dvfs();
      const FreqMhz was = v.container->frequency();
      v.container->set_frequency(v.container->frequency() +
                                 options_.freq_step_levels * dvfs.step_mhz);
      if (v.container->frequency() != was) {
        audit(DecisionKind::kFreqBoost, v.container->id(),
              static_cast<int>(v.container->frequency()));
      }
    }
  }

  // Downscale: frequency steps back toward the floor for every calm
  // container (cheap to reverse); at most one container returns a core step
  // per interval — the one with the longest sustained slack.
  Container* revoke_target = nullptr;
  int longest_streak = 0;
  for (const Candidate& c : calm) {
    if (options_.manage_frequency &&
        c.container->frequency() > c.container->dvfs().min_mhz) {
      const DvfsModel& dvfs = c.container->dvfs();
      c.container->set_frequency(c.container->frequency() -
                                 options_.freq_step_levels * dvfs.step_mhz);
      audit(DecisionKind::kFreqLower, c.container->id(),
            static_cast<int>(c.container->frequency()));
    }
    const int streak = slack_streak_[c.container->id()];
    if (streak >= options_.downscale_hold && streak > longest_streak) {
      longest_streak = streak;
      revoke_target = c.container;
    }
  }
  if (revoke_target != nullptr &&
      busy_.safe_to_revoke(revoke_target, options_.core_step)) {
    const int revoked =
        env_.node->revoke(revoke_target, options_.core_step, /*floor=*/1);
    if (revoked > 0) {
      audit(DecisionKind::kCoreRevoke, revoke_target->id(), revoked);
    }
    slack_streak_[revoke_target->id()] = 0;
    SG_DEBUG << "[parties n" << env_.node->id() << "] downscale "
             << revoke_target->name()
             << " cores=" << revoke_target->cores();
  }
}

}  // namespace sg
