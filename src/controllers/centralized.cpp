#include "controllers/centralized.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

CentralizedMLController::CentralizedMLController(Simulator& sim,
                                                 Cluster& cluster,
                                                 MetricsPlane& metrics,
                                                 TargetMap targets,
                                                 Options options)
    : sim_(sim),
      cluster_(cluster),
      metrics_(metrics),
      targets_(std::move(targets)),
      options_(options) {}

void CentralizedMLController::start() {
  sim_.schedule_periodic(options_.interval, options_.interval, [this]() {
    tick();
    return true;
  }, Simulator::TickClass::kController);
}

void CentralizedMLController::tick() {
  // Metric snapshot "arrives at the inference server" now; the decision
  // lands inference_latency later.
  std::vector<Decision> decisions;
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    Node& node = cluster_.node(static_cast<NodeId>(n));
    const MetricsBus& bus = metrics_.node_bus(static_cast<int>(n));

    // Per-container desired size: measured CPU demand, inflated by the
    // latency overshoot the model is asked to eliminate.
    std::vector<std::pair<Container*, int>> desired;
    int total_desired = 0;
    for (Container* c : node.containers()) {
      const double demand = busy_.window_busy_cores(sim_, c);
      double inflation = 1.0;
      if (const auto snap = bus.latest(c->id()); snap && snap->valid()) {
        const double limit = targets_.of(c->id()).expected_exec_metric_ns;
        if (limit > 0.0) {
          inflation = std::clamp(snap->avg_exec_time_ns / limit, 1.0,
                                 options_.max_inflation);
        }
      }
      const int want = std::max(
          1, static_cast<int>(std::ceil(demand * inflation /
                                        options_.util_target)));
      desired.emplace_back(c, want);
      total_desired += want;
    }

    // Fit into the node (proportional scale-down when oversubscribed —
    // the model knows the global budget).
    const int budget = node.app_cores();
    double scale = 1.0;
    if (total_desired > budget) {
      scale = static_cast<double>(budget) / static_cast<double>(total_desired);
    }
    for (const auto& [c, want] : desired) {
      const int cores = std::max(
          1, static_cast<int>(std::floor(static_cast<double>(want) * scale)));
      decisions.push_back({c->id(), cores});
    }
  }
  sim_.schedule_after(options_.inference_latency,
                      [this, decisions = std::move(decisions)]() {
                        apply(decisions);
                      });
}

void CentralizedMLController::apply(const std::vector<Decision>& decisions) {
  // Two passes over the ledger so shrinks free cores before grows take them.
  for (const Decision& d : decisions) {
    Container& c = cluster_.container(d.container);
    if (d.cores < c.cores()) {
      cluster_.node(c.node()).revoke(&c, c.cores() - d.cores, d.cores);
    }
  }
  TraceSink* trace = sim_.trace_sink();
  for (const Decision& d : decisions) {
    Container& c = cluster_.container(d.container);
    if (d.cores > c.cores()) {
      cluster_.node(c.node()).grant(&c, d.cores - c.cores());
    }
    if (trace != nullptr) {
      trace->add_decision({sim_.now_point(), DecisionKind::kAllocSet,
                           "centralized-ml", c.node(), c.id(), c.cores()});
    }
    SG_DEBUG << "[centralized-ml] " << c.name() << " -> " << c.cores()
             << " cores";
  }
}

}  // namespace sg
