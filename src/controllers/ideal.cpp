#include "controllers/ideal.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace sg {

IdealOracleController::IdealOracleController(ControllerEnv env,
                                             Options options)
    : env_(std::move(env)), options_(options) {
  const AppSpec& spec = env_.app->spec();
  for (std::size_t i = 0; i < spec.services.size(); ++i) {
    demand_ns_.push_back(spec.services[i].work_ns_mean +
                         spec.services[i].post_work_ns_mean);
    initial_cores_.push_back(env_.app->service_container(static_cast<int>(i)).cores());
  }
}

int IdealOracleController::cores_for_rate(std::size_t service,
                                          double rate) const {
  const double demand_cores = rate * demand_ns_[service] / 1e9;
  return std::max(1, static_cast<int>(
                         std::ceil(demand_cores / options_.util_target)));
}

void IdealOracleController::start() {
  // Pre-plan every surge within the horizon (the oracle knows the schedule).
  for (const SpikePattern::Window& w :
       options_.pattern.spikes_in(0, options_.horizon)) {
    env_.sim->schedule_at(w.start + options_.detection_delay,
                          [this, w]() { on_surge_detected(w); });
    const SimTime drain_end =
        std::max(w.end, w.start + options_.detection_delay) +
        options_.drain_window;
    env_.sim->schedule_at(drain_end, [this, w]() { on_surge_over(w); });
  }
}

void IdealOracleController::on_surge_detected(
    const SpikePattern::Window& /*window*/) {
  const double spike_rate = options_.pattern.spike_rate_rps;
  const double base_rate = options_.pattern.base_rate_rps;
  const double delay_s = to_seconds(options_.detection_delay);
  const double drain_s = to_seconds(options_.drain_window);

  for (std::size_t i = 0; i < demand_ns_.size(); ++i) {
    Container& c = env_.app->service_container(static_cast<int>(i));
    if (c.node() != env_.node->id()) continue;

    // Steady need during the surge...
    int needed = cores_for_rate(i, spike_rate);

    // ...plus the backlog accumulated while undetected: requests that
    // arrived above the pre-surge capacity must be drained within
    // drain_window on top of the surge load.
    const double capacity_rps =
        static_cast<double>(initial_cores_[i]) * 1e9 / demand_ns_[i];
    const double backlog = std::max(0.0, spike_rate - capacity_rps) * delay_s;
    if (backlog > 0.0 && drain_s > 0.0) {
      const double drain_rate = backlog / drain_s;
      needed = cores_for_rate(i, spike_rate + drain_rate);
    }
    (void)base_rate;

    if (needed > c.cores()) {
      const int granted = env_.node->grant(&c, needed - c.cores());
      if (granted > 0) {
        if (TraceSink* trace = env_.sim->trace_sink()) {
          trace->add_decision({env_.sim->now_point(), DecisionKind::kCoreGrant,
                               "ideal", env_.node->id(), c.id(), granted});
        }
      }
    }
    SG_DEBUG << "[ideal n" << env_.node->id() << "] surge detected, "
             << c.name() << " -> " << c.cores() << " cores";
  }
}

void IdealOracleController::on_surge_over(const SpikePattern::Window&) {
  restore_initial();
}

void IdealOracleController::restore_initial() {
  for (std::size_t i = 0; i < initial_cores_.size(); ++i) {
    Container& c = env_.app->service_container(static_cast<int>(i));
    if (c.node() != env_.node->id()) continue;
    if (c.cores() > initial_cores_[i]) {
      const int revoked = env_.node->revoke(&c, c.cores() - initial_cores_[i],
                                            initial_cores_[i]);
      if (revoked > 0) {
        if (TraceSink* trace = env_.sim->trace_sink()) {
          trace->add_decision({env_.sim->now_point(), DecisionKind::kCoreRevoke,
                               "ideal", env_.node->id(), c.id(), revoked});
        }
      }
    }
  }
}

}  // namespace sg
