// SurgeGuard: the complete controller (paper Fig. 7) = FirstResponder (fast
// per-packet frequency path) + Escalator (slow precise core/frequency path)
// on each node. State synchronization between the two (shFreq/shCores in
// the paper) is the containers' allocation state itself, which both units
// read and write.
#pragma once

#include <memory>

#include "controllers/escalator.hpp"
#include "controllers/first_responder.hpp"

namespace sg {

class SurgeGuard final : public Controller {
 public:
  struct Options {
    Escalator::Options escalator{};
    FirstResponder::Options first_responder{};
    /// Disables the fast path (yields the "Escalator alone" configuration
    /// of Fig. 10).
    bool enable_first_responder = true;
  };

  SurgeGuard(ControllerEnv env, Network& network, Options options);
  SurgeGuard(ControllerEnv env, Network& network)
      : SurgeGuard(std::move(env), network, Options()) {}

  std::string name() const override { return "surgeguard"; }
  void start() override;

  Escalator& escalator() { return *escalator_; }
  FirstResponder* first_responder() { return first_responder_.get(); }

 private:
  std::unique_ptr<Escalator> escalator_;
  std::unique_ptr<FirstResponder> first_responder_;
};

}  // namespace sg
