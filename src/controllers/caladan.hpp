// CaladanAlgo (Fried et al., OSDI'20), reconstructed as the paper evaluates
// it (§V): the Caladan core-allocation algorithm re-hosted as a userspace
// controller on the ordinary networking stack. Caladan's native signal is
// queueing delay observed inside its custom stack; lacking that visibility,
// the paper substitutes SurgeGuard's queueBuildup metric as the queueing
// signal — reproduced here.
//
// Behaviour to expect (paper §VI-B): fast and aggressive on workloads with
// explicit/implicit queues, but it adds cores to the container *holding*
// the queue (not the root cause), and on connection-per-request workloads
// (hotelReservation) queueBuildup stays ~1 so it never upscales at all —
// tiny energy, enormous violation volume.
#pragma once

#include "controllers/controller.hpp"

namespace sg {

class CaladanAlgo final : public Controller {
 public:
  struct Options {
    /// Decision interval. Caladan's native interval is 5-20us (Table I);
    /// as a userspace controller over periodic runtime metrics it is bound
    /// below by the metric publication interval.
    SimTime interval = 50 * kMillisecond;
    /// Upscale when queueBuildup exceeds this (Caladan reacts to any
    /// standing queue).
    double queue_threshold = 1.05;
    /// Revoke when queueBuildup is below this and the container's top core
    /// has been mostly idle over the window (Caladan parks idle cores).
    double idle_threshold = 1.01;
    /// Top core counts as idle when window-average busy cores stayed below
    /// cores - 1 - margin.
    double idle_margin = 0.2;
    /// Logical cores granted per congested container per tick. Caladan's
    /// native loop re-adds cores within microseconds until queues clear;
    /// over one (much longer) userspace tick that compounds to multiple
    /// hyperthreads. Revocation stays at single-hyperthread granularity
    /// (the paper lets CaladanAlgo allocate hyperthreads individually, §V).
    int grant_step = 2;
    int revoke_step = 1;
  };

  CaladanAlgo(ControllerEnv env, Options options);
  CaladanAlgo(ControllerEnv env) : CaladanAlgo(std::move(env), Options()) {}

  std::string name() const override { return "caladan"; }
  void start() override;

  void tick();

 private:
  ControllerEnv env_;
  Options options_;
  BusyWindowTracker busy_;
};

}  // namespace sg
