// Ideal oracle controller for the detection-delay study (paper Fig. 4).
//
// Fig. 4 isolates the cost of detection latency: an idealized controller
// that, `detection_delay` after a surge begins, instantly allocates exactly
// the cores needed to sustain the surge AND drain the backlog that piled up
// while undetected, then returns to the initial allocation once the surge
// is over and drained. Comparing violation volume and cores across
// detection delays (0.2ms / 0.5s / 1s) reproduces the figure's argument:
// slower detection costs super-linearly more violation volume and requires
// more cores, because queues build unmitigated before detection.
#pragma once

#include <vector>

#include "controllers/controller.hpp"
#include "workload/spike.hpp"

namespace sg {

class IdealOracleController final : public Controller {
 public:
  struct Options {
    /// The surge schedule the oracle is told about.
    SpikePattern pattern;
    /// Time from surge start to the oracle's reaction.
    SimTime detection_delay = 200 * kMicrosecond;
    /// Target utilization the oracle provisions for during the surge.
    double util_target = 0.75;
    /// Window within which the oracle wants the backlog drained.
    SimTime drain_window = 500 * kMillisecond;
    /// How long the sim runs (so the oracle can pre-plan every surge).
    SimTime horizon = 60 * kSecond;
  };

  IdealOracleController(ControllerEnv env, Options options);

  std::string name() const override { return "ideal-oracle"; }
  void start() override;

 private:
  void on_surge_detected(const SpikePattern::Window& w);
  void on_surge_over(const SpikePattern::Window& w);
  void restore_initial();

  /// Cores needed by service i to sustain `rate` at util_target.
  int cores_for_rate(std::size_t service, double rate) const;

  ControllerEnv env_;
  Options options_;
  std::vector<int> initial_cores_;
  std::vector<double> demand_ns_;  // per-request CPU ns per service
};

}  // namespace sg
