// Centralized ML-class controller stand-in (Table I's "ML" row: Sinan/Sage).
//
// The paper characterizes ML controllers as (a) dependence-aware — they
// learn inter-container relations and size every container correctly for
// the end-to-end target; (b) centralized — container metrics travel to one
// inference server and decisions travel back; (c) slow — decision
// granularity >1s even when inference itself takes tens of milliseconds,
// because of metric collection, smoothing, and communication.
//
// We do not train a model; instead this controller is given what a
// well-trained model would infer — each container's measured CPU demand and
// latency headroom — and emulates the ML deployment costs: a >=1s decision
// interval plus an inference + communication latency between reading
// metrics and applying allocations. That reproduces exactly the trade-off
// the paper argues: near-ideal steady-state rightsizing, far too slow for
// transient surges.
//
// §VII's proposed deployment — the ML controller periodically setting
// steady-state allocations while SurgeGuard handles transients in between —
// is available as ControllerKind::kMLPlusSurgeGuard.
#pragma once

#include <memory>
#include <vector>

#include "controllers/controller.hpp"

namespace sg {

class CentralizedMLController final : public Controller {
 public:
  struct Options {
    /// Decision interval (paper Table I: > 1s).
    SimTime interval = 1 * kSecond;
    /// Inference + metric-collection + decision-distribution latency between
    /// the metric snapshot and allocations taking effect.
    SimTime inference_latency = 200 * kMillisecond;
    /// Utilization the "model" provisions each container for.
    double util_target = 0.7;
    /// Demand estimates are inflated by the container's latency overshoot
    /// (a trained model predicts the allocation that restores the target).
    double max_inflation = 4.0;
  };

  /// Centralized: sees every node and every bus (unlike the per-node
  /// controllers, which is the point of the comparison).
  CentralizedMLController(Simulator& sim, Cluster& cluster,
                          MetricsPlane& metrics, TargetMap targets,
                          Options options);
  CentralizedMLController(Simulator& sim, Cluster& cluster,
                          MetricsPlane& metrics, TargetMap targets)
      : CentralizedMLController(sim, cluster, metrics, std::move(targets),
                                Options()) {}

  std::string name() const override { return "centralized-ml"; }
  void start() override;

  /// One decision cycle: snapshot now, apply after inference_latency.
  void tick();

 private:
  struct Decision {
    int container;
    int cores;
  };
  void apply(const std::vector<Decision>& decisions);

  Simulator& sim_;
  Cluster& cluster_;
  MetricsPlane& metrics_;
  TargetMap targets_;
  Options options_;
  BusyWindowTracker busy_;
};

}  // namespace sg
