// Controller interface.
//
// A Controller instance manages resources for ONE node (the paper's
// decentralization: Fig. 1 shows one SurgeGuard per node, relying only on
// local state). The experiment harness creates one instance per node and
// calls start() once; the controller then drives itself via periodic events.
#pragma once

#include <map>
#include <string>

#include "app/application.hpp"
#include "cluster/cluster.hpp"
#include "controllers/targets.hpp"
#include "metrics/metrics_bus.hpp"
#include "net/network.hpp"

namespace sg {

/// Everything a per-node controller is allowed to touch: its own node, its
/// own node's metrics bus, the (shared) application runtime knobs, and the
/// static task-graph topology. Nothing here grants visibility into other
/// nodes' metrics or pools.
struct ControllerEnv {
  Simulator* sim = nullptr;
  Cluster* cluster = nullptr;   // for container lookup by id only
  Node* node = nullptr;
  MetricsBus* bus = nullptr;
  Application* app = nullptr;
  AppTopology topology;
  TargetMap targets;
};

class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;

  /// Arms the controller's periodic decision loop. Called once, before the
  /// load generator starts.
  virtual void start() = 0;
};

/// Window-average busy cores per container, measured between successive
/// calls. Controllers use this as a revocation guard: latency slack alone is
/// a trap (a container's latency includes downstream time, so boosting the
/// downstream makes a busy upstream container LOOK over-provisioned);
/// revoking a core that is measurably in use is never right.
class BusyWindowTracker {
 public:
  /// Average busy cores of `c` since the previous call for `c` (first call
  /// returns the current allocation: conservatively "fully busy").
  double window_busy_cores(Simulator& sim, Container* c) {
    c->sync();
    State& prev = last_[c->id()];
    const TimePoint now = sim.now_point();
    const double busy_now = c->busy_core_seconds();
    double avg = static_cast<double>(c->cores());
    if (prev.at > TimePoint::origin() && now > prev.at) {
      avg = (busy_now - prev.busy_core_seconds) / to_seconds(now - prev.at);
    }
    prev.busy_core_seconds = busy_now;
    prev.at = now;
    prev.last_avg = avg;
    return avg;
  }

  /// True when taking `step` cores from `c` would leave it with enough
  /// capacity for its measured load at `util_limit` utilization. Uses the
  /// busy average computed by the LAST window_busy_cores() call for `c` —
  /// controllers feed the tracker once per tick for every container, then
  /// consult this during revocation decisions.
  bool safe_to_revoke(const Container* c, int step,
                      double util_limit = 0.8) const {
    const int remaining = c->cores() - step;
    if (remaining <= 0) return false;
    const auto it = last_.find(c->id());
    // Never observed: be conservative, assume fully busy.
    const double busy = it == last_.end() ? static_cast<double>(c->cores())
                                          : it->second.last_avg;
    return busy < util_limit * static_cast<double>(remaining);
  }

 private:
  struct State {
    double busy_core_seconds = 0.0;
    TimePoint at;
    double last_avg = 0.0;
  };
  // Ordered map (determinism rule D1): per-container FP state shared by
  // every controller's decision loop must stay order-stable.
  std::map<int, State> last_;
};

/// No-op controller: containers keep their initial allocation. Baseline for
/// tests and the detection-delay study.
class StaticController final : public Controller {
 public:
  explicit StaticController(ControllerEnv env) : env_(std::move(env)) {}
  std::string name() const override { return "static"; }
  void start() override {}

 private:
  ControllerEnv env_;
};

}  // namespace sg
