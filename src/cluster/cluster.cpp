#include "cluster/cluster.hpp"

#include "common/assert.hpp"

namespace sg {

NodeId Cluster::add_node(int total_logical_cores, int reserved_cores) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(
      Node::Params{id, total_logical_cores, reserved_cores}));
  return id;
}

Container& Cluster::add_container(const std::string& name, NodeId node_id,
                                  int initial_cores, const DvfsModel& dvfs,
                                  const EnergyModel& energy) {
  SG_ASSERT_MSG(by_name_.count(name) == 0, "duplicate container name");
  SG_ASSERT(node_id >= 0 && static_cast<std::size_t>(node_id) < nodes_.size());
  const ContainerId id = static_cast<ContainerId>(containers_.size());
  Container::Params params;
  params.name = name;
  params.id = id;
  params.node = node_id;
  params.initial_cores = initial_cores;
  params.dvfs = dvfs;
  params.energy = energy;
  containers_.push_back(std::make_unique<Container>(sim_, std::move(params)));
  Container* c = containers_.back().get();
  nodes_[static_cast<std::size_t>(node_id)]->attach(c);
  by_name_.emplace(name, id);
  return *c;
}

Node& Cluster::node(NodeId id) {
  SG_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(NodeId id) const {
  SG_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

Container& Cluster::container(ContainerId id) {
  SG_ASSERT(id >= 0 && static_cast<std::size_t>(id) < containers_.size());
  return *containers_[static_cast<std::size_t>(id)];
}

const Container& Cluster::container(ContainerId id) const {
  SG_ASSERT(id >= 0 && static_cast<std::size_t>(id) < containers_.size());
  return *containers_[static_cast<std::size_t>(id)];
}

Container* Cluster::find_container(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : containers_[static_cast<std::size_t>(it->second)].get();
}

void Cluster::sync_all() {
  for (auto& c : containers_) c->sync();
}

double Cluster::total_energy_joules() const {
  double total = 0.0;
  for (const auto& c : containers_) total += c->energy_joules();
  return total;
}

double Cluster::average_allocated_cores(SimTime t0, SimTime t1) const {
  double total = 0.0;
  for (const auto& c : containers_)
    total += c->core_timeline().average(t0, t1);
  return total;
}

}  // namespace sg
