// CPU frequency (DVFS) model.
//
// Mirrors the paper's testbed setup: Cascade Lake cores driven by the
// `userspace` governor, initial frequency 1.6 GHz (artifact appendix), with
// FirstResponder boosting frequency via MSR writes. Frequencies are discrete
// steps between a floor and a turbo ceiling; execution speed scales linearly
// with frequency relative to the reference.
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace sg {

/// Frequency in MHz. Integer so DVFS levels compare exactly.
using FreqMhz = int;

struct DvfsModel {
  FreqMhz min_mhz = 1600;   // paper: initial frequency 1.6 GHz
  FreqMhz max_mhz = 3100;   // Xeon 6242 all-core turbo region
  FreqMhz step_mhz = 100;
  FreqMhz ref_mhz = 1600;   // speed 1.0 reference (work is expressed at ref)

  /// Fraction of a frequency increase that translates into execution-speed
  /// increase. Microservice request handling is partly memory- and
  /// network-bound, so speed scales sub-linearly with core frequency
  /// (at 0.55, the full 1.6->3.1 GHz swing buys ~1.52x, in line with
  /// published DVFS sensitivity of cloud workloads). Power, in contrast,
  /// scales with the full frequency (see EnergyModel) — which is exactly
  /// why frequency is the right knob for transient surges (instant, no
  /// core-ledger churn) but cores are the efficient one for sustained load.
  double scaling_efficiency = 0.55;

  /// Clamps and snaps a requested frequency onto the level grid.
  FreqMhz quantize(FreqMhz f) const {
    if (f < min_mhz) return min_mhz;
    if (f > max_mhz) return max_mhz;
    const FreqMhz offset = f - min_mhz;
    return min_mhz + (offset / step_mhz) * step_mhz;
  }

  /// Execution-speed multiplier at frequency f (1.0 at ref_mhz).
  double speed(FreqMhz f) const {
    SG_ASSERT(ref_mhz > 0);
    const double rel = static_cast<double>(f) / static_cast<double>(ref_mhz);
    return 1.0 + scaling_efficiency * (rel - 1.0);
  }

  /// Number of discrete levels.
  int levels() const { return (max_mhz - min_mhz) / step_mhz + 1; }

  /// All levels, ascending.
  std::vector<FreqMhz> level_list() const {
    std::vector<FreqMhz> out;
    out.reserve(static_cast<std::size_t>(levels()));
    for (FreqMhz f = min_mhz; f <= max_mhz; f += step_mhz) out.push_back(f);
    return out;
  }
};

}  // namespace sg
