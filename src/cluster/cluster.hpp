// Cluster: the set of nodes plus container ownership.
//
// The paper's testbed is four bare-metal nodes; the Cluster owns every Node
// and Container and provides lookup, placement bookkeeping, and cluster-wide
// accounting. Controllers never receive the Cluster — each per-node
// controller instance sees only its own Node (decentralization, Fig. 1).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/container.hpp"
#include "cluster/node.hpp"
#include "sim/simulator.hpp"

namespace sg {

class Cluster {
 public:
  explicit Cluster(Simulator& sim) : sim_(sim) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a node; returns its id (dense, starting at 0).
  NodeId add_node(int total_logical_cores = 64, int reserved_cores = 19);

  /// Creates a container on `node` with an initial core allocation drawn
  /// from that node's pool. Names must be unique cluster-wide.
  Container& add_container(const std::string& name, NodeId node,
                           int initial_cores, const DvfsModel& dvfs = {},
                           const EnergyModel& energy = {});

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }

  Container& container(ContainerId id);
  const Container& container(ContainerId id) const;
  Container* find_container(const std::string& name);
  std::size_t container_count() const { return containers_.size(); }

  const std::vector<std::unique_ptr<Container>>& containers() const {
    return containers_;
  }

  Simulator& sim() { return sim_; }

  /// Syncs all containers' accounting to the current time.
  void sync_all();

  /// Cluster-wide busy-core energy (joules), after sync.
  double total_energy_joules() const;

  /// Cluster-wide time-averaged allocated cores over [t0, t1].
  double average_allocated_cores(SimTime t0, SimTime t1) const;

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Container>> containers_;
  std::unordered_map<std::string, ContainerId> by_name_;
};

}  // namespace sg
