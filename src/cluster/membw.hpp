// Shared memory-bandwidth interference domain (paper §VII "Extending
// SurgeGuard to Other Resources").
//
// The paper notes SurgeGuard extends to resources beyond cores/frequency,
// naming memory bandwidth for bandwidth-constrained services (as Balm [22]
// partitions it). This optional per-node domain models the *contention*
// that makes such management worthwhile: every busy core consumes a slice
// of the node's memory bandwidth, and once aggregate demand exceeds supply,
// every container on the node slows down proportionally:
//
//   interference = min(1, node_bw / sum_over_containers(busy_cores * demand))
//
// Containers attached to a domain multiply their execution rate by this
// factor; the bench bench_ablation_membw shows how contention amplifies
// surge damage and how the controllers cope.
//
// The domain is event-driven: whenever a member container's busy-core count
// changes, it recomputes the factor and (only if it actually changed beyond
// a hysteresis epsilon) resynchronizes all members, so the processor-
// sharing virtual clocks stay exact.
#pragma once

#include <vector>

#include "common/time.hpp"

namespace sg {

class Container;

class MemBwDomain {
 public:
  struct Params {
    /// Total node memory bandwidth, in GB/s.
    double node_bw_gbs = 100.0;
    /// Bandwidth consumed per busy core, in GB/s (service-dependent values
    /// could be added per container; a node-wide average captures the
    /// contention effect the controllers see).
    double demand_per_busy_core_gbs = 6.0;
    /// Recompute threshold: factor changes smaller than this do not trigger
    /// a domain-wide resync (keeps event counts bounded).
    double hysteresis = 0.01;
  };

  explicit MemBwDomain(Params params) : params_(params) {}

  MemBwDomain(const MemBwDomain&) = delete;
  MemBwDomain& operator=(const MemBwDomain&) = delete;

  /// Registers a member container (called by Container when attached).
  void add_member(Container* c) { members_.push_back(c); }

  /// Current slowdown factor in (0, 1]; 1 = no contention.
  double interference_factor() const { return factor_; }

  /// Total busy-core bandwidth demand right now (GB/s).
  double current_demand_gbs() const;

  /// Called by members whenever their busy-core count may have changed.
  /// Recomputes the factor and resynchronizes every member if it moved.
  void on_member_activity_changed();

  const Params& params() const { return params_; }

 private:
  double compute_factor() const;

  Params params_;
  std::vector<Container*> members_;
  double factor_ = 1.0;
  bool resyncing_ = false;
};

}  // namespace sg
