#include "cluster/membw.hpp"

#include <algorithm>

#include "cluster/container.hpp"

namespace sg {

double MemBwDomain::current_demand_gbs() const {
  double demand = 0.0;
  for (const Container* c : members_) {
    demand += c->busy_cores() * params_.demand_per_busy_core_gbs;
  }
  return demand;
}

double MemBwDomain::compute_factor() const {
  const double demand = current_demand_gbs();
  if (demand <= params_.node_bw_gbs || demand <= 0.0) return 1.0;
  return params_.node_bw_gbs / demand;
}

void MemBwDomain::on_member_activity_changed() {
  if (resyncing_) return;  // re-entrant notification from a resync itself
  const double next = compute_factor();
  if (std::abs(next - factor_) < params_.hysteresis &&
      !(next == 1.0 && factor_ != 1.0)) {
    return;
  }
  resyncing_ = true;
  // Order matters: members must bank progress at the OLD factor before the
  // new one takes effect, then re-arm their completion events at the new
  // rate.
  for (Container* c : members_) c->sync();
  factor_ = next;
  for (Container* c : members_) c->notify_rate_changed();
  resyncing_ = false;
}

}  // namespace sg
