// Node: one machine in the cluster.
//
// Mirrors the paper's per-node layout (§V): of 64 logical cores, 3 are
// reserved for SurgeGuard, 16 for network processing / OS tasks, and the
// rest are schedulable for application containers. The node keeps the
// core-allocation ledger: every logical core is either allocated to exactly
// one container or in the node's free pool (controllers draw from / return
// to the pool).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/container.hpp"
#include "cluster/membw.hpp"
#include "common/time.hpp"

namespace sg {

class Node {
 public:
  struct Params {
    NodeId id = 0;
    int total_logical_cores = 64;
    int reserved_cores = 19;  // 3 controller + 16 network/OS (paper §V)
  };

  explicit Node(Params params);

  NodeId id() const { return params_.id; }
  int total_logical_cores() const { return params_.total_logical_cores; }
  int reserved_cores() const { return params_.reserved_cores; }

  /// Cores schedulable for application containers.
  int app_cores() const {
    return params_.total_logical_cores - params_.reserved_cores;
  }

  /// Cores currently in the free pool.
  int free_cores() const;

  /// Registers a container living on this node. Its initial allocation is
  /// debited from the pool (asserts on oversubscription).
  void attach(Container* c);

  const std::vector<Container*>& containers() const { return containers_; }

  /// Moves up to `k` cores from the free pool to the container; returns how
  /// many were actually granted. No-op (returns 0) while the node is frozen.
  int grant(Container* c, int k);

  /// Takes up to `k` cores from the container back into the pool, never
  /// dropping below `floor` cores; returns how many were revoked. No-op
  /// (returns 0) while the node is frozen.
  int revoke(Container* c, int k, int floor = 1);

  /// --- fault-injection levers (sg::fault) ---

  /// Scales the execution speed of every container on this node by `factor`
  /// in (0, 1] (1 restores full speed). Models a degraded machine: thermal
  /// throttling, a noisy neighbor VM, failing hardware.
  void set_slowdown(double factor);
  double slowdown_factor() const { return slowdown_factor_; }

  /// Freezes the node: every container's core allocation is remembered and
  /// zeroed (jobs stall; packets still arrive and queue), and grant/revoke
  /// become no-ops. Models a crashed/unresponsive machine awaiting restart.
  void freeze();

  /// Restarts a frozen node: restores the remembered per-container
  /// allocations exactly and re-enables grant/revoke.
  void restart();

  bool frozen() const { return frozen_; }

  /// Sum of container allocations (the ledger complement of free_cores()).
  int allocated_cores() const;

  /// Time-averaged allocated cores over [t0, t1] (the "cores used" metric in
  /// Figs. 11-13).
  double average_allocated_cores(SimTime t0, SimTime t1) const;

  /// Total busy-core energy of this node's containers (call after
  /// Container::sync on each).
  double energy_joules() const;

  /// Enables the shared memory-bandwidth interference domain on this node
  /// (paper §VII extension). Attaches every current and future container.
  void enable_membw(MemBwDomain::Params params);

  /// nullptr when contention modeling is off.
  MemBwDomain* membw() { return membw_.get(); }
  const MemBwDomain* membw() const { return membw_.get(); }

 private:
  Params params_;
  std::vector<Container*> containers_;
  std::unique_ptr<MemBwDomain> membw_;

  // Fault-injection state.
  double slowdown_factor_ = 1.0;
  bool frozen_ = false;
  std::vector<int> frozen_allocation_;  // index-parallel to containers_
};

}  // namespace sg
