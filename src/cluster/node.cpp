#include "cluster/node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sg {

Node::Node(Params params) : params_(params) {
  SG_ASSERT(params_.total_logical_cores > 0);
  SG_ASSERT(params_.reserved_cores >= 0);
  SG_ASSERT(params_.reserved_cores < params_.total_logical_cores);
}

int Node::allocated_cores() const {
  int total = 0;
  for (const Container* c : containers_) total += c->cores();
  return total;
}

int Node::free_cores() const { return app_cores() - allocated_cores(); }

void Node::attach(Container* c) {
  SG_ASSERT(c != nullptr);
  SG_ASSERT_MSG(c->node() == params_.id, "container attached to wrong node");
  SG_ASSERT_MSG(!frozen_, "cannot attach a container to a frozen node");
  containers_.push_back(c);
  if (membw_) c->attach_membw(membw_.get());
  if (slowdown_factor_ < 1.0) c->set_speed_scale(slowdown_factor_);
  SG_ASSERT_MSG(free_cores() >= 0,
                "initial allocations oversubscribe the node");
}

int Node::grant(Container* c, int k) {
  SG_ASSERT(c != nullptr && k >= 0);
  if (frozen_) return 0;
  const int granted = std::min(k, free_cores());
  if (granted > 0) c->set_cores(c->cores() + granted);
  return granted;
}

int Node::revoke(Container* c, int k, int floor) {
  SG_ASSERT(c != nullptr && k >= 0 && floor >= 0);
  if (frozen_) return 0;
  const int revocable = std::max(0, c->cores() - floor);
  const int revoked = std::min(k, revocable);
  if (revoked > 0) c->set_cores(c->cores() - revoked);
  return revoked;
}

void Node::set_slowdown(double factor) {
  SG_ASSERT_MSG(factor > 0.0 && factor <= 1.0,
                "slowdown factor outside (0, 1]");
  slowdown_factor_ = factor;
  for (Container* c : containers_) c->set_speed_scale(factor);
}

void Node::freeze() {
  if (frozen_) return;
  frozen_allocation_.clear();
  frozen_allocation_.reserve(containers_.size());
  for (Container* c : containers_) {
    frozen_allocation_.push_back(c->cores());
    c->set_cores(0);
  }
  // Flag flips after the zeroing so the ledger stays consistent throughout.
  frozen_ = true;
}

void Node::restart() {
  if (!frozen_) return;
  frozen_ = false;
  SG_ASSERT(frozen_allocation_.size() == containers_.size());
  for (std::size_t i = 0; i < containers_.size(); ++i) {
    containers_[i]->set_cores(frozen_allocation_[i]);
  }
  frozen_allocation_.clear();
}

double Node::average_allocated_cores(SimTime t0, SimTime t1) const {
  double total = 0.0;
  for (const Container* c : containers_)
    total += c->core_timeline().average(t0, t1);
  return total;
}

double Node::energy_joules() const {
  double total = 0.0;
  for (const Container* c : containers_) total += c->energy_joules();
  return total;
}

void Node::enable_membw(MemBwDomain::Params params) {
  SG_ASSERT_MSG(membw_ == nullptr, "membw domain already enabled");
  membw_ = std::make_unique<MemBwDomain>(params);
  for (Container* c : containers_) c->attach_membw(membw_.get());
}

}  // namespace sg
