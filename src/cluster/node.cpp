#include "cluster/node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sg {

Node::Node(Params params) : params_(params) {
  SG_ASSERT(params_.total_logical_cores > 0);
  SG_ASSERT(params_.reserved_cores >= 0);
  SG_ASSERT(params_.reserved_cores < params_.total_logical_cores);
}

int Node::allocated_cores() const {
  int total = 0;
  for (const Container* c : containers_) total += c->cores();
  return total;
}

int Node::free_cores() const { return app_cores() - allocated_cores(); }

void Node::attach(Container* c) {
  SG_ASSERT(c != nullptr);
  SG_ASSERT_MSG(c->node() == params_.id, "container attached to wrong node");
  containers_.push_back(c);
  if (membw_) c->attach_membw(membw_.get());
  SG_ASSERT_MSG(free_cores() >= 0,
                "initial allocations oversubscribe the node");
}

int Node::grant(Container* c, int k) {
  SG_ASSERT(c != nullptr && k >= 0);
  const int granted = std::min(k, free_cores());
  if (granted > 0) c->set_cores(c->cores() + granted);
  return granted;
}

int Node::revoke(Container* c, int k, int floor) {
  SG_ASSERT(c != nullptr && k >= 0 && floor >= 0);
  const int revocable = std::max(0, c->cores() - floor);
  const int revoked = std::min(k, revocable);
  if (revoked > 0) c->set_cores(c->cores() - revoked);
  return revoked;
}

double Node::average_allocated_cores(SimTime t0, SimTime t1) const {
  double total = 0.0;
  for (const Container* c : containers_)
    total += c->core_timeline().average(t0, t1);
  return total;
}

double Node::energy_joules() const {
  double total = 0.0;
  for (const Container* c : containers_) total += c->energy_joules();
  return total;
}

void Node::enable_membw(MemBwDomain::Params params) {
  SG_ASSERT_MSG(membw_ == nullptr, "membw domain already enabled");
  membw_ = std::make_unique<MemBwDomain>(params);
  for (Container* c : containers_) c->attach_membw(membw_.get());
}

}  // namespace sg
