// Container: the unit of resource allocation.
//
// Each microservice instance runs in one container owning an integer number
// of logical cores on its node and a per-container DVFS frequency (the two
// resources SurgeGuard manages, paper §IV). CPU work executes under
// processor sharing: with N in-flight jobs and n cores at frequency f, every
// job progresses at min(1, n/N) * f/f_ref. This reproduces the contention
// behaviour the controllers react to: thread oversubscription slows all
// requests; added cores or frequency speed them all up.
//
// The implementation uses virtual time: a counter V advances at the common
// per-job rate, and a job submitted at V with work w completes when V
// reaches w + V. Completions therefore pop from a min-heap keyed by finish-V
// in O(log n), and rate changes (core grants, frequency boosts, arrivals,
// departures) only need V advanced to the present and the next completion
// event rescheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cpu.hpp"
#include "cluster/energy.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"

namespace sg {

using ContainerId = int;
using NodeId = int;
using JobId = std::uint64_t;

class MemBwDomain;

class Container {
 public:
  struct Params {
    std::string name;
    ContainerId id = 0;
    NodeId node = 0;
    int initial_cores = 2;
    DvfsModel dvfs{};
    EnergyModel energy{};
  };

  Container(Simulator& sim, Params params);

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  const std::string& name() const { return params_.name; }
  ContainerId id() const { return params_.id; }
  NodeId node() const { return params_.node; }
  const DvfsModel& dvfs() const { return params_.dvfs; }

  /// Submits a CPU-bound job of `work_ns_ref` nanoseconds measured at one
  /// dedicated core at the reference frequency. `on_complete` fires from the
  /// event loop when the job's share of the CPU has delivered that work.
  JobId submit(double work_ns_ref, std::function<void()> on_complete);

  /// --- resource control (called by controllers) ---

  /// Sets the logical-core allocation. 0 is legal (jobs stall).
  void set_cores(int n);
  int cores() const { return cores_; }

  /// Sets the container's core frequency (quantized onto the DVFS grid).
  void set_frequency(FreqMhz f);
  FreqMhz frequency() const { return freq_; }

  /// External execution-speed multiplier in (0, 1]: all in-flight jobs
  /// progress at scale x their normal rate. 0 is legal and stalls jobs
  /// entirely. Used by fault injection to model node slowdown/freeze;
  /// orthogonal to cores, DVFS, and memory-bandwidth interference.
  void set_speed_scale(double scale);
  double speed_scale() const { return speed_scale_; }

  /// --- introspection ---

  int active_jobs() const { return static_cast<int>(jobs_.size()); }
  double busy_cores() const;

  /// Advances internal accounting to the current simulation time. Energy and
  /// busy-time reads are exact after sync().
  void sync();

  /// Joins a shared memory-bandwidth domain; the container's execution rate
  /// is multiplied by the domain's interference factor from now on.
  void attach_membw(MemBwDomain* domain);

  /// Re-arms the pending completion event after an external rate change
  /// (MemBwDomain factor updates). Callers must have sync()ed first.
  void notify_rate_changed() { reschedule(); }

  /// Joules consumed by busy cores so far (idle excluded).
  double energy_joules() const { return energy_joules_; }

  /// Integrated busy-core-seconds (utilization numerator).
  double busy_core_seconds() const { return busy_core_seconds_; }

  /// Integrated per-job core share: ∫ min(1, cores/N) dt over time with
  /// jobs in flight, in nanoseconds. Under processor sharing every
  /// in-flight job advances through "core possession" at exactly this
  /// common rate, so the delta of this integral across a job's lifetime is
  /// the time it effectively held a core — and wall minus delta is its
  /// CPU-queue time. sg::trace reads it at span boundaries (both fall
  /// inside event handlers where advance() has already run).
  double share_integral_ns() const { return share_integral_ns_; }

  /// Allocation history; drives Fig. 14 and average-cores metrics.
  const StepTimeline& core_timeline() const { return core_timeline_; }
  const StepTimeline& freq_timeline() const { return freq_timeline_; }

  /// Total jobs completed (sanity/throughput accounting).
  std::uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  /// Per-job progress rate (work-ns at ref per wall ns); 0 when starved.
  double rate() const;

  /// Advances virtual time & energy integrals to sim_.now().
  void advance();

  /// Re-arms the single pending completion event.
  void reschedule();

  void on_completion_event();

  Simulator& sim_;
  Params params_;
  MemBwDomain* membw_ = nullptr;

  int cores_;
  FreqMhz freq_;
  double speed_scale_ = 1.0;

  // Virtual-time processor-sharing state.
  double vtime_ = 0.0;
  SimTime last_advance_ = 0;
  using HeapEntry = std::pair<double, JobId>;  // (finish_v, job)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      finish_heap_;
  std::unordered_map<JobId, std::function<void()>> jobs_;
  JobId next_job_id_ = 1;
  EventId completion_event_ = kInvalidEvent;

  // Accounting.
  double energy_joules_ = 0.0;
  double busy_core_seconds_ = 0.0;
  double share_integral_ns_ = 0.0;
  std::uint64_t jobs_completed_ = 0;
  StepTimeline core_timeline_;
  StepTimeline freq_timeline_;
};

}  // namespace sg
