// Per-core power/energy model.
//
// The paper measures application energy with `perf`, subtracting idle
// consumption. Controllers are compared on *relative* energy, so any model
// that is monotone in frequency and activity preserves the paper's ordering.
// We use the standard CMOS-style decomposition: active power has a static
// leakage part plus a dynamic part growing super-linearly with frequency
// (P_dyn ~ C V^2 f; alpha = 1.8 reflects that server parts ride a shallow
// V/f curve across the 1.6-3.1 GHz band).
#pragma once

#include <cmath>

#include "cluster/cpu.hpp"
#include "common/time.hpp"

namespace sg {

struct EnergyModel {
  double static_watts_per_core = 0.8;   // leakage while the core is busy
  double dynamic_watts_at_ref = 1.7;    // dynamic power at ref frequency
  double freq_exponent = 1.8;

  /// Power of a core that is ALLOCATED to a container but momentarily idle.
  /// Microservice runtimes poll their connection pools and RPC queues, so a
  /// hogged core never drops to package idle (which the paper's
  /// measurements subtract out); this term is what makes over-allocation
  /// cost energy, not just cores.
  double allocated_idle_watts = 1.2;

  /// Power of one busy core at frequency f (idle power is excluded, as the
  /// paper subtracts idle energy).
  double busy_core_watts(FreqMhz f, FreqMhz ref) const {
    const double rel = static_cast<double>(f) / static_cast<double>(ref);
    return static_watts_per_core +
           dynamic_watts_at_ref * std::pow(rel, freq_exponent);
  }

  /// Energy in joules for `busy_cores` cores running `dt` at frequency f.
  double energy_joules(double busy_cores, FreqMhz f, FreqMhz ref,
                       SimTime dt) const {
    return busy_core_watts(f, ref) * busy_cores * to_seconds(dt);
  }
};

}  // namespace sg
