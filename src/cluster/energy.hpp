// Per-core power/energy model.
//
// The paper measures application energy with `perf`, subtracting idle
// consumption. Controllers are compared on *relative* energy, so any model
// that is monotone in frequency and activity preserves the paper's ordering.
// We use the standard CMOS-style decomposition: active power has a static
// leakage part plus a dynamic part growing super-linearly with frequency
// (P_dyn ~ C V^2 f; alpha = 1.8 reflects that server parts ride a shallow
// V/f curve across the 1.6-3.1 GHz band).
#pragma once

#include <cmath>

#include "cluster/cpu.hpp"
#include "common/time.hpp"

namespace sg {

struct EnergyModel {
  double static_watts_per_core = 0.8;   // leakage while the core is busy
  double dynamic_watts_at_ref = 1.7;    // dynamic power at ref frequency
  double freq_exponent = 1.8;

  /// Power of a core that is ALLOCATED to a container but momentarily idle.
  /// Microservice runtimes poll their connection pools and RPC queues, so a
  /// hogged core never drops to package idle (which the paper's
  /// measurements subtract out); this term is what makes over-allocation
  /// cost energy, not just cores.
  double allocated_idle_watts = 1.2;

  /// Power of one busy core at frequency f (idle power is excluded, as the
  /// paper subtracts idle energy). The frequency ratio is dimensionless
  /// (Freq / Freq), so the formula cannot silently mix Hz with MHz.
  double busy_core_watts(Freq f, Freq ref) const {
    const double rel = f / ref;
    return static_watts_per_core +
           dynamic_watts_at_ref * std::pow(rel, freq_exponent);
  }

  /// Raw-MHz convenience used by the DVFS plumbing (FreqMhz is the knob's
  /// config unit); forwards to the strong-typed overload.
  double busy_core_watts(FreqMhz f, FreqMhz ref) const {
    return busy_core_watts(Freq::mhz(f), Freq::mhz(ref));
  }

  /// Energy for `busy_cores` cores running `dt` at frequency f.
  Energy energy(double busy_cores, Freq f, Freq ref, Duration dt) const {
    return Energy::joules(busy_core_watts(f, ref) * busy_cores *
                          to_seconds(dt));
  }

  /// Legacy raw interface (joules as double, dt in ns).
  double energy_joules(double busy_cores, FreqMhz f, FreqMhz ref,
                       SimTime dt) const {
    return energy(busy_cores, Freq::mhz(f), Freq::mhz(ref), Duration{dt})
        .joules();
  }
};

}  // namespace sg
