#include "cluster/container.hpp"

#include <cmath>

#include "cluster/membw.hpp"
#include "common/assert.hpp"

namespace sg {

Container::Container(Simulator& sim, Params params)
    : sim_(sim),
      params_(std::move(params)),
      cores_(params_.initial_cores),
      freq_(params_.dvfs.quantize(params_.dvfs.min_mhz)),
      core_timeline_(static_cast<double>(cores_)),
      freq_timeline_(static_cast<double>(freq_)) {
  SG_ASSERT(cores_ >= 0);
}

double Container::rate() const {
  const int n = static_cast<int>(jobs_.size());
  if (n == 0 || cores_ == 0) return 0.0;
  const double share =
      std::min(1.0, static_cast<double>(cores_) / static_cast<double>(n));
  const double interference =
      membw_ != nullptr ? membw_->interference_factor() : 1.0;
  return params_.dvfs.speed(freq_) * share * interference * speed_scale_;
}

double Container::busy_cores() const {
  return std::min(static_cast<double>(jobs_.size()),
                  static_cast<double>(cores_));
}

void Container::advance() {
  const SimTime now = sim_.now();
  const Duration dt = Duration{now - last_advance_};
  if (dt <= Duration::zero()) return;
  const double busy = busy_cores();
  if (busy > 0.0) {
    energy_joules_ += params_.energy
                          .energy(busy, Freq::mhz(freq_),
                                  Freq::mhz(params_.dvfs.ref_mhz), dt)
                          .joules();
    busy_core_seconds_ += busy * to_seconds(dt);
    // busy / N == min(1, cores/N): the common per-job core share.
    share_integral_ns_ += static_cast<double>(dt.ns()) * busy /
                          static_cast<double>(jobs_.size());
    vtime_ += static_cast<double>(dt.ns()) * rate();
  }
  // Allocated-but-idle cores poll (threadpools, RPC runtimes) and draw
  // power; this charges over-allocation even when no request is running.
  const double idle_cores = static_cast<double>(cores_) - busy;
  if (idle_cores > 0.0) {
    energy_joules_ +=
        params_.energy.allocated_idle_watts * idle_cores * to_seconds(dt);
  }
  last_advance_ = now;
}

void Container::reschedule() {
  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  if (finish_heap_.empty()) return;
  const double r = rate();
  if (r <= 0.0) return;  // starved: jobs stall until cores/freq return
  const double work_left = finish_heap_.top().first - vtime_;
  const double dt = std::max(0.0, work_left) / r;
  // ceil so that by the event time the job has definitely finished (modulo
  // float error handled in on_completion_event).
  const SimTime delay = static_cast<SimTime>(std::ceil(dt));
  completion_event_ =
      sim_.schedule_after(delay, [this]() { on_completion_event(); });
}

void Container::on_completion_event() {
  completion_event_ = kInvalidEvent;
  advance();
  // Complete everything that has received its full work. The epsilon covers
  // accumulated floating-point error: half a nanosecond of progress at the
  // current rate (rate() > 0 here because the event was armed).
  const double eps = std::max(rate(), 1e-9) * 0.5;
  bool completed_any = false;
  while (!finish_heap_.empty() && finish_heap_.top().first <= vtime_ + eps) {
    const JobId id = finish_heap_.top().second;
    finish_heap_.pop();
    auto it = jobs_.find(id);
    SG_ASSERT_MSG(it != jobs_.end(), "completion for unknown job");
    auto cb = std::move(it->second);
    jobs_.erase(it);
    ++jobs_completed_;
    completed_any = true;
    // Callback may submit new jobs / change allocations re-entrantly; state
    // is consistent at this point.
    cb();
  }
  // Guard against a stuck heap: if rounding left the top job un-finished,
  // rescheduling computes a fresh (tiny but positive) delay, so progress is
  // guaranteed. completed_any is informational for debugging.
  (void)completed_any;
  advance();
  reschedule();
  if (completed_any && membw_ != nullptr) {
    membw_->on_member_activity_changed();
  }
}

JobId Container::submit(double work_ns_ref, std::function<void()> on_complete) {
  SG_ASSERT_MSG(work_ns_ref >= 0.0, "negative work");
  advance();
  const JobId id = next_job_id_++;
  finish_heap_.emplace(vtime_ + work_ns_ref, id);
  jobs_.emplace(id, std::move(on_complete));
  reschedule();
  if (membw_ != nullptr) membw_->on_member_activity_changed();
  return id;
}

void Container::set_cores(int n) {
  SG_ASSERT(n >= 0);
  if (n == cores_) return;
  advance();
  cores_ = n;
  core_timeline_.set(sim_.now(), static_cast<double>(n));
  reschedule();
  if (membw_ != nullptr) membw_->on_member_activity_changed();
}

void Container::set_frequency(FreqMhz f) {
  const FreqMhz q = params_.dvfs.quantize(f);
  if (q == freq_) return;
  advance();
  freq_ = q;
  freq_timeline_.set(sim_.now(), static_cast<double>(q));
  reschedule();
}

void Container::set_speed_scale(double scale) {
  SG_ASSERT_MSG(scale >= 0.0 && scale <= 1.0, "speed scale outside [0, 1]");
  if (scale == speed_scale_) return;
  advance();
  speed_scale_ = scale;
  reschedule();
}

void Container::sync() { advance(); }

void Container::attach_membw(MemBwDomain* domain) {
  SG_ASSERT_MSG(membw_ == nullptr, "container already in a membw domain");
  advance();
  membw_ = domain;
  domain->add_member(this);
  domain->on_member_activity_changed();
}

}  // namespace sg
