// Violation volume: the paper's evaluation metric (§II-D, Fig. 3).
//
// Violation volume is the magnitude-duration product of QoS violations: the
// area of the output-latency-vs-time curve above the QoS target. It
// captures both how *badly* and for how *long* a controller misses QoS,
// unlike tail latency (ignores duration) or violation frequency (ignores
// magnitude).
//
// The output-latency curve is built from completions bucketed into fixed
// windows (mean latency per window); empty windows hold the previous value,
// matching how a latency-over-time plot of a stalled system reads until the
// stall's huge-latency completions land.
#pragma once

#include "common/time.hpp"
#include "sim/timeline.hpp"

namespace sg {

class ViolationVolumeTracker {
 public:
  /// qos: the end-to-end latency target (wrk2_spike -qos).
  /// window: bucketing granularity of the output-latency curve. Short-surge
  /// experiments (Fig. 10) use ~1ms; the 2s-surge experiments use ~5-10ms.
  ViolationVolumeTracker(SimTime qos, SimTime window = 5 * kMillisecond);

  /// Feeds one completed request (completion time t, end-to-end latency).
  /// Completion times must be non-decreasing (event-loop order guarantees
  /// this).
  void record_completion(SimTime t, SimTime latency);

  /// Closes any open window (call once before reading results).
  void finalize(SimTime now);

  SimTime qos() const { return qos_; }

  /// Violation volume over [t0, t1] in nanosecond·nanoseconds.
  double violation_volume_ns2(SimTime t0, SimTime t1) const;

  /// Violation volume in millisecond·seconds (the natural reporting unit:
  /// latency excess in ms integrated over seconds of wall time).
  double violation_volume_ms_s(SimTime t0, SimTime t1) const;

  /// Fraction of [t0, t1] spent above QoS (violation duration share).
  double violation_duration_fraction(SimTime t0, SimTime t1) const;

  /// The bucketed output-latency curve (values in ns).
  const StepTimeline& latency_series() const { return series_; }

 private:
  void close_window();

  SimTime qos_;
  SimTime window_;
  StepTimeline series_;
  SimTime window_start_ = 0;
  double window_sum_ = 0.0;
  long window_count_ = 0;
};

}  // namespace sg
