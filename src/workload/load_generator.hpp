// Open-loop load generator: the wrk2_spike analog (artifact A2).
//
// Issues requests to an Application's entry service per a SpikePattern,
// records per-request latency, and reports the latency histogram plus the
// violation volume — exactly the outputs of the paper's modified wrk2.
// Arrivals are open-loop (requests are sent on schedule regardless of
// completions), which is what makes queue buildup during surges visible.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "app/application.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workload/spike.hpp"
#include "workload/violation_volume.hpp"

namespace sg {

struct LoadGenOptions {
  SpikePattern pattern;

  /// End-to-end QoS target (wrk2_spike -qos).
  SimTime qos = 10 * kMillisecond;

  /// Measurement starts at `warmup` and lasts `duration` (paper: 30s + 60s;
  /// benches default shorter for wall-clock reasons, protocol identical).
  SimTime warmup = 5 * kSecond;
  SimTime duration = 30 * kSecond;

  /// Poisson (true) or wrk2-style constant-throughput (false) pacing.
  /// wrk2's scheduler paces deterministically, so that is the default.
  bool poisson = false;

  /// Output-latency bucketing for the violation-volume curve.
  SimTime vv_window = 5 * kMillisecond;

  /// Client-side request retransmission (wrk2 atop a retrying RPC client).
  /// A request's latency spans the ORIGINAL issue to the first completion,
  /// so retries show up as tail latency, exactly as they would at a real
  /// client. Requests abandoned after max_retries count as dropped.
  RpcRetryPolicy retry;
};

struct LoadGenResults {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  // completions inside the measure window
  std::uint64_t completed_total = 0;  // completions over the whole run
  std::uint64_t retries = 0;    // client retransmissions
  std::uint64_t dropped = 0;    // requests abandoned (retries exhausted)
  std::uint64_t duplicate_responses = 0;  // extra responses (dup faults)
  std::uint64_t outstanding = 0;  // still in flight when results() was read
  double violation_volume_ms_s = 0.0;
  double violation_duration_frac = 0.0;
  SimTime p50 = 0;
  SimTime p98 = 0;
  SimTime p99 = 0;
  SimTime max_latency = 0;
  double mean_latency_ns = 0.0;
  double throughput_rps = 0.0;
  SimTime qos = 0;
};

class LoadGenerator {
 public:
  LoadGenerator(Simulator& sim, Network& network, Application& app,
                LoadGenOptions options);

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Arms the arrival process from t = now. The simulation owner then runs
  /// the simulator to warmup + duration (plus drain slack if desired).
  void start();

  /// Stops issuing new requests (in-flight ones still complete).
  void stop() { stopped_ = true; }

  /// Results over the measurement window. Call after the simulator has run
  /// past warmup + duration.
  LoadGenResults results();

  SimTime measure_start() const { return options_.warmup; }
  SimTime measure_end() const { return options_.warmup + options_.duration; }

  const LatencyHistogram& histogram() const { return histogram_; }
  const ViolationVolumeTracker& vv_tracker() const { return vv_; }
  const LoadGenOptions& options() const { return options_; }

  /// Requests issued but neither completed nor abandoned. Zero at drain is
  /// the request-conservation invariant:
  /// issued == completed_total + dropped + outstanding.
  std::size_t outstanding() const { return outstanding_.size(); }

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed_total() const { return completed_total_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t client_retries() const { return retries_; }

 private:
  struct Outstanding {
    TimePoint start;               // original issue time (latency anchor)
    int attempt = 0;               // 0 = initial send
    EventId timer = kInvalidEvent; // armed only when retry is enabled
    bool traced = false;           // spans being recorded for this request
  };

  void schedule_next_arrival();
  void issue_request();
  void send_request(RequestId id, TimePoint start_time, bool traced);
  void on_request_timeout(RequestId id);
  void on_response(const RpcPacket& pkt);

  Simulator& sim_;
  Network& network_;
  Application& app_;
  LoadGenOptions options_;
  Rng rng_;

  LatencyHistogram histogram_;
  ViolationVolumeTracker vv_;

  RequestId next_request_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_in_window_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicate_responses_ = 0;
  std::unordered_map<RequestId, Outstanding> outstanding_;
  bool stopped_ = false;
};

}  // namespace sg
