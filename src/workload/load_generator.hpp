// Open-loop load generator: the wrk2_spike analog (artifact A2).
//
// Issues requests to an Application's entry service per a SpikePattern,
// records per-request latency, and reports the latency histogram plus the
// violation volume — exactly the outputs of the paper's modified wrk2.
// Arrivals are open-loop (requests are sent on schedule regardless of
// completions), which is what makes queue buildup during surges visible.
#pragma once

#include <cstdint>

#include "app/application.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workload/spike.hpp"
#include "workload/violation_volume.hpp"

namespace sg {

struct LoadGenOptions {
  SpikePattern pattern;

  /// End-to-end QoS target (wrk2_spike -qos).
  SimTime qos = 10 * kMillisecond;

  /// Measurement starts at `warmup` and lasts `duration` (paper: 30s + 60s;
  /// benches default shorter for wall-clock reasons, protocol identical).
  SimTime warmup = 5 * kSecond;
  SimTime duration = 30 * kSecond;

  /// Poisson (true) or wrk2-style constant-throughput (false) pacing.
  /// wrk2's scheduler paces deterministically, so that is the default.
  bool poisson = false;

  /// Output-latency bucketing for the violation-volume curve.
  SimTime vv_window = 5 * kMillisecond;
};

struct LoadGenResults {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  // completions inside the measure window
  double violation_volume_ms_s = 0.0;
  double violation_duration_frac = 0.0;
  SimTime p50 = 0;
  SimTime p98 = 0;
  SimTime p99 = 0;
  SimTime max_latency = 0;
  double mean_latency_ns = 0.0;
  double throughput_rps = 0.0;
  SimTime qos = 0;
};

class LoadGenerator {
 public:
  LoadGenerator(Simulator& sim, Network& network, Application& app,
                LoadGenOptions options);

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Arms the arrival process from t = now. The simulation owner then runs
  /// the simulator to warmup + duration (plus drain slack if desired).
  void start();

  /// Stops issuing new requests (in-flight ones still complete).
  void stop() { stopped_ = true; }

  /// Results over the measurement window. Call after the simulator has run
  /// past warmup + duration.
  LoadGenResults results();

  SimTime measure_start() const { return options_.warmup; }
  SimTime measure_end() const { return options_.warmup + options_.duration; }

  const LatencyHistogram& histogram() const { return histogram_; }
  const ViolationVolumeTracker& vv_tracker() const { return vv_; }
  const LoadGenOptions& options() const { return options_; }

 private:
  void schedule_next_arrival();
  void issue_request();
  void on_response(const RpcPacket& pkt);

  Simulator& sim_;
  Network& network_;
  Application& app_;
  LoadGenOptions options_;
  Rng rng_;

  LatencyHistogram histogram_;
  ViolationVolumeTracker vv_;

  RequestId next_request_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_in_window_ = 0;
  bool stopped_ = false;
};

}  // namespace sg
