#include "workload/spike.hpp"

#include <algorithm>
#include <cstdint>

namespace sg {

bool SpikePattern::in_spike(SimTime t) const {
  if (!has_spikes()) return false;
  if (t < first_spike_at) return false;
  const SimTime since = (t - first_spike_at) % spike_period;
  return since < spike_len;
}

double SpikePattern::rate_at(SimTime t) const {
  return in_spike(t) ? spike_rate_rps : base_rate_rps;
}

SimTime SpikePattern::next_rate_change(SimTime t) const {
  if (!has_spikes()) return kTimeInfinity;
  if (t < first_spike_at) return first_spike_at;
  const std::int64_t k = (t - first_spike_at) / spike_period;
  const SimTime within = (t - first_spike_at) % spike_period;
  if (within < spike_len) {
    return first_spike_at + k * spike_period + spike_len;
  }
  return first_spike_at + (k + 1) * spike_period;
}

double SpikePattern::max_rate() const {
  return std::max(base_rate_rps, has_spikes() ? spike_rate_rps : 0.0);
}

std::vector<SpikePattern::Window> SpikePattern::spikes_in(SimTime t0,
                                                          SimTime t1) const {
  std::vector<Window> out;
  if (!has_spikes() || t1 <= t0) return out;
  // First spike index whose window could intersect [t0, t1].
  std::int64_t k0 = 0;
  if (t0 > first_spike_at) k0 = (t0 - first_spike_at) / spike_period;
  for (std::int64_t k = std::max<std::int64_t>(0, k0 - 1);; ++k) {
    const SimTime start = first_spike_at + k * spike_period;
    if (start >= t1) break;
    const SimTime end = start + spike_len;
    if (end > t0) out.push_back({start, end});
  }
  return out;
}

SpikePattern SpikePattern::steady(double rate) {
  SpikePattern p;
  p.base_rate_rps = rate;
  p.spike_rate_rps = rate;
  p.spike_len = 0;
  return p;
}

SpikePattern SpikePattern::surges(double rate, double mult, SimTime len,
                                  SimTime period, SimTime first_at) {
  SpikePattern p;
  p.base_rate_rps = rate;
  p.spike_rate_rps = rate * mult;
  p.spike_len = len;
  p.spike_period = period;
  p.first_spike_at = first_at;
  return p;
}

}  // namespace sg
