// Input load patterns with injected request-rate spikes.
//
// Mirrors the paper's modified wrk2 (`wrk2_spike`, artifact A2): an open-
// loop generator with `-rate` (steady rate), `-spikerate` (rate during the
// spike), `-spikelen` (spike duration), plus the spike injection period used
// in §VI ("injecting 2s long request rate surges every 10s").
#pragma once

#include <vector>

#include "common/time.hpp"

namespace sg {

struct SpikePattern {
  double base_rate_rps = 1000.0;

  /// Rate during a spike (wrk2_spike -spikerate). Equal to base_rate_rps
  /// means no spikes.
  double spike_rate_rps = 1000.0;

  /// Spike duration (wrk2_spike -spikelen); 0 disables spikes.
  SimTime spike_len = 0;

  /// A spike starts every `spike_period`, the first at `first_spike_at`.
  SimTime spike_period = 10 * kSecond;
  SimTime first_spike_at = 5 * kSecond;

  bool has_spikes() const {
    return spike_len > 0 && spike_rate_rps != base_rate_rps;
  }

  bool in_spike(SimTime t) const;

  /// Instantaneous request rate at time t.
  double rate_at(SimTime t) const;

  /// First time strictly after t at which the rate changes (spike start or
  /// end); kTimeInfinity when the pattern is steady.
  SimTime next_rate_change(SimTime t) const;

  /// Max of base and spike rates (thinning envelope for the generator).
  double max_rate() const;

  /// Spike windows intersecting [t0, t1] (for oracle controllers and
  /// plotting).
  struct Window {
    SimTime start;
    SimTime end;
  };
  std::vector<Window> spikes_in(SimTime t0, SimTime t1) const;

  /// Convenience: steady load at `rate`.
  static SpikePattern steady(double rate);

  /// Convenience: `mult`x surges of `len` every `period` on top of `rate`.
  static SpikePattern surges(double rate, double mult, SimTime len,
                             SimTime period, SimTime first_at);
};

}  // namespace sg
