#include "workload/violation_volume.hpp"

#include "common/assert.hpp"

namespace sg {

ViolationVolumeTracker::ViolationVolumeTracker(SimTime qos, SimTime window)
    : qos_(qos), window_(window), series_(0.0) {
  SG_ASSERT(qos > 0 && window > 0);
}

void ViolationVolumeTracker::close_window() {
  if (window_count_ > 0) {
    series_.set(window_start_, window_sum_ / static_cast<double>(window_count_));
  }
  // Empty windows: hold the previous value (no series update).
  window_sum_ = 0.0;
  window_count_ = 0;
}

void ViolationVolumeTracker::record_completion(SimTime t, SimTime latency) {
  SG_ASSERT_MSG(t >= window_start_, "completions must be time-ordered");
  while (t >= window_start_ + window_) {
    close_window();
    window_start_ += window_;
  }
  window_sum_ += static_cast<double>(latency);
  ++window_count_;
}

void ViolationVolumeTracker::finalize(SimTime now) {
  while (now >= window_start_ + window_) {
    close_window();
    window_start_ += window_;
  }
  close_window();
}

double ViolationVolumeTracker::violation_volume_ns2(SimTime t0,
                                                    SimTime t1) const {
  return series_.integrate_above(t0, t1, static_cast<double>(qos_));
}

double ViolationVolumeTracker::violation_volume_ms_s(SimTime t0,
                                                     SimTime t1) const {
  // ns (latency) * ns (time) -> ms * s: divide by 1e6 * 1e9.
  return violation_volume_ns2(t0, t1) / 1e15;
}

double ViolationVolumeTracker::violation_duration_fraction(SimTime t0,
                                                           SimTime t1) const {
  if (t1 <= t0) return 0.0;
  double above = 0.0;
  const auto& pts = series_.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const SimTime seg_start = std::max(pts[i].time, t0);
    const SimTime seg_end =
        (i + 1 < pts.size()) ? std::min(pts[i + 1].time, t1) : t1;
    if (seg_start >= t1) break;
    if (seg_end > seg_start && pts[i].value > static_cast<double>(qos_)) {
      above += static_cast<double>(seg_end - seg_start);
    }
  }
  return above / static_cast<double>(t1 - t0);
}

}  // namespace sg
