#include "workload/load_generator.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace sg {

LoadGenerator::LoadGenerator(Simulator& sim, Network& network,
                             Application& app, LoadGenOptions options)
    : sim_(sim),
      network_(network),
      app_(app),
      options_(options),
      rng_(sim.rng().fork()),
      vv_(options.qos, options.vv_window) {
  SG_ASSERT(options_.pattern.base_rate_rps > 0.0);
  network_.register_client_receiver(
      [this](const RpcPacket& pkt) { on_response(pkt); });
}

void LoadGenerator::start() { schedule_next_arrival(); }

void LoadGenerator::schedule_next_arrival() {
  if (stopped_) return;
  const double max_rate = options_.pattern.max_rate();
  SG_ASSERT(max_rate > 0.0);
  const double mean_gap_ns = 1e9 / max_rate;

  if (options_.poisson) {
    // Non-homogeneous Poisson via thinning: draw at the envelope rate,
    // accept with probability rate(t)/max_rate. Exact for piecewise-constant
    // rates, which is all SpikePattern produces.
    const double gap = rng_.exponential(mean_gap_ns);
    sim_.schedule_after(static_cast<SimTime>(gap), [this, max_rate]() {
      const double accept_p =
          options_.pattern.rate_at(sim_.now()) / max_rate;
      if (rng_.uniform() < accept_p) issue_request();
      schedule_next_arrival();
    });
  } else {
    // Constant-throughput pacing (wrk2's scheduling model) at the
    // instantaneous rate. When a rate-change boundary lands before the next
    // scheduled arrival, pacing re-synchronizes at the boundary so even
    // spikes shorter than one base-rate gap are generated.
    const SimTime now = sim_.now();
    const double rate_now = options_.pattern.rate_at(now);
    const SimTime gap =
        std::max<SimTime>(1, static_cast<SimTime>(std::llround(1e9 / rate_now)));
    const SimTime boundary = options_.pattern.next_rate_change(now);
    if (boundary < now + gap) {
      sim_.schedule_at(boundary, [this]() { schedule_next_arrival(); });
    } else {
      sim_.schedule_after(gap, [this]() {
        issue_request();
        schedule_next_arrival();
      });
    }
  }
}

void LoadGenerator::issue_request() {
  const RequestId id = next_request_++;
  const TimePoint now = sim_.now_point();
  ++issued_;
  Outstanding& o = outstanding_[id];
  o.start = now;
  o.attempt = 0;
  if (TraceSink* trace = sim_.trace_sink()) {
    // Head sampling happens here, at the root of the request: the decision
    // is a pure hash of the request id, never a simulator RNG draw, so
    // traced and untraced runs replay identical event sequences.
    o.traced = trace->should_record(id) && trace->begin_request(id, now);
  }
  if (options_.retry.enabled) {
    o.timer = sim_.schedule_after(options_.retry.timeout_for_attempt(0),
                                  [this, id]() { on_request_timeout(id); });
  }
  send_request(id, now, o.traced);
}

void LoadGenerator::send_request(RequestId id, TimePoint start_time,
                                 bool traced) {
  RpcPacket pkt;
  pkt.request_id = id;
  pkt.call_id = 0;
  pkt.src_container = kClientEndpoint;
  pkt.src_node = kClientNode;
  pkt.dst_container = app_.entry_container();
  pkt.dst_node = app_.entry_node();
  pkt.is_response = false;
  pkt.start_time = start_time;  // SurgeGuard startTime stamped at the source
  pkt.upscale = 0;
  pkt.traced = traced;
  network_.send(kClientNode, pkt);
}

void LoadGenerator::on_request_timeout(RequestId id) {
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;  // completed meanwhile
  Outstanding& o = it->second;
  if (o.attempt < options_.retry.max_retries) {
    ++o.attempt;
    ++retries_;
    o.timer =
        sim_.schedule_after(options_.retry.timeout_for_attempt(o.attempt),
                            [this, id]() { on_request_timeout(id); });
    // The retransmission keeps the ORIGINAL start_time: latency is measured
    // from the client's first attempt, so retries land in the tail.
    send_request(id, o.start, o.traced);
    return;
  }
  // Retries exhausted: the client gives up. Accounted as dropped, never as
  // a completion — conservation stays exact.
  ++dropped_;
  if (o.traced) {
    if (TraceSink* trace = sim_.trace_sink()) trace->abandon_request(id);
  }
  outstanding_.erase(it);
}

void LoadGenerator::on_response(const RpcPacket& pkt) {
  const auto it = outstanding_.find(pkt.request_id);
  if (it == outstanding_.end()) {
    // Response for a request already completed (dup faults / a retransmit
    // race) or already abandoned. Counted, not recorded: one completion per
    // request.
    ++duplicate_responses_;
    return;
  }
  if (it->second.timer != kInvalidEvent) sim_.cancel(it->second.timer);
  const TimePoint now = sim_.now_point();
  const Duration latency = now - it->second.start;
  if (it->second.traced) {
    // The response's final net-hop span was recorded at delivery (before
    // this receiver ran), so the trace is complete when we seal it here.
    if (TraceSink* trace = sim_.trace_sink()) {
      trace->end_request(pkt.request_id, now, latency);
    }
  }
  outstanding_.erase(it);
  ++completed_total_;
  vv_.record_completion(now.ns(), latency.ns());
  if (now.ns() >= measure_start() && now.ns() < measure_end()) {
    histogram_.record(latency.ns());
    ++completed_in_window_;
  }
}

LoadGenResults LoadGenerator::results() {
  vv_.finalize(sim_.now());
  LoadGenResults r;
  r.issued = issued_;
  r.completed = completed_in_window_;
  r.completed_total = completed_total_;
  r.retries = retries_;
  r.dropped = dropped_;
  r.duplicate_responses = duplicate_responses_;
  r.outstanding = outstanding_.size();
  r.violation_volume_ms_s =
      vv_.violation_volume_ms_s(measure_start(), measure_end());
  r.violation_duration_frac =
      vv_.violation_duration_fraction(measure_start(), measure_end());
  r.p50 = histogram_.p50();
  r.p98 = histogram_.p98();
  r.p99 = histogram_.p99();
  r.max_latency = histogram_.max();
  r.mean_latency_ns = histogram_.mean();
  r.throughput_rps = static_cast<double>(completed_in_window_) /
                     to_seconds(options_.duration);
  r.qos = options_.qos;
  return r;
}

}  // namespace sg
