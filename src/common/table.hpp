// Fixed-width table printing for bench/tool output.
//
// Every bench prints the paper's rows/series as aligned text tables (and
// optionally CSV); this keeps that formatting in one place. Lives in
// sg_common (historically core/reporting) so lower layers — notably the
// sg::trace exporters — can render tables without depending on sg_core.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sg {

/// Display width of a UTF-8 string in code points (continuation bytes are
/// skipped). Column alignment uses this, not byte length, so headers like
/// "p98 (µs)" line up.
std::size_t display_width(const std::string& s);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a header underline.
  std::string render() const;

  /// render() to stdout.
  void print() const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.83x"-style normalized value rendering.
std::string fmt_ratio(double v, int precision = 2);

/// Section banner for bench output.
void print_banner(const std::string& title);

}  // namespace sg
