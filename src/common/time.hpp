// Simulated-time primitives and the strong-typed quantity layer shared by
// every SurgeGuard module.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts. A signed representation lets slack computations (expected minus
// observed progress, paper eq. 4) go negative without tripping wraparound.
//
// Quantity layer (DESIGN.md §9). The paper's slack math (eq. 4) is signed
// mixed-unit arithmetic — exactly the kind that breeds silent ns-vs-ms and
// timestamp-vs-duration bugs when everything is a bare int64_t. Four strong
// types carry the dimension in the type system:
//
//   sg::Duration   — a span of simulated time (ns resolution)
//   sg::TimePoint  — an instant, measured from simulation start
//   sg::Freq       — a CPU frequency (Hz resolution, stored as double)
//   sg::Energy     — an energy amount (joules, stored as double)
//
// All are zero-overhead wrappers: a single scalar member, every operation
// constexpr and inline, no virtuals, trivially copyable. The allowed-ops
// table (enforced both by deleted overloads here and by sg-lint rules
// U1–U4) is:
//
//   Duration  ± Duration  → Duration      TimePoint − TimePoint → Duration
//   TimePoint ± Duration  → TimePoint     Duration + TimePoint  → TimePoint
//   Duration  × scalar    → Duration      Duration / Duration   → double
//   Freq      × Duration  → double (cycles; commutes)
//   Energy    / Duration  → double (watts)
//   Energy    ± Energy    → Energy        Freq ± Freq           → Freq
//
// Everything else (TimePoint + TimePoint, scaling a TimePoint, adding a
// Duration to an Energy, ...) is dimensionally meaningless and does not
// compile / does not lint.
//
// Migration note: `SimTime` remains the raw int64 nanosecond alias while the
// tree migrates; APIs that predate the quantity layer still traffic in it.
// The `_ns/_us/_ms/_s` literals keep producing SimTime so existing call
// sites stay source-compatible; strong types are built via the explicit
// factories (Duration::ms(5), TimePoint::at(t)) and unwrapped via .ns().
// sg-lint treats SimTime as "time, point-or-duration unknown": it joins U2
// and U3 enforcement but is exempt from U1 until its uses are migrated.
#pragma once

#include <cstdint>
#include <string>

namespace sg {

/// Nanoseconds since simulation start (or a duration in nanoseconds).
/// Legacy alias retained during the quantity-layer migration.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Largest representable time; used as the "never" sentinel for events.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

namespace literals {

constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * kMicrosecond;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * kMillisecond;
}
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * kSecond;
}

}  // namespace literals

/// Converts a duration to fractional seconds (for reporting / math).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration to fractional milliseconds.
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional microseconds.
constexpr double to_micros(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Converts fractional seconds to a SimTime, rounding half away from zero
/// (symmetric for negative slacks; plain `+ 0.5` truncation would round
/// -1.5 ns to -1 ns but 1.5 ns to 2 ns).
constexpr SimTime from_seconds(double s) {
  const double ns = s * static_cast<double>(kSecond);
  return static_cast<SimTime>(ns >= 0.0 ? ns + 0.5 : ns - 0.5);
}

/// Human-readable rendering with an auto-selected unit ("1.25ms", "3.2s").
std::string format_time(SimTime t);

// ---------------------------------------------------------------------------
// Duration: a span of simulated time.
// ---------------------------------------------------------------------------

class Duration {
 public:
  constexpr Duration() = default;
  /// Explicit escape hatch from raw nanoseconds (legacy-API boundaries).
  explicit constexpr Duration(SimTime ns) : ns_(ns) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration infinity() { return Duration{kTimeInfinity}; }
  static constexpr Duration ns(SimTime v) { return Duration{v}; }
  static constexpr Duration us(SimTime v) { return Duration{v * kMicrosecond}; }
  static constexpr Duration ms(SimTime v) { return Duration{v * kMillisecond}; }
  static constexpr Duration sec(SimTime v) { return Duration{v * kSecond}; }
  /// Fractional seconds, rounded half away from zero (cf. from_seconds).
  static constexpr Duration seconds(double s) {
    return Duration{from_seconds(s)};
  }

  /// Raw nanosecond count — the only way out of the type.
  constexpr SimTime ns() const { return ns_; }
  constexpr double seconds() const { return to_seconds(ns_); }
  constexpr double millis() const { return to_millis(ns_); }
  constexpr double micros() const { return to_micros(ns_); }

  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    ns_ -= d.ns_;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  /// Scaling keeps the dimension; the scalar side is dimensionless.
  friend constexpr Duration operator*(Duration d, double k) {
    return Duration{static_cast<SimTime>(static_cast<double>(d.ns_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration d) { return d * k; }
  friend constexpr Duration operator*(Duration d, SimTime k) {
    return Duration{d.ns_ * k};
  }
  friend constexpr Duration operator*(SimTime k, Duration d) { return d * k; }
  friend constexpr Duration operator/(Duration d, double k) {
    return Duration{static_cast<SimTime>(static_cast<double>(d.ns_) / k)};
  }
  friend constexpr Duration operator/(Duration d, SimTime k) {
    return Duration{d.ns_ / k};
  }
  /// Ratio of two durations is dimensionless.
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  friend constexpr bool operator==(Duration a, Duration b) = default;
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

 private:
  SimTime ns_ = 0;
};

/// Symmetric rendering for durations.
inline std::string format_time(Duration d) { return format_time(d.ns()); }

constexpr double to_seconds(Duration d) { return d.seconds(); }
constexpr double to_millis(Duration d) { return d.millis(); }
constexpr double to_micros(Duration d) { return d.micros(); }

// ---------------------------------------------------------------------------
// TimePoint: an instant, measured from simulation start.
// ---------------------------------------------------------------------------

class TimePoint {
 public:
  constexpr TimePoint() = default;
  /// Explicit escape hatch from a raw ns-since-start (legacy-API boundary).
  explicit constexpr TimePoint(SimTime ns_since_start)
      : ns_(ns_since_start) {}

  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint infinity() { return TimePoint{kTimeInfinity}; }
  static constexpr TimePoint at(SimTime ns_since_start) {
    return TimePoint{ns_since_start};
  }

  /// Raw nanoseconds since simulation start — the only way out.
  constexpr SimTime ns() const { return ns_; }
  /// Elapsed simulated time since the origin, as a strong duration.
  constexpr Duration since_origin() const { return Duration{ns_}; }

  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.ns();
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) {
    ns_ -= d.ns();
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint p, Duration d) {
    return TimePoint{p.ns_ + d.ns()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint p) {
    return p + d;
  }
  friend constexpr TimePoint operator-(TimePoint p, Duration d) {
    return TimePoint{p.ns_ - d.ns()};
  }
  /// point − point → duration: the paper's slack math (eq. 4).
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.ns_ - b.ns_};
  }

  // Dimensionally meaningless combinations are compile errors, not silent
  // int64 arithmetic (sg-lint rule U1 catches the same shapes pre-build).
  friend constexpr TimePoint operator+(TimePoint, TimePoint) = delete;
  friend constexpr TimePoint operator*(TimePoint, double) = delete;
  friend constexpr TimePoint operator*(double, TimePoint) = delete;
  friend constexpr TimePoint operator/(TimePoint, double) = delete;

  friend constexpr bool operator==(TimePoint a, TimePoint b) = default;
  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

 private:
  SimTime ns_ = 0;
};

inline std::string format_time(TimePoint p) { return format_time(p.ns()); }

// ---------------------------------------------------------------------------
// Freq: a CPU frequency. Stored in Hz as double so MHz-grid arithmetic and
// fractional scaling both stay exact enough (grid values are exact in
// double up to 2^53 Hz).
// ---------------------------------------------------------------------------

class Freq {
 public:
  constexpr Freq() = default;
  explicit constexpr Freq(double hertz) : hz_(hertz) {}

  static constexpr Freq hz(double v) { return Freq{v}; }
  static constexpr Freq mhz(double v) { return Freq{v * 1e6}; }
  static constexpr Freq ghz(double v) { return Freq{v * 1e9}; }

  constexpr double hz() const { return hz_; }
  constexpr double mhz() const { return hz_ / 1e6; }
  constexpr double ghz() const { return hz_ / 1e9; }

  friend constexpr Freq operator+(Freq a, Freq b) { return Freq{a.hz_ + b.hz_}; }
  friend constexpr Freq operator-(Freq a, Freq b) { return Freq{a.hz_ - b.hz_}; }
  friend constexpr Freq operator*(Freq f, double k) { return Freq{f.hz_ * k}; }
  friend constexpr Freq operator*(double k, Freq f) { return f * k; }
  friend constexpr Freq operator/(Freq f, double k) { return Freq{f.hz_ / k}; }
  /// Ratio of two frequencies is dimensionless (DVFS speed scaling).
  friend constexpr double operator/(Freq a, Freq b) { return a.hz_ / b.hz_; }
  /// freq × time → cycles (dimensionless count).
  friend constexpr double operator*(Freq f, Duration d) {
    return f.hz_ * to_seconds(d);
  }
  friend constexpr double operator*(Duration d, Freq f) { return f * d; }

  friend constexpr bool operator==(Freq a, Freq b) = default;
  friend constexpr auto operator<=>(Freq a, Freq b) = default;

 private:
  double hz_ = 0.0;
};

// ---------------------------------------------------------------------------
// Energy: joules. Accumulated per container by the energy model; the
// paper's controller comparison is on relative energy, so double precision
// is the right representation (sums of many small increments).
// ---------------------------------------------------------------------------

class Energy {
 public:
  constexpr Energy() = default;
  explicit constexpr Energy(double j) : joules_(j) {}

  static constexpr Energy zero() { return Energy{0.0}; }
  static constexpr Energy joules(double v) { return Energy{v}; }

  constexpr double joules() const { return joules_; }

  constexpr Energy& operator+=(Energy e) {
    joules_ += e.joules_;
    return *this;
  }
  constexpr Energy& operator-=(Energy e) {
    joules_ -= e.joules_;
    return *this;
  }

  friend constexpr Energy operator+(Energy a, Energy b) {
    return Energy{a.joules_ + b.joules_};
  }
  friend constexpr Energy operator-(Energy a, Energy b) {
    return Energy{a.joules_ - b.joules_};
  }
  friend constexpr Energy operator*(Energy e, double k) {
    return Energy{e.joules_ * k};
  }
  friend constexpr Energy operator*(double k, Energy e) { return e * k; }
  friend constexpr Energy operator/(Energy e, double k) {
    return Energy{e.joules_ / k};
  }
  /// energy ÷ time → power in watts.
  friend constexpr double operator/(Energy e, Duration d) {
    return e.joules_ / to_seconds(d);
  }
  /// Ratio of two energies is dimensionless.
  friend constexpr double operator/(Energy a, Energy b) {
    return a.joules_ / b.joules_;
  }

  friend constexpr bool operator==(Energy a, Energy b) = default;
  friend constexpr auto operator<=>(Energy a, Energy b) = default;

 private:
  double joules_ = 0.0;
};

}  // namespace sg
