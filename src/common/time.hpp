// Simulated-time primitives shared by every SurgeGuard module.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts. A signed representation lets slack computations (expected minus
// observed progress, paper eq. 4) go negative without tripping wraparound.
#pragma once

#include <cstdint>
#include <string>

namespace sg {

/// Nanoseconds since simulation start (or a duration in nanoseconds).
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Largest representable time; used as the "never" sentinel for events.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

namespace literals {

constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * kMicrosecond;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * kMillisecond;
}
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * kSecond;
}

}  // namespace literals

/// Converts a duration to fractional seconds (for reporting / math).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration to fractional milliseconds.
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional microseconds.
constexpr double to_micros(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Converts fractional seconds to a SimTime, rounding to nearest ns.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/// Human-readable rendering with an auto-selected unit ("1.25ms", "3.2s").
std::string format_time(SimTime t);

}  // namespace sg
