// Invariant checking that stays on in release builds.
//
// Simulation correctness bugs (negative remaining work, double-completed
// jobs, core-ledger mismatches) silently corrupt experiment results, so
// invariants abort loudly instead of compiling out with NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sg::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "SG_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace sg::detail

#define SG_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::sg::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SG_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr))                                                  \
      ::sg::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)
