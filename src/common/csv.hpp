// Minimal CSV writer for bench/experiment output.
//
// Benches regenerate the paper's figures as printed tables and, with --csv,
// as CSV files suitable for replotting. Quoting follows RFC 4180.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sg {

class CsvWriter {
 public:
  /// Opens (truncates) the file; `ok()` reports whether it opened.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return out_.is_open() && out_.good(); }

  /// Writes a full row of pre-stringified cells.
  void write_row(const std::vector<std::string>& cells);

  /// Streaming interface: cell(...) appends, end_row() flushes the line.
  CsvWriter& cell(std::string_view v);
  CsvWriter& cell(double v);
  CsvWriter& cell(long long v);
  CsvWriter& cell(int v) { return cell(static_cast<long long>(v)); }
  CsvWriter& cell(std::size_t v) { return cell(static_cast<long long>(v)); }
  void end_row();

  static std::string escape(std::string_view v);

 private:
  std::ofstream out_;
  std::vector<std::string> pending_;
};

/// Formats a double with fixed precision (helper for table printing).
std::string fmt_double(double v, int precision = 3);

}  // namespace sg
