// Thread-local shard routing for the sharded event loop (DESIGN.md §8).
//
// Every thread carries a "current shard" index; Simulator routes now(),
// schedule_*() and cancel() through it. Shard worker threads pin their own
// index for the lifetime of the thread, and single-threaded code (tests,
// setup, shard count 1) defaults to shard 0, which is also the only shard —
// so unsharded simulations never notice this layer exists.
//
// ShardScope is used during testbed construction to aim setup-time
// scheduling (periodic ticks, fault windows, experiment bookkeeping events)
// at the shard that owns the target node.
#pragma once

namespace sg {

/// Shard index the calling thread currently schedules into.
int current_shard();

/// RAII override of the calling thread's current shard.
class ShardScope {
 public:
  explicit ShardScope(int shard);
  ~ShardScope();

  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  int prev_;
};

}  // namespace sg
