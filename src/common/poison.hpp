// Determinism firewall, compile-time half (see tools/sglint/ for the
// static-analysis half and DESIGN.md §7 for the policy).
//
// Every SurgeGuard result depends on runs being bit-reproducible for a
// fixed seed: controller comparisons, the chaos suite, and the
// byte-identical trace exports all diff numbers across runs. Ambient
// randomness (std::random_device, srand) and wall-clock reads
// (system_clock / steady_clock / high_resolution_clock, clock_gettime,
// gettimeofday) silently break that invariant, so for simulator code they
// are not merely linted — they fail the build. This header is force-included
// (-include) into every TU of the src/ libraries via the sg_poison CMake
// target and `#pragma GCC poison`s the banned identifiers.
//
// The standard headers that legitimately *define or mention* the banned
// names are included first: once their include guards are set, the poisoned
// tokens never reappear during preprocessing, so the poison only fires on
// project code that actually names them. (This is the standard pattern for
// poisoning symbols the library itself must still define.)
//
// Escape hatch: a TU that genuinely needs wall-clock time (none in src/
// today) can define SG_ALLOW_NONDETERMINISM before this header is seen —
// i.e. via target_compile_definitions, since -include runs first — and must
// carry an sg-lint `allow()` justification for the same symbols anyway.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <ctime>
#include <future>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>

#if defined(__GNUC__) && !defined(SG_ALLOW_NONDETERMINISM)
#pragma GCC poison srand random_device
#pragma GCC poison system_clock steady_clock high_resolution_clock
#pragma GCC poison clock_gettime gettimeofday timespec_get
#endif
