// Deterministic random-number generation for simulations.
//
// Every Simulator owns its own Rng seeded from the experiment seed, so a
// sweep of replications can run on separate threads with no shared state and
// bit-identical results for a given seed (C++ Core Guidelines CP.2: avoid
// data races by not sharing).
#pragma once

#include <array>
#include <cstdint>

#include "common/time.hpp"

namespace sg {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Chosen over std::mt19937_64 for speed and a compact, well-understood
/// state; the simulator draws one variate per request arrival and per
/// service-time sample, which is on the hot path.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the full state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed variate with the given mean (> 0).
  double exponential(double mean);

  /// Standard-normal variate (Box-Muller, cached pair).
  double normal();

  /// Normal variate with mean/stddev.
  double normal(double mean, double stddev);

  /// Log-normal variate parameterized by the *target* mean and the sigma of
  /// the underlying normal. Service-time jitter in the application model is
  /// log-normal, matching the right-skewed service times observed in
  /// microservice deployments.
  double lognormal_mean(double mean, double sigma);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent generator (distinct stream) for a sub-component.
  Rng fork();

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sg
