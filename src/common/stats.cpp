#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sg {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return xs[std::min(idx, xs.size() - 1)];
}

double trimmed_mean(std::vector<double> xs, std::size_t trim) {
  if (xs.empty()) return 0.0;
  if (2 * trim >= xs.size()) return mean(xs);
  std::sort(xs.begin(), xs.end());
  const auto first = xs.begin() + static_cast<std::ptrdiff_t>(trim);
  const auto last = xs.end() - static_cast<std::ptrdiff_t>(trim);
  return std::accumulate(first, last, 0.0) /
         static_cast<double>(std::distance(first, last));
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace sg
