#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sg {
namespace {

// 63 octaves cover the full positive int64 range.
constexpr int kOctaves = 63;

}  // namespace

LatencyHistogram::LatencyHistogram(int sub_buckets_per_octave)
    : sub_buckets_(sub_buckets_per_octave),
      counts_(static_cast<std::size_t>(kOctaves) *
              static_cast<std::size_t>(sub_buckets_per_octave)) {}

std::size_t LatencyHistogram::bucket_index(SimTime v) const {
  if (v < kNanosecond) v = kNanosecond;
  const auto uv = static_cast<std::uint64_t>(v);
  const int octave = 63 - std::countl_zero(uv);
  // Position within the octave, in [0, 1).
  const double base = static_cast<double>(std::uint64_t{1} << octave);
  const double frac = (static_cast<double>(uv) - base) / base;
  int sub = static_cast<int>(frac * sub_buckets_);
  sub = std::clamp(sub, 0, sub_buckets_ - 1);
  std::size_t idx = static_cast<std::size_t>(octave) *
                        static_cast<std::size_t>(sub_buckets_) +
                    static_cast<std::size_t>(sub);
  return std::min(idx, counts_.size() - 1);
}

SimTime LatencyHistogram::bucket_value(std::size_t idx) const {
  const auto octave = static_cast<int>(idx / static_cast<std::size_t>(sub_buckets_));
  const auto sub = static_cast<int>(idx % static_cast<std::size_t>(sub_buckets_));
  const double base = std::ldexp(1.0, octave);
  // Midpoint of the sub-bucket.
  const double v = base * (1.0 + (static_cast<double>(sub) + 0.5) /
                                     static_cast<double>(sub_buckets_));
  return static_cast<SimTime>(v);
}

void LatencyHistogram::record(SimTime latency) { record_n(latency, 1); }

void LatencyHistogram::record_n(SimTime latency, std::uint64_t n) {
  if (n == 0) return;
  if (latency < kNanosecond) latency = kNanosecond;
  counts_[bucket_index(latency)] += n;
  total_count_ += n;
  min_seen_ = std::min(min_seen_, latency);
  max_seen_ = std::max(max_seen_, latency);
  sum_ += static_cast<double>(latency) * static_cast<double>(n);
}

SimTime LatencyHistogram::min() const {
  return total_count_ == 0 ? 0 : min_seen_;
}

SimTime LatencyHistogram::max() const { return max_seen_; }

double LatencyHistogram::mean() const {
  return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
}

SimTime LatencyHistogram::percentile(double p) const {
  if (total_count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(total_count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target && counts_[i] > 0) {
      return std::clamp(bucket_value(i), min(), max());
    }
  }
  return max_seen_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Geometry must match for a bucketwise merge to be meaningful.
  if (other.counts_.size() != counts_.size()) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  min_seen_ = kTimeInfinity;
  max_seen_ = 0;
  sum_ = 0.0;
}

std::uint64_t LatencyHistogram::count_at_or_above(SimTime threshold) const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0 && bucket_value(i) >= threshold) n += counts_[i];
  }
  return n;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) out.push_back({bucket_value(i), counts_[i]});
  }
  return out;
}

}  // namespace sg
