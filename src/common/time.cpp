#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace sg {

std::string format_time(SimTime t) {
  const bool neg = t < 0;
  const double abs_ns = std::abs(static_cast<double>(t));
  char buf[64];
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%s%.0fns", neg ? "-" : "", abs_ns);
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%s%.2fus", neg ? "-" : "", abs_ns / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", neg ? "-" : "", abs_ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", neg ? "-" : "", abs_ns / 1e9);
  }
  return buf;
}

}  // namespace sg
