#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/csv.hpp"

namespace sg {

std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = display_width(headers_[i]);
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], display_width(row[i]));
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line.append(widths[i] - display_width(row[i]) + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_ratio(double v, int precision) {
  return fmt_double(v, precision) + "x";
}

void print_banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

}  // namespace sg
