#include "common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sg {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::optional<Config> Config::parse(std::string_view text, std::string* error) {
  Config cfg;
  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments (full-line or trailing).
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        if (error)
          *error = "line " + std::to_string(line_no) + ": unterminated section";
        return std::nullopt;
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error)
        *error = "line " + std::to_string(line_no) + ": expected key = value";
      return std::nullopt;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) *error = "line " + std::to_string(line_no) + ": empty key";
      return std::nullopt;
    }
    std::string full_key =
        section.empty() ? std::string(key) : section + "." + std::string(key);
    cfg.values_[std::move(full_key)] = std::string(value);
  }
  return cfg;
}

std::optional<Config> Config::load(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), error);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Config::get_double(const std::string& key, double def) const {
  return try_get_double(key).value_or(def);
}

long long Config::get_int(const std::string& key, long long def) const {
  return try_get_int(key).value_or(def);
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return def;
}

std::optional<double> Config::try_get_double(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<long long> Config::try_get_int(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return v;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace sg
