// Exponentially weighted moving averages.
//
// The paper's sensitivity tracker (SurgeGuard Design Feature #3) keeps an
// exponential running average of execution time per (container, core-count)
// cell with alpha = 0.5; metric aggregation in the container runtimes uses
// the same primitive.
#pragma once

namespace sg {

/// EWMA with update rule: avg <- alpha * avg + (1 - alpha) * sample.
///
/// Note the paper's convention (SurgeGuard eq. in III-C): alpha weights the
/// *old* value, so a large (1 - alpha) weights new samples heavily. The
/// paper uses alpha = 0.5.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.5) : alpha_(alpha) {}

  /// Feeds one sample. The first sample initializes the average directly.
  void add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * sample;
    }
    ++count_;
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  long count() const { return count_; }
  double alpha() const { return alpha_; }

  void reset() {
    value_ = 0.0;
    initialized_ = false;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  long count_ = 0;
};

/// Windowed mean: accumulates samples, then `take()` returns the mean and
/// clears. Container runtimes use this to publish per-interval averaged
/// metrics to Escalator (paper Fig. 7, step 4).
class WindowedMean {
 public:
  void add(double sample) {
    sum_ += sample;
    ++n_;
  }

  bool empty() const { return n_ == 0; }
  long count() const { return n_; }

  /// Mean of the current window without clearing (0 if empty).
  double peek() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

  /// Returns the window mean and resets the accumulator.
  double take() {
    const double m = peek();
    sum_ = 0.0;
    n_ = 0;
    return m;
  }

 private:
  double sum_ = 0.0;
  long n_ = 0;
};

}  // namespace sg
