// Log-bucketed latency histogram (HDR-histogram style).
//
// The wrk2_spike artifact reports a latency histogram per run; this is the
// in-simulator equivalent. Buckets grow geometrically so that relative error
// is bounded (~2.4% with 30 sub-buckets per octave) across ns..minutes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace sg {

class LatencyHistogram {
 public:
  /// sub_buckets_per_octave controls resolution; 32 gives ~2.2% max relative
  /// error, which is tighter than the run-to-run noise of any experiment.
  explicit LatencyHistogram(int sub_buckets_per_octave = 32);

  /// Records one latency sample (values < 1ns clamp to the first bucket).
  void record(SimTime latency);

  /// Records `n` identical samples.
  void record_n(SimTime latency, std::uint64_t n);

  std::uint64_t count() const { return total_count_; }
  SimTime min() const;
  SimTime max() const;
  double mean() const;

  /// Percentile in [0, 100]; returns the representative value of the bucket
  /// containing that rank. Returns 0 for an empty histogram.
  SimTime percentile(double p) const;

  SimTime p50() const { return percentile(50.0); }
  SimTime p90() const { return percentile(90.0); }
  SimTime p98() const { return percentile(98.0); }
  SimTime p99() const { return percentile(99.0); }

  /// Merges another histogram (must share bucket geometry).
  void merge(const LatencyHistogram& other);

  void reset();

  /// Number of samples at or above the given threshold.
  std::uint64_t count_at_or_above(SimTime threshold) const;

  /// One row per non-empty bucket: (representative latency, count).
  struct Bucket {
    SimTime value;
    std::uint64_t count;
  };
  std::vector<Bucket> nonzero_buckets() const;

 private:
  std::size_t bucket_index(SimTime v) const;
  SimTime bucket_value(std::size_t idx) const;

  int sub_buckets_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_count_ = 0;
  SimTime min_seen_ = kTimeInfinity;
  SimTime max_seen_ = 0;
  double sum_ = 0.0;
};

}  // namespace sg
