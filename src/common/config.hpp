// Key/value configuration files, mirroring the paper artifact's
// controllers/sample_config: per-service parameters (expectedExecMetric,
// expectedTimeFromStart), initial core allocations, and controller knobs are
// specified in a flat `key = value` file with `#` comments and optional
// `[section]` grouping (section names are prefixed onto keys as
// "section.key").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sg {

class Config {
 public:
  Config() = default;

  /// Parses config text; returns std::nullopt plus a message via `error` on
  /// malformed input (line without '=', unterminated section, ...).
  static std::optional<Config> parse(std::string_view text,
                                     std::string* error = nullptr);

  /// Loads and parses a file.
  static std::optional<Config> load(const std::string& path,
                                    std::string* error = nullptr);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. Type-mismatched values fall back to the
  /// default (and are reported by `strict_get_*` variants used in tests).
  std::string get_string(const std::string& key,
                         const std::string& def = "") const;
  double get_double(const std::string& key, double def = 0.0) const;
  long long get_int(const std::string& key, long long def = 0) const;
  bool get_bool(const std::string& key, bool def = false) const;

  std::optional<double> try_get_double(const std::string& key) const;
  std::optional<long long> try_get_int(const std::string& key) const;

  void set(const std::string& key, const std::string& value);

  /// All keys with the given prefix (e.g. "service." for per-service blocks).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Every key, sorted (validation passes enumerate against a known set).
  std::vector<std::string> keys() const;

  std::size_t size() const { return values_.size(); }

  /// Serializes back to `key = value` lines (sorted by key).
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sg
