#include "common/rng.hpp"

#include <cmath>

namespace sg {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the span sizes used here (span << 2^64).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Avoid log(0); uniform() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_mean(double mean, double sigma) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu so that the
  // sample mean equals `mean`.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace sg
