#include "common/csv.hpp"

#include <cstdio>

namespace sg {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

CsvWriter::~CsvWriter() {
  if (!pending_.empty()) end_row();
}

std::string CsvWriter::escape(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(std::string_view v) {
  pending_.emplace_back(v);
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  pending_.push_back(fmt_double(v, 6));
  return *this;
}

CsvWriter& CsvWriter::cell(long long v) {
  pending_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::end_row() {
  write_row(pending_);
  pending_.clear();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sg
