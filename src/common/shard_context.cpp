#include "common/shard_context.hpp"

namespace sg {

namespace {
thread_local int t_current_shard = 0;
}  // namespace

int current_shard() { return t_current_shard; }

ShardScope::ShardScope(int shard) : prev_(t_current_shard) {
  t_current_shard = shard;
}

ShardScope::~ShardScope() { t_current_shard = prev_; }

}  // namespace sg
