// Small statistics helpers used by the experiment harness.
//
// The paper's analysis protocol (Artifact Appendix): collect 17 data points
// per configuration, drop the best and worst, average the remaining 15.
// `trimmed_mean` implements exactly that protocol for any repetition count.
#pragma once

#include <cstddef>
#include <vector>

namespace sg {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);   // population variance
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Percentile (nearest-rank) of the sample; p in [0, 100].
double percentile_of(std::vector<double> xs, double p);

/// Drops `trim` smallest and `trim` largest values, then averages the rest.
/// If 2*trim >= xs.size(), falls back to the plain mean.
double trimmed_mean(std::vector<double> xs, std::size_t trim = 1);

/// min / max convenience (0 for empty input).
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Geometric mean of strictly positive values (0 if any value <= 0).
double geometric_mean(const std::vector<double>& xs);

}  // namespace sg
