// Lightweight leveled logging.
//
// Controllers and the simulator log allocation decisions at Debug level;
// experiments run at Warn by default so benches stay quiet. The sink is a
// process-wide singleton guarded by a mutex — the only shared mutable state
// in the library — because log interleaving across the parallel sweep
// threads must serialize somewhere.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sg {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Redirects output to a file (empty path -> stderr).
  void set_file(const std::string& path);

  void log(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::Warn;
  std::string file_path_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(Logger::instance().level());
}

}  // namespace sg

#define SG_LOG(level)                        \
  if (!::sg::log_enabled(level)) {           \
  } else                                     \
    ::sg::detail::LogLine(level)

#define SG_DEBUG SG_LOG(::sg::LogLevel::Debug)
#define SG_INFO SG_LOG(::sg::LogLevel::Info)
#define SG_WARN SG_LOG(::sg::LogLevel::Warn)
#define SG_ERROR SG_LOG(::sg::LogLevel::Error)
