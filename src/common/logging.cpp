#include "common/logging.hpp"

#include <cstdio>
#include <fstream>

namespace sg {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mu_);
  return level_;
}

void Logger::set_file(const std::string& path) {
  std::lock_guard lock(mu_);
  file_path_ = path;
}

void Logger::log(LogLevel level, const std::string& msg) {
  std::lock_guard lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (file_path_.empty()) {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  } else {
    std::ofstream out(file_path_, std::ios::app);
    out << '[' << level_name(level) << "] " << msg << '\n';
  }
}

}  // namespace sg
