#include "core/sweep.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/stats.hpp"

namespace sg {

RepStats run_replicated(const ExperimentConfig& config,
                        const ProfileResult& profile,
                        const SweepOptions& options) {
  const int reps = std::max(1, options.replications);
  std::vector<ExperimentResult> results(static_cast<std::size_t>(reps));

  unsigned threads = options.threads;
  if (threads == 0) {
    // sglint: allow(D5) replication sizing only; no simulator state is shared
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(reps));

  // Work-stealing index; each worker builds and runs whole simulations
  // locally (no shared mutable state between replications, CP.2), writing
  // into its own pre-sized slot.
  // sglint: allow(D5) work-stealing cursor over independent replications
  std::atomic<int> next{0};
  auto worker = [&]() {
    for (;;) {
      const int k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= reps) return;
      ExperimentConfig cfg = config;
      cfg.seed = options.seed0 + static_cast<std::uint64_t>(k);
      results[static_cast<std::size_t>(k)] = run_experiment(cfg, profile);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    // sglint: allow(D5) replication pool; each worker runs its own simulator
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  }

  RepStats stats;
  for (const ExperimentResult& r : results) {
    stats.violation_volume.push_back(r.load.violation_volume_ms_s);
    stats.avg_cores.push_back(r.avg_cores);
    stats.energy_joules.push_back(r.energy_joules);
    stats.p98_ms.push_back(to_millis(r.load.p98));
  }
  stats.vv = trimmed_mean(stats.violation_volume, options.trim);
  stats.cores = trimmed_mean(stats.avg_cores, options.trim);
  stats.energy = trimmed_mean(stats.energy_joules, options.trim);
  stats.p98 = trimmed_mean(stats.p98_ms, options.trim);
  return stats;
}

RepStats run_replicated(const ExperimentConfig& config,
                        const SweepOptions& options) {
  const ProfileResult profile =
      profile_workload(config.workload, config.nodes, config.target_mult);
  return run_replicated(config, profile, options);
}

}  // namespace sg
