#include "core/experiment.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/shard_context.hpp"
#include "controllers/caladan.hpp"
#include "controllers/centralized.hpp"
#include "controllers/controller.hpp"
#include "controllers/ideal.hpp"
#include "controllers/parties.hpp"
#include "controllers/surgeguard.hpp"

namespace sg {

const char* to_string(ControllerKind k) {
  switch (k) {
    case ControllerKind::kStatic: return "Static";
    case ControllerKind::kParties: return "Parties";
    case ControllerKind::kCaladan: return "CaladanAlgo";
    case ControllerKind::kEscalator: return "Escalator";
    case ControllerKind::kSurgeGuard: return "SurgeGuard";
    case ControllerKind::kEscalatorMetricsOnly: return "Parties+Metrics";
    case ControllerKind::kEscalatorSensOnly: return "Parties+Sensitivity";
    case ControllerKind::kIdealOracle: return "IdealOracle";
    case ControllerKind::kCentralizedML: return "CentralizedML";
    case ControllerKind::kMLPlusSurgeGuard: return "ML+SurgeGuard";
  }
  return "?";
}

SpikePattern ExperimentConfig::make_pattern() const {
  if (pattern_override) return *pattern_override;
  if (surge_len <= 0 || surge_mult == 1.0) {
    return SpikePattern::steady(workload.base_rate_rps);
  }
  return SpikePattern::surges(workload.base_rate_rps, surge_mult, surge_len,
                              surge_period, warmup + first_surge_offset);
}

namespace {

/// Everything one simulated run needs, with construction order = teardown
/// safety (sim outlives all users).
struct Testbed {
  Simulator sim;
  Cluster cluster;
  Network network;
  MetricsPlane metrics;
  std::unique_ptr<Application> app;
  std::vector<std::unique_ptr<Controller>> controllers;
  /// Node hosting controllers[i] — start() must run on that node's shard.
  std::vector<int> controller_nodes;
  std::vector<FirstResponder*> first_responders;
  std::unique_ptr<FaultInjector> faults;

  /// Starts every controller on its owning node's shard.
  void start_controllers() {
    for (std::size_t i = 0; i < controllers.size(); ++i) {
      ShardScope scope(sim.shard_of_node(controller_nodes[i]));
      controllers[i]->start();
    }
  }

  Testbed(std::uint64_t seed, int nodes)
      : sim(seed), cluster(sim), network(sim), metrics(static_cast<std::size_t>(nodes)) {}
};

std::unique_ptr<Testbed> build_testbed(const ExperimentConfig& config,
                                       const TargetMap& targets,
                                       const SpikePattern& pattern) {
  auto tb = std::make_unique<Testbed>(config.seed, config.nodes);
  const WorkloadInfo& w = config.workload;

  SG_ASSERT_MSG(config.shards >= 1, "sim.shards must be >= 1");
  SG_ASSERT_MSG(config.shards <= config.nodes,
                "sim.shards cannot exceed the node count");
  if (config.shards > 1) {
    SG_ASSERT_MSG(config.controller != ControllerKind::kCentralizedML &&
                      config.controller != ControllerKind::kMLPlusSurgeGuard,
                  "centralized controllers require sim.shards == 1");
    std::vector<int> shard_of_node(static_cast<std::size_t>(config.nodes));
    for (int n = 0; n < config.nodes; ++n) {
      shard_of_node[static_cast<std::size_t>(n)] = n % config.shards;
    }
    tb->sim.configure_shards(config.shards, std::move(shard_of_node),
                             tb->network.model().min_cross_node_ns());
  }
  // Per-sender wire streams: applied at every shard count so the drawn
  // jitter — and therefore every result — is invariant to sim.shards.
  tb->network.configure_node_streams(config.nodes);

  if (config.trace_enabled) {
    TraceOptions topts;
    topts.head_sample_rate = config.trace_sample;
    topts.capacity = config.trace_capacity;
    topts.keep_slo_violators = config.trace_keep_violators;
    tb->sim.enable_tracing(topts);
  }

  // Placement: round-robin services over nodes, calibrated initial cores.
  Deployment deployment;
  deployment.initial_cores = w.initial_cores;
  deployment.node_of_service.resize(w.spec.services.size());
  std::vector<int> init_on_node(static_cast<std::size_t>(config.nodes), 0);
  for (std::size_t i = 0; i < w.spec.services.size(); ++i) {
    const NodeId n = static_cast<NodeId>(i % static_cast<std::size_t>(config.nodes));
    deployment.node_of_service[i] = n;
    init_on_node[static_cast<std::size_t>(n)] += w.initial_cores[i];
  }

  // Node sizing (artifact: workload starts at ~2/3 of allocatable cores).
  for (int n = 0; n < config.nodes; ++n) {
    const int app_cores = std::max(
        init_on_node[static_cast<std::size_t>(n)] + 2,
        static_cast<int>(std::ceil(
            static_cast<double>(init_on_node[static_cast<std::size_t>(n)]) *
            config.free_headroom)));
    const NodeId id =
        tb->cluster.add_node(app_cores + config.reserved_cores_per_node,
                             config.reserved_cores_per_node);
    // Optional shared-resource interference (paper §VII extension).
    if (config.membw) tb->cluster.node(id).enable_membw(*config.membw);
  }

  // Application with Little's-law-provisioned connection pools (eq. 1).
  AppSpec spec = w.spec;
  const double hop_ns = config.nodes > 1
                            ? static_cast<double>(tb->network.model().cross_node_ns)
                            : static_cast<double>(tb->network.model().same_node_ns);
  spec.autosize_pools(w.base_rate_rps, hop_ns);
  Application::Options app_opts;
  app_opts.metrics_interval = config.metrics_interval;
  app_opts.retry = config.rpc_retry;
  tb->app = std::make_unique<Application>(tb->cluster, tb->network, tb->metrics,
                                          std::move(spec), deployment, app_opts);
  tb->app->start_metric_publication();

  // Chaos: arm the fault schedule. Created AFTER the stack above so that a
  // fault-free plan leaves every RNG fork stream — and therefore the whole
  // event sequence — bit-identical to the pre-fault code path.
  if (!config.fault_plan.empty()) {
    tb->faults = std::make_unique<FaultInjector>(tb->sim, config.fault_plan);
    tb->faults->arm(&tb->network, &tb->cluster);
  }

  // One controller instance per node (decentralized, Fig. 1).
  const AppTopology topology = tb->app->topology();
  for (int n = 0; n < config.nodes; ++n) {
    ControllerEnv env;
    env.sim = &tb->sim;
    env.cluster = &tb->cluster;
    env.node = &tb->cluster.node(n);
    env.bus = &tb->metrics.node_bus(n);
    env.app = tb->app.get();
    env.topology = topology;
    env.targets = targets;

    switch (config.controller) {
      case ControllerKind::kStatic:
        tb->controllers.push_back(std::make_unique<StaticController>(std::move(env)));
        tb->controller_nodes.push_back(n);
        break;
      case ControllerKind::kParties:
        tb->controllers.push_back(std::make_unique<PartiesController>(std::move(env)));
        tb->controller_nodes.push_back(n);
        break;
      case ControllerKind::kCaladan:
        tb->controllers.push_back(std::make_unique<CaladanAlgo>(std::move(env)));
        tb->controller_nodes.push_back(n);
        break;
      case ControllerKind::kCentralizedML:
        // Centralized by definition: ONE instance sees every node. Created
        // while handling node 0; other nodes add nothing.
        if (n == 0) {
          tb->controllers.push_back(std::make_unique<CentralizedMLController>(
              tb->sim, tb->cluster, tb->metrics, targets));
          tb->controller_nodes.push_back(0);
        }
        break;
      case ControllerKind::kMLPlusSurgeGuard: {
        // Paper SVII: the ML controller periodically sets steady-state
        // allocations; SurgeGuard handles the transients in between.
        if (n == 0) {
          tb->controllers.push_back(std::make_unique<CentralizedMLController>(
              tb->sim, tb->cluster, tb->metrics, targets));
          tb->controller_nodes.push_back(0);
        }
        auto sg_ctrl =
            std::make_unique<SurgeGuard>(std::move(env), tb->network,
                                         SurgeGuard::Options{});
        if (sg_ctrl->first_responder() != nullptr) {
          tb->first_responders.push_back(sg_ctrl->first_responder());
        }
        tb->controllers.push_back(std::move(sg_ctrl));
        tb->controller_nodes.push_back(n);
        break;
      }
      case ControllerKind::kEscalator:
      case ControllerKind::kSurgeGuard:
      case ControllerKind::kEscalatorMetricsOnly:
      case ControllerKind::kEscalatorSensOnly: {
        SurgeGuard::Options opts;
        opts.enable_first_responder =
            config.controller == ControllerKind::kSurgeGuard;
        // Fig. 15's middle bars are "Parties + one mechanism": one Escalator
        // feature on top of the Parties base allocator at Parties' own
        // 500 ms cadence — NOT the faster full Escalator.
        if (config.controller == ControllerKind::kEscalatorMetricsOnly) {
          opts.escalator.use_sensitivity = false;
          opts.escalator.interval = 500 * kMillisecond;
        }
        if (config.controller == ControllerKind::kEscalatorSensOnly) {
          opts.escalator.use_new_metrics = false;
          opts.escalator.interval = 500 * kMillisecond;
        }
        auto sg_ctrl = std::make_unique<SurgeGuard>(std::move(env), tb->network, opts);
        if (sg_ctrl->first_responder() != nullptr) {
          tb->first_responders.push_back(sg_ctrl->first_responder());
        }
        tb->controllers.push_back(std::move(sg_ctrl));
        tb->controller_nodes.push_back(n);
        break;
      }
      case ControllerKind::kIdealOracle: {
        IdealOracleController::Options opts;
        opts.pattern = pattern;
        opts.detection_delay = config.ideal_detection_delay;
        opts.drain_window = config.ideal_drain_window;
        opts.horizon = config.warmup + config.duration + 10 * kSecond;
        tb->controllers.push_back(
            std::make_unique<IdealOracleController>(std::move(env), opts));
        tb->controller_nodes.push_back(n);
        break;
      }
    }
  }
  return tb;
}

}  // namespace

ProfileResult profile_workload(const WorkloadInfo& workload, int nodes,
                               double target_mult, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.controller = ControllerKind::kStatic;
  cfg.nodes = nodes;
  cfg.seed = seed;

  const SpikePattern low_load =
      SpikePattern::steady(workload.base_rate_rps * 0.1);
  auto tb = build_testbed(cfg, TargetMap{}, low_load);

  LoadGenOptions gen_opts;
  gen_opts.pattern = low_load;
  gen_opts.qos = kSecond;  // irrelevant at low load
  gen_opts.warmup = 2 * kSecond;
  gen_opts.duration = 4 * kSecond;
  LoadGenerator gen(tb->sim, tb->network, *tb->app, gen_opts);
  tb->start_controllers();
  gen.start();
  tb->sim.run_until(gen.measure_end());

  ProfileResult prof;
  for (int i = 0; i < tb->app->service_count(); ++i) {
    const Container& c = tb->app->service_container(i);
    const ContainerRuntimeMetrics& m = tb->app->runtime_metrics(c.id());
    ContainerTargets t;
    t.expected_exec_metric_ns =
        target_mult * m.lifetime_avg_exec_metric_ns();
    t.expected_time_from_start = Duration{static_cast<SimTime>(
        target_mult * m.lifetime_avg_time_from_start_ns())};
    prof.targets.per_container.emplace(c.id(), t);
  }
  const LoadGenResults res = gen.results();
  prof.low_load_mean_latency = static_cast<SimTime>(res.mean_latency_ns);
  prof.low_load_p98 = res.p98;
  prof.targets.expected_e2e_latency = Duration{prof.low_load_mean_latency};
  SG_ASSERT_MSG(res.completed > 0, "profiling run completed no requests");
  return prof;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const ProfileResult& profile) {
  const SpikePattern pattern = config.make_pattern();
  auto tb = build_testbed(config, profile.targets, pattern);

  LoadGenOptions gen_opts;
  gen_opts.pattern = pattern;
  gen_opts.qos = static_cast<SimTime>(
      config.qos_mult * static_cast<double>(profile.low_load_mean_latency));
  gen_opts.warmup = config.warmup;
  gen_opts.duration = config.duration;
  gen_opts.vv_window = config.vv_window;
  // The client's retransmission timeout sits well above the app's internal
  // RPC timeout: internal retries must get a chance to recover a lost
  // packet before the client re-issues the whole request, or a short loss
  // window amplifies into a metastable retry storm.
  gen_opts.retry = config.rpc_retry;
  gen_opts.retry.timeout = 4 * config.rpc_retry.timeout;
  LoadGenerator gen(tb->sim, tb->network, *tb->app, gen_opts);

  if (TraceSink* trace = tb->sim.trace_sink()) {
    // Tail sampling keys off the run's QoS (known only now).
    trace->set_slo_threshold(
        Duration{config.trace_keep_violators ? gen_opts.qos : 0});
  }

  tb->start_controllers();
  {
    // The client endpoint lives on the home shard (the one owning node 0).
    ShardScope scope(tb->sim.shard_of_node(kClientNode));
    gen.start();
  }

  // Network-latency surge injection (the paper's second disruption class):
  // periodic windows during which every packet pays an extra delay. One
  // toggle event per sender (client + each node), scheduled into the
  // sender's owning shard: the per-sender delay slot write stays shard-local
  // and the event count is invariant to the shard count.
  if (config.net_delay_len > 0 && config.net_delay_extra > 0) {
    for (SimTime start = config.warmup + config.first_surge_offset;
         start < gen.measure_end(); start += config.net_delay_period) {
      for (int src = kClientNode; src < config.nodes; ++src) {
        ShardScope scope(tb->sim.shard_of_node(src));
        tb->sim.schedule_at(start, [&tb, &config, src]() {
          tb->network.set_extra_delay_for(src, config.net_delay_extra);
        });
        tb->sim.schedule_at(start + config.net_delay_len, [&tb, src]() {
          tb->network.set_extra_delay_for(src, 0);
        });
      }
    }
  }

  // Energy over the measurement window only (paper subtracts idle and
  // reports application energy during the run). One capture event per node,
  // on the node's shard, each syncing only its own containers; summing the
  // snapshot in container order reproduces total_energy_joules()'s exact FP
  // arithmetic regardless of shard count.
  auto energy_snapshot = std::make_shared<std::vector<double>>(
      tb->cluster.container_count(), 0.0);
  for (int n = 0; n < config.nodes; ++n) {
    ShardScope scope(tb->sim.shard_of_node(n));
    tb->sim.schedule_at(gen.measure_start(), [&tb, n, energy_snapshot]() {
      for (std::size_t i = 0; i < tb->cluster.container_count(); ++i) {
        Container& c = tb->cluster.container(static_cast<ContainerId>(i));
        if (c.node() != n) continue;
        c.sync();
        (*energy_snapshot)[i] = c.energy_joules();
      }
    });
  }

  tb->sim.run_until(gen.measure_end());
  if (config.drain > 0) {
    // Drain phase: no new arrivals; in-flight and retried requests finish
    // (or exhaust their retries) before results are read.
    gen.stop();
    tb->sim.run_until(gen.measure_end() + config.drain);
  }
  tb->cluster.sync_all();

  ExperimentResult out;
  out.load = gen.results();
  out.measure_start = gen.measure_start();
  out.measure_end = gen.measure_end();
  out.avg_cores = tb->cluster.average_allocated_cores(gen.measure_start(),
                                                      gen.measure_end());
  double energy_at_start = 0.0;
  for (const double e : *energy_snapshot) energy_at_start += e;
  out.energy_joules = tb->cluster.total_energy_joules() - energy_at_start;

  for (const FirstResponder* fr : tb->first_responders) {
    out.fr_packets += fr->packets_inspected();
    out.fr_violations += fr->violations_detected();
    out.fr_boosts += fr->boosts_applied();
  }

  if (tb->faults) out.faults = tb->faults->stats();
  out.app_rpc_retries = tb->app->rpc_retries();
  out.app_rpc_failures = tb->app->rpc_failures();
  out.app_stray_responses = tb->app->stray_responses();
  out.controller_ticks_stalled = tb->sim.ticks_stalled();
  out.events_processed = tb->sim.events_processed();

  if (config.record_alloc_timelines) {
    for (int i = 0; i < tb->app->service_count(); ++i) {
      const Container& c = tb->app->service_container(i);
      ContainerTrace trace;
      trace.name = c.name();
      trace.cores = c.core_timeline().sample(0, gen.measure_end(),
                                             config.trace_sample_interval);
      trace.frequency = c.freq_timeline().sample(0, gen.measure_end(),
                                                 config.trace_sample_interval);
      out.alloc_traces.push_back(std::move(trace));
    }
  }
  if (config.record_latency_series) {
    out.latency_series = gen.vv_tracker().latency_series().sample(
        0, gen.measure_end(), config.vv_window);
  }
  if (TraceSink* trace = tb->sim.trace_sink()) {
    std::vector<TraceContainerInfo> info;
    for (int i = 0; i < tb->app->service_count(); ++i) {
      const Container& c = tb->app->service_container(i);
      info.push_back({c.id(), c.node(), c.name()});
    }
    trace->set_container_info(std::move(info));
    out.trace = trace->report();
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const ProfileResult profile =
      profile_workload(config.workload, config.nodes, config.target_mult);
  return run_experiment(config, profile);
}

}  // namespace sg
