#include "core/reporting.hpp"

#include <algorithm>
#include <cstdio>

#include "common/csv.hpp"

namespace sg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line.append(widths[i] - row[i].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_ratio(double v, int precision) {
  return fmt_double(v, precision) + "x";
}

void print_banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

}  // namespace sg
