// Forwarding header: TablePrinter/fmt_ratio/print_banner moved to
// common/table.hpp so that sg_trace's exporters (which cannot link sg_core)
// can use them. Existing includes keep working through this alias.
#pragma once

#include "common/table.hpp"  // IWYU pragma: export
