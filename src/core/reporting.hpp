// Fixed-width table printing for bench output.
//
// Every bench prints the paper's rows/series as aligned text tables (and
// optionally CSV); this keeps that formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace sg {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a header underline.
  std::string render() const;

  /// render() to stdout.
  void print() const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.83x"-style normalized value rendering.
std::string fmt_ratio(double v, int precision = 2);

/// Section banner for bench output.
void print_banner(const std::string& title);

}  // namespace sg
