// Replication and sweep protocol (paper artifact appendix):
// "For each spike pattern, we collect 17 data-points for each controller.
// While averaging ... we exclude the best and worst data-points ... and
// average the remaining 15."
//
// Replications are embarrassingly parallel: each runs its own Simulator
// seeded seed0 + k, on its own thread, with no shared mutable state beyond
// the result vector (guarded). Results are bit-deterministic per seed, so a
// sweep's aggregate is reproducible regardless of thread schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/experiment.hpp"

namespace sg {

struct RepStats {
  /// Raw per-replication values, in seed order.
  std::vector<double> violation_volume;
  std::vector<double> avg_cores;
  std::vector<double> energy_joules;
  std::vector<double> p98_ms;

  /// Trimmed means (drop best/worst), the paper's aggregation.
  double vv = 0.0;
  double cores = 0.0;
  double energy = 0.0;
  double p98 = 0.0;

  std::size_t replications() const { return violation_volume.size(); }
};

struct SweepOptions {
  /// Replications per configuration (paper: 17; benches default lower for
  /// wall-clock reasons — the protocol is identical).
  int replications = 5;
  /// Data points trimmed from each end before averaging (paper: 1).
  std::size_t trim = 1;
  /// Worker threads (0 = hardware concurrency).
  unsigned threads = 0;
  std::uint64_t seed0 = 1;
};

/// Runs `options.replications` copies of `config` (seeds seed0..seed0+n-1)
/// against a shared profile and aggregates with the trimmed-mean protocol.
RepStats run_replicated(const ExperimentConfig& config,
                        const ProfileResult& profile,
                        const SweepOptions& options);

/// Convenience wrapper that profiles first.
RepStats run_replicated(const ExperimentConfig& config,
                        const SweepOptions& options);

}  // namespace sg
