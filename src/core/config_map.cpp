#include "core/config_map.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace sg {

namespace {

/// Exact keys experiment_from_config (and sg_run) consume. Kept in sync with
/// the header's "Recognized keys" comment; core_config_map_test exercises
/// the misspelling path.
const char* const kKnownKeys[] = {
    "workload", "controller", "nodes", "sim.shards", "warmup_s", "duration_s",
    "qos_mult", "target_mult", "seed", "rate_rps",
    "surge.mult", "surge.len_ms", "surge.period_s",
    "netdelay.extra_us", "netdelay.len_ms", "netdelay.period_s",
    "fault.plan",
    "retry.enabled", "retry.timeout_ms", "retry.backoff", "retry.max",
    "drain_s",
    "membw.node_bw_gbs", "membw.demand_per_core_gbs",
    "ideal.detection_delay_ms",
    "record.alloc_timelines", "record.latency_series",
    "trace.enabled", "trace.sample", "trace.capacity",
    "trace.keep_violators", "trace.out",
};

bool is_known_key(const std::string& key) {
  for (const char* k : kKnownKeys) {
    if (key == k) return true;
  }
  // service.<name>.expected_exec_metric_us / .expected_time_from_start_us:
  // the <name> part is workload-dependent, so validate the shape only.
  constexpr std::string_view kServicePrefix = "service.";
  if (key.compare(0, kServicePrefix.size(), kServicePrefix) == 0) {
    const auto ends_with = [&](std::string_view suffix) {
      return key.size() > kServicePrefix.size() + suffix.size() &&
             key.compare(key.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
    };
    return ends_with(".expected_exec_metric_us") ||
           ends_with(".expected_time_from_start_us");
  }
  return false;
}

}  // namespace

std::optional<ControllerKind> controller_from_string(const std::string& name) {
  if (name == "static") return ControllerKind::kStatic;
  if (name == "parties") return ControllerKind::kParties;
  if (name == "caladan" || name == "caladanalgo") return ControllerKind::kCaladan;
  if (name == "escalator") return ControllerKind::kEscalator;
  if (name == "surgeguard") return ControllerKind::kSurgeGuard;
  if (name == "parties+metrics") return ControllerKind::kEscalatorMetricsOnly;
  if (name == "parties+sensitivity") return ControllerKind::kEscalatorSensOnly;
  if (name == "ideal") return ControllerKind::kIdealOracle;
  if (name == "centralized-ml" || name == "ml") return ControllerKind::kCentralizedML;
  if (name == "ml+surgeguard") return ControllerKind::kMLPlusSurgeGuard;
  return std::nullopt;
}

std::optional<ExperimentConfig> experiment_from_config(const Config& cfg,
                                                       std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<ExperimentConfig> {
    if (error) *error = msg;
    return std::nullopt;
  };

  ExperimentConfig out;

  warn_unknown_config_keys(cfg);

  const std::string workload = cfg.get_string("workload", "chain");
  bool found = false;
  for (const WorkloadInfo& w : workload_catalog()) {
    if (workload == w.action || workload == w.family ||
        workload == w.family + "." + w.action) {
      out.workload = w;
      found = true;
      break;
    }
  }
  if (!found) return fail("unknown workload: " + workload);

  const std::string controller = cfg.get_string("controller", "surgeguard");
  const auto kind = controller_from_string(controller);
  if (!kind) return fail("unknown controller: " + controller);
  out.controller = *kind;

  out.nodes = static_cast<int>(cfg.get_int("nodes", 1));
  if (out.nodes < 1) return fail("nodes must be >= 1");

  out.shards = static_cast<int>(cfg.get_int("sim.shards", 1));
  if (out.shards < 1) {
    return fail("sim.shards must be >= 1 (got " + std::to_string(out.shards) +
                "); use 1 for serial execution");
  }
  if (out.shards > out.nodes) {
    return fail("sim.shards (" + std::to_string(out.shards) +
                ") cannot exceed nodes (" + std::to_string(out.nodes) +
                "): each shard needs at least one node");
  }
  if (out.shards > 1 && (out.controller == ControllerKind::kCentralizedML ||
                         out.controller == ControllerKind::kMLPlusSurgeGuard)) {
    return fail("controller '" + controller +
                "' is centralized (one instance reads every node) and "
                "requires sim.shards = 1");
  }

  out.warmup = from_seconds(cfg.get_double("warmup_s", 5.0));
  out.duration = from_seconds(cfg.get_double("duration_s", 30.0));
  if (out.warmup < 0 || out.duration <= 0) return fail("invalid timing");

  out.qos_mult = cfg.get_double("qos_mult", 2.0);
  out.target_mult = cfg.get_double("target_mult", 2.0);
  out.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  // Optional base-rate override (the wrk2 -rate knob).
  if (const auto rate = cfg.try_get_double("rate_rps"); rate && *rate > 0) {
    out.workload.base_rate_rps = *rate;
  }

  out.surge_mult = cfg.get_double("surge.mult", 1.75);
  out.surge_len = from_seconds(cfg.get_double("surge.len_ms", 2000.0) / 1e3);
  out.surge_period =
      from_seconds(cfg.get_double("surge.period_s", 10.0));
  if (out.surge_mult <= 0) return fail("surge.mult must be positive");

  out.net_delay_extra = static_cast<SimTime>(
      cfg.get_double("netdelay.extra_us", 0.0) * 1e3);
  out.net_delay_len =
      from_seconds(cfg.get_double("netdelay.len_ms", 0.0) / 1e3);
  out.net_delay_period =
      from_seconds(cfg.get_double("netdelay.period_s", 10.0));

  // Chaos: deterministic fault schedule + RPC retransmission policy. The
  // fault.plan value is the same spec string sg_run --fault-plan accepts.
  if (cfg.has("fault.plan")) {
    std::string fault_error;
    const auto plan = FaultPlan::from_config(cfg, &fault_error);
    if (!plan) return fail(fault_error);
    out.fault_plan = *plan;
  }
  out.rpc_retry.enabled = cfg.get_bool("retry.enabled", false);
  out.rpc_retry.timeout = static_cast<SimTime>(
      cfg.get_double("retry.timeout_ms", 50.0) * 1e6);
  out.rpc_retry.backoff = cfg.get_double("retry.backoff", 2.0);
  out.rpc_retry.max_retries =
      static_cast<int>(cfg.get_int("retry.max", 5));
  if (out.rpc_retry.enabled &&
      (out.rpc_retry.timeout <= 0 || out.rpc_retry.backoff < 1.0 ||
       out.rpc_retry.max_retries < 0)) {
    return fail("invalid retry policy");
  }
  out.drain = from_seconds(cfg.get_double("drain_s", 0.0));
  if (out.drain < 0) return fail("drain_s must be >= 0");

  if (cfg.has("membw.node_bw_gbs")) {
    MemBwDomain::Params bw;
    bw.node_bw_gbs = cfg.get_double("membw.node_bw_gbs", 100.0);
    bw.demand_per_busy_core_gbs =
        cfg.get_double("membw.demand_per_core_gbs", 6.0);
    if (bw.node_bw_gbs <= 0) return fail("membw.node_bw_gbs must be positive");
    out.membw = bw;
  }

  out.ideal_detection_delay = static_cast<SimTime>(
      cfg.get_double("ideal.detection_delay_ms", 0.2) * 1e6);

  out.record_alloc_timelines = cfg.get_bool("record.alloc_timelines", false);
  out.record_latency_series = cfg.get_bool("record.latency_series", false);

  out.trace_enabled = cfg.get_bool("trace.enabled", false);
  out.trace_sample = cfg.get_double("trace.sample", 1.0);
  if (out.trace_sample < 0.0 || out.trace_sample > 1.0) {
    return fail("trace.sample must be in [0, 1]");
  }
  const long long cap = cfg.get_int("trace.capacity", 4096);
  if (cap <= 0) return fail("trace.capacity must be positive");
  out.trace_capacity = static_cast<std::size_t>(cap);
  out.trace_keep_violators = cfg.get_bool("trace.keep_violators", true);
  return out;
}

std::vector<std::string> unknown_config_keys(const Config& cfg) {
  std::vector<std::string> unknown;
  for (const std::string& key : cfg.keys()) {
    if (!is_known_key(key)) unknown.push_back(key);
  }
  return unknown;
}

int warn_unknown_config_keys(const Config& cfg) {
  const std::vector<std::string> unknown = unknown_config_keys(cfg);
  for (const std::string& key : unknown) {
    std::fprintf(stderr, "warning: unknown config key '%s' (ignored)\n",
                 key.c_str());
  }
  return static_cast<int>(unknown.size());
}

int apply_target_overrides(const Config& cfg, const WorkloadInfo& workload,
                           TargetMap* targets) {
  int overridden = 0;
  for (std::size_t i = 0; i < workload.spec.services.size(); ++i) {
    const std::string prefix =
        "service." + workload.spec.services[i].name + ".";
    const auto exec = cfg.try_get_double(prefix + "expected_exec_metric_us");
    const auto tfs =
        cfg.try_get_double(prefix + "expected_time_from_start_us");
    if (!exec && !tfs) continue;
    ContainerTargets& t = targets->per_container[static_cast<int>(i)];
    if (exec) t.expected_exec_metric_ns = *exec * 1e3;
    if (tfs) {
      t.expected_time_from_start = Duration{static_cast<SimTime>(*tfs * 1e3)};
    }
    ++overridden;
  }
  return overridden;
}

}  // namespace sg
