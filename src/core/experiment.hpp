// Experiment harness: builds a full simulated testbed (cluster + network +
// application + load generator + per-node controllers), runs it, and
// reports the paper's measurements (violation volume, tail latency, average
// cores used, energy).
//
// The setup mirrors the paper's protocol (§V + artifact appendix):
//   * per-service parameters (expectedExecMetric, expectedTimeFromStart)
//     profiled at low load and set to 2x the measured values;
//   * base rate "slightly below the knee" — encoded in the calibrated
//     workload catalog;
//   * the application initialized to ~2/3 of the node's allocatable cores,
//     the rest available on demand;
//   * surges injected as rate spikes of configurable magnitude/duration.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/workloads.hpp"
#include "controllers/targets.hpp"
#include "fault/fault_injector.hpp"
#include "sim/timeline.hpp"
#include "trace/trace.hpp"
#include "workload/load_generator.hpp"

namespace sg {

enum class ControllerKind {
  kStatic,
  kParties,
  kCaladan,
  kEscalator,             // Escalator without FirstResponder (Fig. 10)
  kSurgeGuard,            // Escalator + FirstResponder
  kEscalatorMetricsOnly,  // Fig. 15: new metrics, no sensitivity
  kEscalatorSensOnly,     // Fig. 15: sensitivity, Parties' metric
  kIdealOracle,           // Fig. 4
  kCentralizedML,         // Table I's ML row (Sinan/Sage stand-in)
  kMLPlusSurgeGuard,      // paper §VII: ML for steady state + SurgeGuard
};

const char* to_string(ControllerKind k);

/// Low-load profiling output: the per-container targets and the operating
/// context shared by every controller in an experiment.
struct ProfileResult {
  TargetMap targets;
  /// Mean end-to-end latency at low load (QoS derives from this).
  SimTime low_load_mean_latency = 0;
  /// Mean end-to-end latency observed (diagnostics).
  SimTime low_load_p98 = 0;
};

struct ExperimentConfig {
  WorkloadInfo workload;
  ControllerKind controller = ControllerKind::kSurgeGuard;

  int nodes = 1;

  /// Event-loop shards (DESIGN.md §8). 1 = the classic serial path; N > 1
  /// partitions nodes over N shard threads (node i -> shard i % N) under
  /// conservative time-window sync. Results are bit-identical for every
  /// value. Must be in [1, nodes]; centralized controllers (CentralizedML,
  /// ML+SurgeGuard) require shards == 1 — one instance reads every node.
  int shards = 1;

  /// Surge shape: spike_rate = surge_mult * base rate, for surge_len, every
  /// surge_period, first one at warmup + first_surge_offset.
  double surge_mult = 1.75;
  SimTime surge_len = 2 * kSecond;
  SimTime surge_period = 10 * kSecond;
  SimTime first_surge_offset = 1 * kSecond;

  SimTime warmup = 5 * kSecond;
  SimTime duration = 30 * kSecond;

  /// QoS target = qos_mult x low-load mean e2e latency (wrk2_spike -qos).
  /// 2x leaves headroom over base-load tails yet is tight enough that even
  /// 1.25x surges violate, as in the paper.
  double qos_mult = 2.0;
  /// Per-container targets = target_mult x low-load profile (paper: 2x).
  double target_mult = 2.0;

  SimTime metrics_interval = 50 * kMillisecond;
  SimTime vv_window = 5 * kMillisecond;

  /// Node sizing: allocatable cores = ceil(initial_on_node * free_headroom)
  /// (artifact: workload initialized to 2/3 of allocatable cores).
  double free_headroom = 1.5;
  int reserved_cores_per_node = 19;

  std::uint64_t seed = 1;

  /// Overrides the derived spike pattern entirely (Fig. 10 short surges).
  std::optional<SpikePattern> pattern_override;

  /// Enables the per-node shared memory-bandwidth interference domain
  /// (paper §VII extension; bench_ablation_membw).
  std::optional<MemBwDomain::Params> membw;

  /// Injects periodic network-latency surges: every packet gains
  /// `net_delay_extra` during windows of `net_delay_len` every
  /// `net_delay_period`, first at warmup + first_surge_offset. Models the
  /// paper's "surges in ... network latency" disruption class.
  SimTime net_delay_extra = 0;
  SimTime net_delay_len = 0;
  SimTime net_delay_period = 10 * kSecond;

  /// Deterministic fault schedule (chaos experiments). Empty = no faults and
  /// a bit-identical pre-fault event sequence. Window times are absolute
  /// simulation times (warmup included), matching net_delay_* semantics.
  FaultPlan fault_plan;

  /// RPC retransmission policy applied to BOTH the application's child RPCs
  /// and the client's requests. Required for requests to survive packet
  /// loss; leave disabled for fault-free runs.
  RpcRetryPolicy rpc_retry;

  /// Extra time simulated after measure_end with the generator stopped, so
  /// retried requests drain before results are read. Chaos runs should set
  /// this to at least the retry policy's worst-case backoff sum.
  SimTime drain = 0;

  /// IdealOracle detection delay (Fig. 4).
  SimTime ideal_detection_delay = 200 * kMicrosecond;
  SimTime ideal_drain_window = 500 * kMillisecond;

  /// Record per-container allocation timelines / output-latency series.
  bool record_alloc_timelines = false;
  bool record_latency_series = false;
  SimTime trace_sample_interval = 100 * kMillisecond;

  /// Per-request distributed tracing (sg::trace). Off by default: the
  /// instrumented paths then reduce to one null check and the run is
  /// bit-identical to an untraced build.
  bool trace_enabled = false;
  /// Head-sampling rate in [0, 1] (hash of the request id; no RNG draws).
  double trace_sample = 1.0;
  /// Kept-trace ring capacity.
  std::size_t trace_capacity = 4096;
  /// Tail sampling: also keep requests whose latency exceeds the QoS.
  bool trace_keep_violators = true;

  /// Derived spike pattern for this config.
  SpikePattern make_pattern() const;
};

struct ContainerTrace {
  std::string name;
  std::vector<StepTimeline::Point> cores;      // sampled allocation
  std::vector<StepTimeline::Point> frequency;  // sampled MHz
};

struct ExperimentResult {
  LoadGenResults load;

  /// Time-averaged allocated cores over the measurement window.
  double avg_cores = 0.0;
  /// Busy-core energy over the measurement window (joules).
  double energy_joules = 0.0;

  /// FirstResponder counters (zero unless the controller has one).
  std::uint64_t fr_packets = 0;
  std::uint64_t fr_violations = 0;
  std::uint64_t fr_boosts = 0;

  /// Fault-injection footprint (all zero for fault-free runs).
  FaultStats faults;
  std::uint64_t app_rpc_retries = 0;
  std::uint64_t app_rpc_failures = 0;
  std::uint64_t app_stray_responses = 0;
  std::uint64_t controller_ticks_stalled = 0;
  std::uint64_t events_processed = 0;

  /// Optional traces.
  std::vector<ContainerTrace> alloc_traces;
  std::vector<StepTimeline::Point> latency_series;

  /// Request-level trace snapshot (present when trace_enabled). Detached
  /// from the testbed: exporters can run after the simulation is gone.
  std::optional<TraceReport> trace;

  SimTime measure_start = 0;
  SimTime measure_end = 0;
};

/// Profiles the workload at low load (10% of base rate) with a static
/// controller; deterministic for a given seed.
ProfileResult profile_workload(const WorkloadInfo& workload, int nodes,
                               double target_mult = 2.0,
                               std::uint64_t seed = 42);

/// Runs one experiment replication.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                const ProfileResult& profile);

/// Convenience: profile + run in one call (profiling cached per call only).
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace sg
