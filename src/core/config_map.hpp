// Config-file -> ExperimentConfig mapping (the paper artifact's workflow).
//
// The artifact drives experiments from a flat config file
// (controllers/sample_config): workload selection, controller, surge shape,
// and per-service parameters. `experiment_from_config` reproduces that
// interface on top of the library's ExperimentConfig, and
// `targets_from_config` lets users pin per-service expectedExecMetric /
// expectedTimeFromStart values instead of profiling (paper §IV: "these
// values can either be set by the user or obtained through online
// profiling").
//
// Recognized keys (see sample_config at the repository root):
//   workload            = chain | readUserTimeline | composePost | ...
//   controller          = static | parties | caladan | escalator |
//                         surgeguard | ideal | centralized-ml |
//                         ml+surgeguard
//   nodes               = 1
//   sim.shards          = 1  (event-loop shards; bit-identical for any N)
//   warmup_s, duration_s, qos_mult, target_mult, seed
//   surge.mult, surge.len_ms, surge.period_s
//   netdelay.extra_us, netdelay.len_ms, netdelay.period_s
//   fault.plan          (FaultPlan spec, see fault/fault_plan.hpp)
//   retry.enabled, retry.timeout_ms, retry.backoff, retry.max
//   drain_s             (post-measurement drain window)
//   membw.node_bw_gbs, membw.demand_per_core_gbs
//   trace.enabled, trace.sample, trace.capacity, trace.keep_violators,
//   trace.out           (export path; consumed by sg_run)
//   service.<name>.expected_exec_metric_us
//   service.<name>.expected_time_from_start_us
//
// Unknown keys are not errors (forward compatibility with configs written
// for newer builds) but ARE reported: experiment_from_config prints one
// stderr warning per unknown key, so a misspelled knob ("retry.timout_s")
// fails loudly instead of silently running with the default.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"

namespace sg {

/// Parses a controller name ("surgeguard", "parties", ...); nullopt on
/// unknown names.
std::optional<ControllerKind> controller_from_string(const std::string& name);

/// Builds an ExperimentConfig from a parsed Config. Returns nullopt and
/// fills `error` on unknown workload/controller or invalid values.
std::optional<ExperimentConfig> experiment_from_config(const Config& cfg,
                                                       std::string* error);

/// Applies user-pinned per-service targets from `service.<name>.*` keys on
/// top of a profiled TargetMap (unpinned services keep profiled values).
/// Returns how many services were overridden.
int apply_target_overrides(const Config& cfg, const WorkloadInfo& workload,
                           TargetMap* targets);

/// Keys in `cfg` that no consumer recognizes (sorted). The known set is the
/// list in this header plus the `service.<name>.*` target-override pattern.
std::vector<std::string> unknown_config_keys(const Config& cfg);

/// Prints one `warning: unknown config key ...` line to stderr per unknown
/// key and returns how many there were. Called by experiment_from_config.
int warn_unknown_config_keys(const Config& cfg);

}  // namespace sg
