// FaultPlan: a declarative, seed-deterministic schedule of fault windows.
//
// SurgeGuard's claim is graceful behaviour under disturbance, so the
// reproduction must be testable under disturbance, not just the happy path.
// A FaultPlan is a list of timed windows, each activating one fault class:
//
//   kPacketDrop     packets lost on the wire with probability `rate`
//   kPacketDup      packets delivered twice with probability `rate`
//   kPacketDelay    every packet pays `extra_delay_ns` more one-way latency
//   kNodeSlowdown   containers on `node` execute at `factor` x normal speed
//   kNodeFreeze     `node` loses all cores for the window, then restarts
//                   with its pre-freeze allocation
//   kControllerStall  controller decision ticks are skipped (missed ticks)
//
// The plan itself is pure data: the FaultInjector wires it into a concrete
// testbed. Every stochastic draw (drop/dup coin flips) comes from an RNG
// forked off the owning Simulator, so a (plan, seed) pair reproduces the
// exact same fault timeline — which is what makes chaos tests assertable
// rather than flaky.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/time.hpp"

namespace sg {

enum class FaultKind {
  kPacketDrop,
  kPacketDup,
  kPacketDelay,
  kNodeSlowdown,
  kNodeFreeze,
  kControllerStall,
};

const char* to_string(FaultKind k);

/// One timed fault window [start, end). Fields beyond the timing are
/// interpreted per kind (see the table above); `node` = -1 targets every
/// node (node-scoped kinds only).
struct FaultWindow {
  FaultKind kind = FaultKind::kPacketDrop;
  SimTime start = 0;
  SimTime end = 0;
  /// Per-packet probability for kPacketDrop / kPacketDup.
  double rate = 0.0;
  /// Execution-speed multiplier for kNodeSlowdown, in (0, 1].
  double factor = 1.0;
  /// Additional one-way packet delay for kPacketDelay.
  SimTime extra_delay_ns = 0;
  /// Target node for kNodeSlowdown / kNodeFreeze (-1 = all nodes).
  int node = -1;

  bool active_at(SimTime t) const { return t >= start && t < end; }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the compact spec used by `sg_run --fault-plan` and the
  /// `fault.plan` config key. Windows are `;`-separated; each is
  /// `kind:key=value,key=value,...` with kind one of
  /// drop | dup | delay | slow | freeze | stall and keys
  /// start_ms, len_ms, rate, factor, extra_us, node. Example:
  ///
  ///   drop:start_ms=6000,len_ms=2000,rate=0.1;slow:node=0,start_ms=9000,len_ms=500,factor=0.25
  ///
  /// Returns nullopt and fills `error` on malformed specs.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// Reads the plan from a parsed config file: the `fault.plan` key holds
  /// the same spec string parse() accepts. Absent key = empty plan; a
  /// malformed value returns nullopt with `error` set.
  static std::optional<FaultPlan> from_config(const Config& cfg,
                                              std::string* error = nullptr);

  void add(FaultWindow w) { windows_.push_back(w); }

  const std::vector<FaultWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }
  std::size_t size() const { return windows_.size(); }

  /// Validates every window (positive length, rates in [0,1], factor in
  /// (0,1], delay >= 0); fills `error` on the first violation.
  bool validate(std::string* error = nullptr) const;

  /// Serializes back to the spec grammar parse() accepts (round-trips).
  std::string to_string() const;

  /// --- point queries (used by the injector's wire hook) ---

  /// Combined drop probability of all active kPacketDrop windows at t
  /// (independent windows compose: 1 - prod(1 - rate_i)).
  double drop_rate_at(SimTime t) const;

  /// Combined duplication probability of active kPacketDup windows at t.
  double dup_rate_at(SimTime t) const;

  /// Sum of active kPacketDelay windows' extra delay at t.
  SimTime extra_delay_at(SimTime t) const;

  /// True when a kControllerStall window is active at t.
  bool controller_stalled_at(SimTime t) const;

  /// Last window end (0 for an empty plan): the horizon a drain must cover.
  SimTime horizon() const;

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace sg
