// FaultInjector: wires a FaultPlan into a live testbed.
//
// One injector per Simulator. arm() registers the wire-level fault hook on
// the Network, schedules node freeze/slowdown windows on the Cluster, and
// installs the controller-tick gate on the Simulator. All randomness (the
// per-packet drop/dup coin flips) comes from an RNG forked off the owning
// Simulator's RNG at construction, so the full fault timeline — which
// packets die, when nodes stall — is a pure function of (plan, seed).
#pragma once

#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace sg {

/// Lifetime counters of everything the injector actually did (as opposed to
/// what the plan scheduled): the observable fault footprint of a run. Equal
/// counts across runs are a necessary condition for bit-reproducibility,
/// which is what the determinism golden test pins.
struct FaultStats {
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_delayed = 0;
  std::uint64_t node_slowdowns = 0;  // slowdown windows applied
  std::uint64_t node_freezes = 0;    // freeze windows applied
  std::uint64_t node_restarts = 0;   // freeze windows restored

  /// Compact "k=v" rendering, stable field order (golden-test friendly).
  std::string digest() const;
};

class FaultInjector final : public PacketFaultHook {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches the injector to a testbed. Either pointer may be null when
  /// that layer is absent (e.g. a network-only unit test). Packet windows
  /// need `net`; node windows need `cluster`; controller-stall windows only
  /// need the simulator. Call once, before the simulation runs.
  void arm(Network* net, Cluster* cluster);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// PacketFaultHook: decides the fate of one packet at send time.
  PacketFate on_send(const RpcPacket& pkt) override;

 private:
  void schedule_node_windows(Cluster& cluster);

  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace sg
