// FaultInjector: wires a FaultPlan into a live testbed.
//
// One injector per Simulator. arm() registers the wire-level fault hook on
// the Network, schedules node freeze/slowdown windows on the Cluster, and
// installs the controller-tick gate on the Simulator. All randomness (the
// per-packet drop/dup coin flips) comes from an RNG forked off the owning
// Simulator's RNG at construction, so the full fault timeline — which
// packets die, when nodes stall — is a pure function of (plan, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace sg {

/// Lifetime counters of everything the injector actually did (as opposed to
/// what the plan scheduled): the observable fault footprint of a run. Equal
/// counts across runs are a necessary condition for bit-reproducibility,
/// which is what the determinism golden test pins.
struct FaultStats {
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_delayed = 0;
  std::uint64_t node_slowdowns = 0;  // slowdown windows applied
  std::uint64_t node_freezes = 0;    // freeze windows applied
  std::uint64_t node_restarts = 0;   // freeze windows restored

  /// Compact "k=v" rendering, stable field order (golden-test friendly).
  std::string digest() const;
};

class FaultInjector final : public PacketFaultHook {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches the injector to a testbed. Either pointer may be null when
  /// that layer is absent (e.g. a network-only unit test). Packet windows
  /// need `net`; node windows need `cluster`; controller-stall windows only
  /// need the simulator. Call once, before the simulation runs.
  ///
  /// With a cluster attached, the per-packet coin flips switch to
  /// per-source-node RNG streams (plus one for the client) and per-node
  /// stats slots, so each node's fault outcomes depend only on its own send
  /// sequence — identical at any shard count (DESIGN.md §8). Without a
  /// cluster the historical single-stream behavior is kept.
  void arm(Network* net, Cluster* cluster);

  const FaultPlan& plan() const { return plan_; }

  /// Observable fault footprint so far (per-node slots summed).
  FaultStats stats() const;

  /// PacketFaultHook: decides the fate of one packet at send time.
  PacketFate on_send(const RpcPacket& pkt) override;

 private:
  void schedule_node_windows(Cluster& cluster);
  Rng& stream_for(int src_node);
  FaultStats& stats_slot(int node);

  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  bool armed_ = false;
  bool per_node_ = false;
  Rng client_stream_{0};  // reseeded in arm()
  std::vector<Rng> node_streams_;
  // Slot 0 = client, slot n+1 = node n. Each slot is only ever touched by
  // the shard owning that node.
  std::vector<FaultStats> node_stats_;
};

}  // namespace sg
