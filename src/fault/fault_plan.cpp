#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sg {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kPacketDrop: return "drop";
    case FaultKind::kPacketDup: return "dup";
    case FaultKind::kPacketDelay: return "delay";
    case FaultKind::kNodeSlowdown: return "slow";
    case FaultKind::kNodeFreeze: return "freeze";
    case FaultKind::kControllerStall: return "stall";
  }
  return "?";
}

namespace {

std::optional<FaultKind> kind_from_string(const std::string& s) {
  if (s == "drop") return FaultKind::kPacketDrop;
  if (s == "dup") return FaultKind::kPacketDup;
  if (s == "delay") return FaultKind::kPacketDelay;
  if (s == "slow") return FaultKind::kNodeSlowdown;
  if (s == "freeze") return FaultKind::kNodeFreeze;
  if (s == "stall") return FaultKind::kControllerStall;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FaultPlan> {
    if (error) *error = "fault plan: " + msg;
    return std::nullopt;
  };

  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return fail("window '" + entry + "' missing 'kind:' prefix");
    }
    const auto kind = kind_from_string(trim(entry.substr(0, colon)));
    if (!kind) {
      return fail("unknown fault kind '" + entry.substr(0, colon) + "'");
    }
    FaultWindow w;
    w.kind = *kind;
    SimTime len = 0;
    for (const std::string& kv_raw : split(entry.substr(colon + 1), ',')) {
      const std::string kv = trim(kv_raw);
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got '" + kv + "'");
      }
      const std::string key = trim(kv.substr(0, eq));
      const std::string val = trim(kv.substr(eq + 1));
      char* endp = nullptr;
      const double num = std::strtod(val.c_str(), &endp);
      if (endp == val.c_str() || *endp != '\0') {
        return fail("non-numeric value '" + val + "' for key '" + key + "'");
      }
      if (key == "start_ms") {
        w.start = static_cast<SimTime>(num * 1e6);
      } else if (key == "len_ms") {
        len = static_cast<SimTime>(num * 1e6);
      } else if (key == "rate") {
        w.rate = num;
      } else if (key == "factor") {
        w.factor = num;
      } else if (key == "extra_us") {
        w.extra_delay_ns = static_cast<SimTime>(num * 1e3);
      } else if (key == "node") {
        w.node = static_cast<int>(num);
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    w.end = w.start + len;
    plan.add(w);
  }
  if (!plan.validate(error)) return std::nullopt;
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_config(const Config& cfg,
                                                std::string* error) {
  if (!cfg.has("fault.plan")) return FaultPlan{};
  return parse(cfg.get_string("fault.plan"), error);
}

bool FaultPlan::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = "fault plan: " + msg;
    return false;
  };
  for (const FaultWindow& w : windows_) {
    const std::string tag = std::string(sg::to_string(w.kind));
    if (w.start < 0) return fail(tag + " window starts before t=0");
    if (w.end <= w.start) {
      return fail(tag + " window needs a positive len_ms");
    }
    switch (w.kind) {
      case FaultKind::kPacketDrop:
      case FaultKind::kPacketDup:
        if (w.rate < 0.0 || w.rate > 1.0) {
          return fail(tag + " rate must be in [0, 1]");
        }
        break;
      case FaultKind::kPacketDelay:
        if (w.extra_delay_ns < 0) {
          return fail("delay extra_us must be >= 0");
        }
        break;
      case FaultKind::kNodeSlowdown:
        if (w.factor <= 0.0 || w.factor > 1.0) {
          return fail("slow factor must be in (0, 1]");
        }
        break;
      case FaultKind::kNodeFreeze:
      case FaultKind::kControllerStall:
        break;
    }
  }
  return true;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultWindow& w : windows_) {
    if (!out.empty()) out += ";";
    out += sg::to_string(w.kind);
    std::snprintf(buf, sizeof(buf), ":start_ms=%g,len_ms=%g",
                  to_millis(w.start), to_millis(w.end - w.start));
    out += buf;
    switch (w.kind) {
      case FaultKind::kPacketDrop:
      case FaultKind::kPacketDup:
        std::snprintf(buf, sizeof(buf), ",rate=%g", w.rate);
        out += buf;
        break;
      case FaultKind::kPacketDelay:
        std::snprintf(buf, sizeof(buf), ",extra_us=%g",
                      to_micros(w.extra_delay_ns));
        out += buf;
        break;
      case FaultKind::kNodeSlowdown:
        std::snprintf(buf, sizeof(buf), ",factor=%g,node=%d", w.factor,
                      w.node);
        out += buf;
        break;
      case FaultKind::kNodeFreeze:
        std::snprintf(buf, sizeof(buf), ",node=%d", w.node);
        out += buf;
        break;
      case FaultKind::kControllerStall:
        break;
    }
  }
  return out;
}

double FaultPlan::drop_rate_at(SimTime t) const {
  double keep = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kPacketDrop && w.active_at(t)) {
      keep *= 1.0 - w.rate;
    }
  }
  return 1.0 - keep;
}

double FaultPlan::dup_rate_at(SimTime t) const {
  double keep = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kPacketDup && w.active_at(t)) {
      keep *= 1.0 - w.rate;
    }
  }
  return 1.0 - keep;
}

SimTime FaultPlan::extra_delay_at(SimTime t) const {
  SimTime total = 0;
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kPacketDelay && w.active_at(t)) {
      total += w.extra_delay_ns;
    }
  }
  return total;
}

bool FaultPlan::controller_stalled_at(SimTime t) const {
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kControllerStall && w.active_at(t)) return true;
  }
  return false;
}

SimTime FaultPlan::horizon() const {
  SimTime h = 0;
  for (const FaultWindow& w : windows_) h = std::max(h, w.end);
  return h;
}

}  // namespace sg
