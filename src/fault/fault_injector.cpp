#include "fault/fault_injector.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/shard_context.hpp"

namespace sg {

std::string FaultStats::digest() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "drops=%llu dups=%llu delayed=%llu slow=%llu freeze=%llu "
                "restart=%llu",
                static_cast<unsigned long long>(packets_dropped),
                static_cast<unsigned long long>(packets_duplicated),
                static_cast<unsigned long long>(packets_delayed),
                static_cast<unsigned long long>(node_slowdowns),
                static_cast<unsigned long long>(node_freezes),
                static_cast<unsigned long long>(node_restarts));
  return buf;
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(sim.rng().fork()) {
  std::string error;
  SG_ASSERT_MSG(plan_.validate(&error), error.c_str());
}

void FaultInjector::arm(Network* net, Cluster* cluster) {
  SG_ASSERT_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  if (cluster != nullptr) {
    // Fork per-source streams in a fixed order (client first, then nodes)
    // so each sender's coin-flip sequence is a pure function of its own
    // packet order — shard-count invariant.
    per_node_ = true;
    client_stream_ = rng_.fork();
    node_streams_.reserve(cluster->node_count());
    for (std::size_t n = 0; n < cluster->node_count(); ++n) {
      node_streams_.push_back(rng_.fork());
    }
    node_stats_.assign(cluster->node_count() + 1, FaultStats{});
  }
  if (net != nullptr) net->set_fault_hook(this);
  if (cluster != nullptr) schedule_node_windows(*cluster);
  // Controller-stall windows gate periodic kController ticks. The gate is
  // pure (reads the plan against the clock), so installing it even for
  // plans without stall windows would be harmless — but skip it to leave
  // the simulator untouched for such plans.
  bool has_stall = false;
  for (const FaultWindow& w : plan_.windows()) {
    has_stall |= w.kind == FaultKind::kControllerStall;
  }
  if (has_stall) {
    sim_.set_tick_gate([this](Simulator::TickClass cls) {
      if (cls != Simulator::TickClass::kController) return true;
      return !plan_.controller_stalled_at(sim_.now());
    });
  }
}

void FaultInjector::schedule_node_windows(Cluster& cluster) {
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind != FaultKind::kNodeSlowdown && w.kind != FaultKind::kNodeFreeze)
      continue;
    std::vector<NodeId> targets;
    if (w.node >= 0) {
      SG_ASSERT_MSG(static_cast<std::size_t>(w.node) < cluster.node_count(),
                    "fault window targets a node that does not exist");
      targets.push_back(w.node);
    } else {
      for (std::size_t n = 0; n < cluster.node_count(); ++n) {
        targets.push_back(static_cast<NodeId>(n));
      }
    }
    // One start/end event per target node, scheduled into the node's owning
    // shard: the node effect (containers resolve at fire time) and the stats
    // increment both stay on that shard, and the event count per window is a
    // function of the node count alone — identical at any shard count.
    for (NodeId n : targets) {
      ShardScope scope(sim_.shard_of_node(static_cast<int>(n)));
      if (w.kind == FaultKind::kNodeSlowdown) {
        const double factor = w.factor;
        sim_.schedule_at(w.start, [this, &cluster, n, factor]() {
          cluster.node(n).set_slowdown(factor);
          ++stats_slot(static_cast<int>(n)).node_slowdowns;
        });
        sim_.schedule_at(w.end, [&cluster, n]() {
          cluster.node(n).set_slowdown(1.0);
        });
      } else {
        sim_.schedule_at(w.start, [this, &cluster, n]() {
          cluster.node(n).freeze();
          ++stats_slot(static_cast<int>(n)).node_freezes;
        });
        sim_.schedule_at(w.end, [this, &cluster, n]() {
          cluster.node(n).restart();
          ++stats_slot(static_cast<int>(n)).node_restarts;
        });
      }
    }
  }
}

Rng& FaultInjector::stream_for(int src_node) {
  if (!per_node_) return rng_;
  if (src_node < 0) return client_stream_;
  SG_ASSERT_MSG(static_cast<std::size_t>(src_node) < node_streams_.size(),
                "fault stream for unknown node");
  return node_streams_[static_cast<std::size_t>(src_node)];
}

FaultStats& FaultInjector::stats_slot(int node) {
  if (!per_node_) return stats_;
  const std::size_t slot = static_cast<std::size_t>(node + 1);
  SG_ASSERT_MSG(slot < node_stats_.size(), "fault stats for unknown node");
  return node_stats_[slot];
}

FaultStats FaultInjector::stats() const {
  FaultStats total = stats_;
  for (const FaultStats& s : node_stats_) {
    total.packets_dropped += s.packets_dropped;
    total.packets_duplicated += s.packets_duplicated;
    total.packets_delayed += s.packets_delayed;
    total.node_slowdowns += s.node_slowdowns;
    total.node_freezes += s.node_freezes;
    total.node_restarts += s.node_restarts;
  }
  return total;
}

PacketFate FaultInjector::on_send(const RpcPacket& pkt) {
  const SimTime now = sim_.now();
  Rng& rng = stream_for(pkt.src_node);
  FaultStats& st = stats_slot(pkt.src_node);
  PacketFate fate;
  // Draw order is fixed (drop, then dup) and unconditional within an active
  // window, so the RNG stream consumed per packet depends only on the
  // sender's packet sequence — not on outcomes — keeping replays aligned.
  const double drop_p = plan_.drop_rate_at(now);
  if (drop_p > 0.0 && rng.bernoulli(drop_p)) {
    fate.drop = true;
    ++st.packets_dropped;
    return fate;
  }
  const double dup_p = plan_.dup_rate_at(now);
  if (dup_p > 0.0 && rng.bernoulli(dup_p)) {
    fate.duplicate = true;
    ++st.packets_duplicated;
  }
  fate.extra_delay_ns = plan_.extra_delay_at(now);
  if (fate.extra_delay_ns > 0) ++st.packets_delayed;
  return fate;
}

}  // namespace sg
