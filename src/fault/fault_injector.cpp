#include "fault/fault_injector.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace sg {

std::string FaultStats::digest() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "drops=%llu dups=%llu delayed=%llu slow=%llu freeze=%llu "
                "restart=%llu",
                static_cast<unsigned long long>(packets_dropped),
                static_cast<unsigned long long>(packets_duplicated),
                static_cast<unsigned long long>(packets_delayed),
                static_cast<unsigned long long>(node_slowdowns),
                static_cast<unsigned long long>(node_freezes),
                static_cast<unsigned long long>(node_restarts));
  return buf;
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(sim.rng().fork()) {
  std::string error;
  SG_ASSERT_MSG(plan_.validate(&error), error.c_str());
}

void FaultInjector::arm(Network* net, Cluster* cluster) {
  SG_ASSERT_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  if (net != nullptr) net->set_fault_hook(this);
  if (cluster != nullptr) schedule_node_windows(*cluster);
  // Controller-stall windows gate periodic kController ticks. The gate is
  // pure (reads the plan against the clock), so installing it even for
  // plans without stall windows would be harmless — but skip it to leave
  // the simulator untouched for such plans.
  bool has_stall = false;
  for (const FaultWindow& w : plan_.windows()) {
    has_stall |= w.kind == FaultKind::kControllerStall;
  }
  if (has_stall) {
    sim_.set_tick_gate([this](Simulator::TickClass cls) {
      if (cls != Simulator::TickClass::kController) return true;
      return !plan_.controller_stalled_at(sim_.now());
    });
  }
}

void FaultInjector::schedule_node_windows(Cluster& cluster) {
  for (const FaultWindow& w : plan_.windows()) {
    if (w.kind != FaultKind::kNodeSlowdown && w.kind != FaultKind::kNodeFreeze)
      continue;
    // Resolve targets at fire time (containers may attach after arm()).
    std::vector<NodeId> targets;
    if (w.node >= 0) {
      SG_ASSERT_MSG(static_cast<std::size_t>(w.node) < cluster.node_count(),
                    "fault window targets a node that does not exist");
      targets.push_back(w.node);
    } else {
      for (std::size_t n = 0; n < cluster.node_count(); ++n) {
        targets.push_back(static_cast<NodeId>(n));
      }
    }
    if (w.kind == FaultKind::kNodeSlowdown) {
      const double factor = w.factor;
      sim_.schedule_at(w.start, [this, &cluster, targets, factor]() {
        for (NodeId n : targets) {
          cluster.node(n).set_slowdown(factor);
          ++stats_.node_slowdowns;
        }
      });
      sim_.schedule_at(w.end, [&cluster, targets]() {
        for (NodeId n : targets) cluster.node(n).set_slowdown(1.0);
      });
    } else {
      sim_.schedule_at(w.start, [this, &cluster, targets]() {
        for (NodeId n : targets) {
          cluster.node(n).freeze();
          ++stats_.node_freezes;
        }
      });
      sim_.schedule_at(w.end, [this, &cluster, targets]() {
        for (NodeId n : targets) {
          cluster.node(n).restart();
          ++stats_.node_restarts;
        }
      });
    }
  }
}

PacketFate FaultInjector::on_send(const RpcPacket&) {
  const SimTime now = sim_.now();
  PacketFate fate;
  // Draw order is fixed (drop, then dup) and unconditional within an active
  // window, so the RNG stream consumed per packet depends only on the
  // packet sequence — not on outcomes — keeping replays aligned.
  const double drop_p = plan_.drop_rate_at(now);
  if (drop_p > 0.0 && rng_.bernoulli(drop_p)) {
    fate.drop = true;
    ++stats_.packets_dropped;
    return fate;
  }
  const double dup_p = plan_.dup_rate_at(now);
  if (dup_p > 0.0 && rng_.bernoulli(dup_p)) {
    fate.duplicate = true;
    ++stats_.packets_duplicated;
  }
  fate.extra_delay_ns = plan_.extra_delay_at(now);
  if (fate.extra_delay_ns > 0) ++stats_.packets_delayed;
  return fate;
}

}  // namespace sg
