// Network substrate: RPC delivery with latency plus receive-side hooks.
//
// This is the analog of the Linux networking stack in the paper's testbed.
// The crucial property reproduced here is the *hook point*: FirstResponder
// attaches at the earliest point of the receiver-side stack
// (`netif_receive_skb`), seeing every packet before it reaches the
// destination container. `Network` therefore runs a per-node hook chain at
// delivery time, before invoking the destination's receiver callback.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sg {

/// Receive-side packet interceptor (the kernel-module attachment point).
/// Hooks may read packet fields and trigger side effects (frequency boosts)
/// but must not consume the packet; delivery always continues.
class RxHook {
 public:
  virtual ~RxHook() = default;
  virtual void on_packet(const RpcPacket& pkt) = 0;
};

/// Fate of one packet crossing the wire, decided by the fault hook at send
/// time. The default fate is clean delivery.
struct PacketFate {
  /// Packet is lost on the wire: never delivered, hooks never see it.
  bool drop = false;
  /// Packet is delivered twice (independent latency draws), modeling
  /// at-least-once link-layer retransmission. Each copy runs the rx hook
  /// chain and the receiver callback once.
  bool duplicate = false;
  /// Additional one-way delay for this packet (both copies when duplicated).
  SimTime extra_delay_ns = 0;
};

/// Wire-level fault decision point (the sg::fault attachment). Consulted
/// once per send(); must be deterministic given the owning simulator's RNG
/// state so runs stay bit-reproducible per seed.
class PacketFaultHook {
 public:
  virtual ~PacketFaultHook() = default;
  virtual PacketFate on_send(const RpcPacket& pkt) = 0;
};

struct NetworkLatencyModel {
  SimTime same_node_ns = 15 * kMicrosecond;   // loopback RPC stack overhead
  SimTime cross_node_ns = 40 * kMicrosecond;  // ToR-switch hop
  /// Multiplicative jitter: latency is scaled by U[1-jitter, 1+jitter].
  double jitter = 0.1;
  /// Additional delay injected on every packet (used by experiments that
  /// model transient network slowdowns).
  SimTime extra_delay_ns = 0;
};

class Network {
 public:
  using Receiver = std::function<void(const RpcPacket&)>;

  Network(Simulator& sim, NetworkLatencyModel model = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the receiver for packets addressed to `container`. The
  /// application model registers one per service instance; the workload
  /// generator registers the client endpoint per node it drives.
  void register_receiver(int container, Receiver receiver);

  /// Registers a client-side receiver for response packets addressed to
  /// kClientEndpoint.
  void register_client_receiver(Receiver receiver);

  /// Attaches a receive-side hook on a node (FirstResponder's attach point).
  void add_rx_hook(int node, RxHook* hook);

  /// Sends a packet from `src_node`; it is delivered on pkt.dst_node after
  /// the modeled latency: hooks first, then the destination receiver.
  void send(int src_node, const RpcPacket& pkt);

  /// Changes the extra per-packet delay at runtime (network-latency surge
  /// experiments).
  void set_extra_delay(SimTime d) { model_.extra_delay_ns = d; }

  /// Installs the wire-level fault hook (nullptr clears it). Non-owning;
  /// the hook must outlive the network. With no hook installed, send() takes
  /// the exact pre-fault path (bit-identical baseline runs).
  void set_fault_hook(PacketFaultHook* hook) { fault_hook_ = hook; }

  const NetworkLatencyModel& model() const { return model_; }

  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_duplicated() const { return packets_duplicated_; }

 private:
  SimTime sample_latency(int src_node, int dst_node);
  void deliver(const RpcPacket& pkt);

  Simulator& sim_;
  NetworkLatencyModel model_;
  Rng rng_;
  // Ordered maps (determinism rule D1): today these are lookup-only, but
  // the planned event-loop sharding will walk per-node endpoint tables at
  // shard boundaries — that traversal must not depend on hash order.
  std::map<int, Receiver> receivers_;
  Receiver client_receiver_;
  std::map<int, std::vector<RxHook*>> hooks_;
  PacketFaultHook* fault_hook_ = nullptr;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_duplicated_ = 0;
};

}  // namespace sg
