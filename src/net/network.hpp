// Network substrate: RPC delivery with latency plus receive-side hooks.
//
// This is the analog of the Linux networking stack in the paper's testbed.
// The crucial property reproduced here is the *hook point*: FirstResponder
// attaches at the earliest point of the receiver-side stack
// (`netif_receive_skb`), seeing every packet before it reaches the
// destination container. `Network` therefore runs a per-node hook chain at
// delivery time, before invoking the destination's receiver callback.
//
// Under sharded execution (DESIGN.md §8) the network is also the shard
// boundary: sends whose destination lives on another shard are routed
// through the simulator's deterministic mailbox, and every delivery carries
// a canonical rank — (source node, per-source sequence) — so that
// same-nanosecond delivery order is identical at any shard count.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sg {

/// Receive-side packet interceptor (the kernel-module attachment point).
/// Hooks may read packet fields and trigger side effects (frequency boosts)
/// but must not consume the packet; delivery always continues.
class RxHook {
 public:
  virtual ~RxHook() = default;
  virtual void on_packet(const RpcPacket& pkt) = 0;
};

/// Fate of one packet crossing the wire, decided by the fault hook at send
/// time. The default fate is clean delivery.
struct PacketFate {
  /// Packet is lost on the wire: never delivered, hooks never see it.
  bool drop = false;
  /// Packet is delivered twice (independent latency draws), modeling
  /// at-least-once link-layer retransmission. Each copy runs the rx hook
  /// chain and the receiver callback once.
  bool duplicate = false;
  /// Additional one-way delay for this packet (both copies when duplicated).
  SimTime extra_delay_ns = 0;
};

/// Wire-level fault decision point (the sg::fault attachment). Consulted
/// once per send(); must be deterministic given the owning simulator's RNG
/// state so runs stay bit-reproducible per seed.
class PacketFaultHook {
 public:
  virtual ~PacketFaultHook() = default;
  virtual PacketFate on_send(const RpcPacket& pkt) = 0;
};

struct NetworkLatencyModel {
  SimTime same_node_ns = 15 * kMicrosecond;   // loopback RPC stack overhead
  SimTime cross_node_ns = 40 * kMicrosecond;  // ToR-switch hop
  /// Multiplicative jitter: latency is scaled by U[1-jitter, 1+jitter].
  double jitter = 0.1;
  /// Additional delay injected on every packet (used by experiments that
  /// model transient network slowdowns).
  SimTime extra_delay_ns = 0;

  /// Smallest latency any cross-node packet can experience — the
  /// conservative-sync lookahead for sharded execution. Extra delays
  /// (surges, fault injection) only ever add on top.
  SimTime min_cross_node_ns() const {
    const auto floor_ns =
        static_cast<SimTime>(static_cast<double>(cross_node_ns) *
                             (1.0 - jitter));
    return floor_ns > 1 ? floor_ns : 1;
  }
};

class Network {
 public:
  using Receiver = std::function<void(const RpcPacket&)>;

  Network(Simulator& sim, NetworkLatencyModel model = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Switches to per-source-node jitter streams, delivery sequences, and
  /// extra-delay slots for `node_count` nodes (plus the client endpoint).
  /// This makes every latency draw a function of the *sending node's* local
  /// history instead of a global draw order, which is what keeps results
  /// identical at any shard count — so experiments call this even with one
  /// shard. Must run before any traffic; directly-constructed networks that
  /// never call it keep the historical single-stream behavior.
  void configure_node_streams(int node_count);

  /// Registers the receiver for packets addressed to `container`. The
  /// application model registers one per service instance; the workload
  /// generator registers the client endpoint per node it drives.
  void register_receiver(int container, Receiver receiver);

  /// Registers a client-side receiver for response packets addressed to
  /// kClientEndpoint.
  void register_client_receiver(Receiver receiver);

  /// Attaches a receive-side hook on a node (FirstResponder's attach point).
  void add_rx_hook(int node, RxHook* hook);

  /// Sends a packet from `src_node`; it is delivered on pkt.dst_node after
  /// the modeled latency: hooks first, then the destination receiver.
  void send(int src_node, const RpcPacket& pkt);

  /// Changes the extra per-packet delay for every sender at once. Only safe
  /// while no shard is running (setup, or single-shard execution).
  void set_extra_delay(SimTime d);

  /// Changes the extra per-packet delay for one sender (kClientNode for the
  /// client). Safe from the shard owning that sender; experiments schedule
  /// one toggle event per node so each write happens on its own shard.
  void set_extra_delay_for(int src_node, SimTime d);

  /// Installs the wire-level fault hook (nullptr clears it). Non-owning;
  /// the hook must outlive the network. With no hook installed, send() takes
  /// the exact pre-fault path (bit-identical baseline runs).
  void set_fault_hook(PacketFaultHook* hook) { fault_hook_ = hook; }

  const NetworkLatencyModel& model() const { return model_; }

  std::uint64_t packets_delivered() const { return sum(packets_delivered_); }
  std::uint64_t packets_dropped() const { return sum(packets_dropped_); }
  std::uint64_t packets_duplicated() const { return sum(packets_duplicated_); }

 private:
  static std::uint64_t sum(const std::vector<std::uint64_t>& v) {
    std::uint64_t total = 0;
    for (std::uint64_t x : v) total += x;
    return total;
  }

  std::size_t delay_slot(int src_node) const;
  std::size_t counter_slot() const;
  Rng& stream_for(int src_node);
  std::uint64_t next_delivery_rank(int src_node);
  SimTime sample_latency(int src_node, int dst_node);
  void schedule_delivery(int src_node, const RpcPacket& pkt, SimTime latency);
  void deliver(const RpcPacket& pkt);

  Simulator& sim_;
  NetworkLatencyModel model_;
  Rng rng_;
  bool per_node_streams_ = false;
  Rng client_stream_{0};  // reseeded by configure_node_streams
  std::vector<Rng> node_streams_;
  // Per-source delivery sequence numbers; slot 0 is the client. Combined
  // with the source node id they form the canonical delivery rank.
  std::vector<std::uint64_t> delivery_seq_;
  // Extra per-packet delay by source (slot 0 = client; a single shared slot
  // until configure_node_streams). Each slot is written only by the shard
  // owning that sender.
  std::vector<SimTime> extra_delay_;
  // Ordered maps (determinism rule D1): today these are lookup-only, but
  // the event-loop sharding walks per-node endpoint tables at shard
  // boundaries — that traversal must not depend on hash order.
  std::map<int, Receiver> receivers_;
  Receiver client_receiver_;
  std::map<int, std::vector<RxHook*>> hooks_;
  PacketFaultHook* fault_hook_ = nullptr;
  // Per-shard counter slots (each shard increments only its own).
  std::vector<std::uint64_t> packets_delivered_;
  std::vector<std::uint64_t> packets_dropped_;
  std::vector<std::uint64_t> packets_duplicated_;
};

}  // namespace sg
