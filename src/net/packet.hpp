// RPC packet with SurgeGuard metadata fields.
//
// The paper (Fig. 8) extends every RPC with two fields:
//   * startTime — timestamp of the job's first packet, set at the first
//     container and propagated unchanged; FirstResponder computes per-packet
//     slack from it (eqs. 4-5).
//   * upscale — upscaling hint set at the container where a queueBuildup
//     violation is detected, propagated downstream and decremented by one at
//     each hop, so a bounded number of downstream containers upscale. Hints
//     piggyback on data packets, which is what keeps SurgeGuard decentralized
//     across nodes.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace sg {

using RequestId = std::uint64_t;

/// Sentinel "container id" for the external client / load generator.
inline constexpr int kClientEndpoint = -1;

/// Node id used for the external client machine (the paper's separate
/// 6-core client node): packets to/from it always pay cross-node latency.
inline constexpr int kClientNode = -1;

struct RpcPacket {
  RequestId request_id = 0;

  /// Correlates an RPC request with its response so the sender can resume
  /// the right in-flight call.
  std::uint64_t call_id = 0;

  /// Sending container id (kClientEndpoint for the workload generator).
  int src_container = kClientEndpoint;
  /// Node hosting the sender (responses are addressed back to it).
  int src_node = kClientNode;
  /// Receiving container id (kClientEndpoint when replying to the client).
  int dst_container = kClientEndpoint;

  /// Node hosting the destination (where the rx hook chain runs).
  int dst_node = 0;

  /// True for the response leg of an RPC.
  bool is_response = false;

  // --- SurgeGuard metadata (Fig. 8) ---

  /// End-to-end job start timestamp; propagated unchanged.
  TimePoint start_time;

  /// Downstream upscale hint; > 0 means "consider upscaling the receiver".
  int upscale = 0;

  /// Modeled payload size (for potential bandwidth extensions; latency model
  /// currently treats packets as small RPCs).
  std::uint32_t payload_bytes = 256;

  // --- trace context (sg::trace) ---

  /// Propagated across hops: this request's spans are being recorded.
  /// Always false while tracing is disabled, so the instrumented paths
  /// reduce to a dead branch.
  bool traced = false;

  /// Send timestamp, stamped by the network on traced packets only; a
  /// delivery-time hop span [sent_at, now] captures the wire transit
  /// (including fault-injected extra delay).
  TimePoint sent_at;
};

}  // namespace sg
