#include "net/network.hpp"

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace sg {

Network::Network(Simulator& sim, NetworkLatencyModel model)
    : sim_(sim), model_(model), rng_(sim.rng().fork()) {}

void Network::register_receiver(int container, Receiver receiver) {
  SG_ASSERT_MSG(container != kClientEndpoint,
                "use register_client_receiver for the client endpoint");
  receivers_[container] = std::move(receiver);
}

void Network::register_client_receiver(Receiver receiver) {
  client_receiver_ = std::move(receiver);
}

void Network::add_rx_hook(int node, RxHook* hook) {
  SG_ASSERT(hook != nullptr);
  hooks_[node].push_back(hook);
}

SimTime Network::sample_latency(int src_node, int dst_node) {
  const SimTime base =
      src_node == dst_node ? model_.same_node_ns : model_.cross_node_ns;
  const double scale = rng_.uniform(1.0 - model_.jitter, 1.0 + model_.jitter);
  SimTime latency = static_cast<SimTime>(static_cast<double>(base) * scale);
  latency += model_.extra_delay_ns;
  return latency < 0 ? 0 : latency;
}

void Network::send(int src_node, const RpcPacket& pkt_in) {
  // Packets are value types: the copy in the closures below is the wire
  // copy. Traced packets get their send time stamped on it so delivery can
  // record the transit as a net-hop span.
  RpcPacket pkt = pkt_in;
  if (pkt.traced) pkt.sent_at = sim_.now();
  if (fault_hook_ != nullptr) {
    const PacketFate fate = fault_hook_->on_send(pkt);
    if (fate.drop) {
      // Lost on the wire: neither rx hooks nor the receiver ever see it.
      ++packets_dropped_;
      return;
    }
    const SimTime latency =
        sample_latency(src_node, pkt.dst_node) + fate.extra_delay_ns;
    sim_.schedule_after(latency, [this, pkt]() { deliver(pkt); });
    if (fate.duplicate) {
      ++packets_duplicated_;
      // The duplicate travels independently: its own latency draw (plus the
      // same fault delay), its own delivery, its own trip through the rx
      // hook chain.
      const SimTime dup_latency =
          sample_latency(src_node, pkt.dst_node) + fate.extra_delay_ns;
      sim_.schedule_after(dup_latency, [this, pkt]() { deliver(pkt); });
    }
    return;
  }
  const SimTime latency = sample_latency(src_node, pkt.dst_node);
  sim_.schedule_after(latency, [this, pkt]() { deliver(pkt); });
}

void Network::deliver(const RpcPacket& pkt) {
  ++packets_delivered_;
  if (pkt.traced) {
    // Span recorded BEFORE the receiver runs, so a response's final hop is
    // buffered before the client completes (and flushes) the request.
    if (TraceSink* trace = sim_.trace_sink()) {
      TraceSpan span;
      span.request_id = pkt.request_id;
      span.kind = SpanKind::kNetHop;
      span.container = pkt.dst_container;
      span.src_container = pkt.src_container;
      span.begin = pkt.sent_at;
      span.end = sim_.now();
      span.is_response = pkt.is_response;
      trace->add_span(span);
    }
  }
  // Receive-side hook chain: the netif_receive_skb attachment point. Hooks
  // see the packet before the destination container does.
  if (const auto hit = hooks_.find(pkt.dst_node); hit != hooks_.end()) {
    for (RxHook* hook : hit->second) hook->on_packet(pkt);
  }
  if (pkt.dst_container == kClientEndpoint) {
    SG_ASSERT_MSG(client_receiver_, "no client receiver registered");
    client_receiver_(pkt);
    return;
  }
  const auto it = receivers_.find(pkt.dst_container);
  SG_ASSERT_MSG(it != receivers_.end(), "packet to unregistered container");
  it->second(pkt);
}

}  // namespace sg
