#include "net/network.hpp"

#include "common/assert.hpp"
#include "common/shard_context.hpp"
#include "trace/trace.hpp"

namespace sg {

Network::Network(Simulator& sim, NetworkLatencyModel model)
    : sim_(sim),
      model_(model),
      rng_(sim.rng().fork()),
      delivery_seq_(1, 0),
      extra_delay_(1, model.extra_delay_ns),
      packets_delivered_(1, 0),
      packets_dropped_(1, 0),
      packets_duplicated_(1, 0) {}

void Network::configure_node_streams(int node_count) {
  SG_ASSERT_MSG(node_count >= 1, "network needs at least one node");
  SG_ASSERT_MSG(!per_node_streams_, "node streams already configured");
  per_node_streams_ = true;
  // Derived from the network's own stream in a fixed order at setup time, so
  // the per-node sequences are the same regardless of shard count.
  client_stream_ = rng_.fork();
  node_streams_.reserve(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) node_streams_.push_back(rng_.fork());
  delivery_seq_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  extra_delay_.assign(static_cast<std::size_t>(node_count) + 1,
                      model_.extra_delay_ns);
  const auto shards = static_cast<std::size_t>(sim_.shard_count());
  packets_delivered_.assign(shards, 0);
  packets_dropped_.assign(shards, 0);
  packets_duplicated_.assign(shards, 0);
}

void Network::register_receiver(int container, Receiver receiver) {
  SG_ASSERT_MSG(container != kClientEndpoint,
                "use register_client_receiver for the client endpoint");
  receivers_[container] = std::move(receiver);
}

void Network::register_client_receiver(Receiver receiver) {
  client_receiver_ = std::move(receiver);
}

void Network::add_rx_hook(int node, RxHook* hook) {
  SG_ASSERT(hook != nullptr);
  hooks_[node].push_back(hook);
}

std::size_t Network::delay_slot(int src_node) const {
  if (!per_node_streams_) return 0;
  const auto slot = static_cast<std::size_t>(src_node + 1);
  SG_ASSERT_MSG(slot < extra_delay_.size(), "unknown source node");
  return slot;
}

std::size_t Network::counter_slot() const {
  return packets_delivered_.size() == 1
             ? 0
             : static_cast<std::size_t>(current_shard());
}

void Network::set_extra_delay(SimTime d) {
  for (SimTime& slot : extra_delay_) slot = d;
}

void Network::set_extra_delay_for(int src_node, SimTime d) {
  extra_delay_[delay_slot(src_node)] = d;
}

Rng& Network::stream_for(int src_node) {
  if (!per_node_streams_) return rng_;
  if (src_node < 0) return client_stream_;
  SG_ASSERT_MSG(static_cast<std::size_t>(src_node) < node_streams_.size(),
                "unknown source node");
  return node_streams_[static_cast<std::size_t>(src_node)];
}

std::uint64_t Network::next_delivery_rank(int src_node) {
  const auto slot = static_cast<std::size_t>(src_node + 1);
  SG_ASSERT_MSG(slot < delivery_seq_.size() || !per_node_streams_,
                "unknown source node");
  if (slot >= delivery_seq_.size()) delivery_seq_.resize(slot + 1, 0);
  // Canonical rank: (source node, per-source sequence). Each source's
  // sequence follows its own local send order, which is the same at any
  // shard count — so same-nanosecond deliveries tie-break identically
  // whether they were enqueued locally or through the mailbox.
  return (static_cast<std::uint64_t>(src_node + 2) << 40) |
         delivery_seq_[slot]++;
}

SimTime Network::sample_latency(int src_node, int dst_node) {
  const SimTime base =
      src_node == dst_node ? model_.same_node_ns : model_.cross_node_ns;
  const double scale =
      stream_for(src_node).uniform(1.0 - model_.jitter, 1.0 + model_.jitter);
  SimTime latency = static_cast<SimTime>(static_cast<double>(base) * scale);
  latency += extra_delay_[delay_slot(src_node)];
  return latency < 0 ? 0 : latency;
}

void Network::schedule_delivery(int src_node, const RpcPacket& pkt,
                                SimTime latency) {
  const std::uint64_t rank = next_delivery_rank(src_node);
  const int dst_shard = sim_.shard_of_node(pkt.dst_node);
  if (sim_.shard_count() > 1 && dst_shard != current_shard()) {
    sim_.schedule_cross_shard(dst_shard, sim_.now() + latency, rank,
                              [this, pkt]() { deliver(pkt); });
  } else {
    sim_.schedule_at_ranked(sim_.now() + latency, rank,
                            [this, pkt]() { deliver(pkt); });
  }
}

void Network::send(int src_node, const RpcPacket& pkt_in) {
  // Packets are value types: the copy in the closures below is the wire
  // copy. Traced packets get their send time stamped on it so delivery can
  // record the transit as a net-hop span.
  RpcPacket pkt = pkt_in;
  if (pkt.traced) pkt.sent_at = sim_.now_point();
  if (fault_hook_ != nullptr) {
    const PacketFate fate = fault_hook_->on_send(pkt);
    if (fate.drop) {
      // Lost on the wire: neither rx hooks nor the receiver ever see it.
      ++packets_dropped_[counter_slot()];
      return;
    }
    const SimTime latency =
        sample_latency(src_node, pkt.dst_node) + fate.extra_delay_ns;
    schedule_delivery(src_node, pkt, latency);
    if (fate.duplicate) {
      ++packets_duplicated_[counter_slot()];
      // The duplicate travels independently: its own latency draw (plus the
      // same fault delay), its own delivery, its own trip through the rx
      // hook chain.
      const SimTime dup_latency =
          sample_latency(src_node, pkt.dst_node) + fate.extra_delay_ns;
      schedule_delivery(src_node, pkt, dup_latency);
    }
    return;
  }
  const SimTime latency = sample_latency(src_node, pkt.dst_node);
  schedule_delivery(src_node, pkt, latency);
}

void Network::deliver(const RpcPacket& pkt) {
  ++packets_delivered_[counter_slot()];
  if (pkt.traced) {
    // Span recorded BEFORE the receiver runs, so a response's final hop is
    // buffered before the client completes (and flushes) the request.
    if (TraceSink* trace = sim_.trace_sink()) {
      TraceSpan span;
      span.request_id = pkt.request_id;
      span.kind = SpanKind::kNetHop;
      span.container = pkt.dst_container;
      span.src_container = pkt.src_container;
      span.begin = pkt.sent_at;
      span.end = sim_.now_point();
      span.is_response = pkt.is_response;
      trace->add_span(span);
    }
  }
  // Receive-side hook chain: the netif_receive_skb attachment point. Hooks
  // see the packet before the destination container does.
  if (const auto hit = hooks_.find(pkt.dst_node); hit != hooks_.end()) {
    for (RxHook* hook : hit->second) hook->on_packet(pkt);
  }
  if (pkt.dst_container == kClientEndpoint) {
    SG_ASSERT_MSG(client_receiver_, "no client receiver registered");
    client_receiver_(pkt);
    return;
  }
  const auto it = receivers_.find(pkt.dst_container);
  SG_ASSERT_MSG(it != receivers_.end(), "packet to unregistered container");
  it->second(pkt);
}

}  // namespace sg
