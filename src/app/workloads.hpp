// Workload catalog (paper §V, Table III).
//
// Five evaluated actions:
//   CHAIN                         5-deep chain microbenchmark, Thrift, pool
//   socialNetwork.readUserTimeline  depth 5, Thrift, fixed pool
//   socialNetwork.composePost       depth 8, Thrift, fixed pool
//   hotelReservation.searchHotel    depth 11, gRPC, connection-per-request
//   hotelReservation.recommendHotel depth 5,  gRPC, connection-per-request
//
// Task-graph shapes follow DeathStarBench's topology at the granularity the
// paper depends on (depth, threading model, presence of storage-tier leaf
// services with flat sensitivity curves). Service CPU costs are calibrated
// to the simulator so that, at the listed base rate with the listed initial
// allocation, the bottleneck services run at ~0.65 utilization — the
// artifact's "slightly below the knee of the load-latency curve" operating
// point.
#pragma once

#include <string>
#include <vector>

#include "app/task_graph.hpp"

namespace sg {

struct WorkloadInfo {
  AppSpec spec;

  /// Calibrated steady-state request rate (the wrk2 `-rate` parameter).
  double base_rate_rps = 2000.0;

  /// Initial logical cores per service ("highest steady-state throughput"
  /// allocation, paper §V).
  std::vector<int> initial_cores;

  /// Table III metadata as the paper reports it.
  int paper_depth = 0;
  int paper_threadpool_size = 512;  // -1 rendered as infinity

  /// Workload family and action names.
  std::string family;
  std::string action;

  int total_initial_cores() const;
};

/// CHAIN: five Thrift services, each doing a vector-accumulate-sized chunk
/// of arithmetic, fixed-size threadpools (paper §V "CHAIN Microbenchmark").
WorkloadInfo make_chain();

/// socialNetwork ReadUserTimeline (DeathStarBench), depth 5, Thrift, pool.
WorkloadInfo make_social_read_user_timeline();

/// socialNetwork ComposePost, depth 8, Thrift, pool.
WorkloadInfo make_social_compose_post();

/// hotelReservation searchHotel, depth 11, gRPC, connection-per-request.
WorkloadInfo make_hotel_search();

/// hotelReservation recommendHotel, depth 5, gRPC, connection-per-request.
WorkloadInfo make_hotel_recommend();

/// All five Table III rows, in the paper's order.
std::vector<WorkloadInfo> workload_catalog();

/// Lookup by "<family>.<action>" or bare action name; aborts on unknown.
WorkloadInfo workload_by_name(const std::string& name);

}  // namespace sg
