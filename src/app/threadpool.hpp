// Connection pool for one RPC edge (paper §II-A, Fig. 5).
//
// With the fixed-size threadpool model, each upstream->downstream edge owns
// a pool of opened connections. A request must hold a connection for the
// full downstream round trip; when none is free, it waits in FIFO order.
// That wait is the *implicit queue* central to the paper: it is invisible to
// network-queue-based controllers (Caladan/Shenango) and is precisely the
// `timeWaitingForFreeConn` term that SurgeGuard's execMetric subtracts out.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/time.hpp"

namespace sg {

class ConnectionPool {
 public:
  /// capacity < 0 means unbounded (connection-per-request model).
  explicit ConnectionPool(int capacity) : capacity_(capacity), free_(capacity) {}

  bool unbounded() const { return capacity_ < 0; }
  int capacity() const { return capacity_; }

  /// Connections currently held.
  int in_use() const { return in_use_; }

  /// Requests waiting for a connection (the implicit queue's length).
  std::size_t waiting() const { return waiters_.size(); }

  /// Acquires a connection; `granted` runs immediately when one is free,
  /// otherwise when a holder releases (FIFO). The callback receives nothing;
  /// callers measure their own wait by capturing the acquire timestamp.
  void acquire(std::function<void()> granted);

  /// Returns a connection; hands it straight to the oldest waiter if any.
  void release();

  /// Lifetime counters.
  std::uint64_t total_acquisitions() const { return total_acquisitions_; }
  std::uint64_t total_waits() const { return total_waits_; }

 private:
  int capacity_;
  int free_;
  int in_use_ = 0;
  std::deque<std::function<void()>> waiters_;
  std::uint64_t total_acquisitions_ = 0;
  std::uint64_t total_waits_ = 0;
};

}  // namespace sg
