// Application: a deployed task graph processing end-to-end requests.
//
// This is the paper's modified-DeathStarBench layer: the container runtimes
// that (a) execute requests per the task graph and threading model,
// (b) compute the SurgeGuard per-request metrics and publish windowed
// averages to Escalator (Fig. 7 step 4), and (c) stamp the SurgeGuard
// metadata fields (startTime, upscale) on outgoing RPCs (Fig. 8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/task_graph.hpp"
#include "app/threadpool.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "metrics/container_metrics.hpp"
#include "metrics/metrics_bus.hpp"
#include "net/network.hpp"

namespace sg {

/// Container-id-level view of the task graph, used by controllers that must
/// find "downstream containers" (Table II, FirstResponder's same-node boost)
/// without any knowledge of the application internals.
struct AppTopology {
  /// Immediate downstream container ids per container id.
  std::unordered_map<int, std::vector<int>> downstream;
  /// Entry container id.
  int entry = 0;

  /// Downstream containers of `container` hosted on `node` (any depth).
  std::vector<int> downstream_on_node(int container, int node,
                                      const Cluster& cluster) const;
};

/// Placement and initial sizing of an AppSpec onto a cluster.
struct Deployment {
  /// Node hosting each service (index-parallel to AppSpec::services).
  std::vector<NodeId> node_of_service;
  /// Initial logical-core allocation per service.
  std::vector<int> initial_cores;

  /// All services on one node.
  static Deployment single_node(const AppSpec& spec, NodeId node,
                                int cores_per_service);
  /// Round-robin across `node_count` nodes.
  static Deployment round_robin(const AppSpec& spec, int node_count,
                                int cores_per_service);
};

/// Timeout/retry policy for RPCs (paper testbeds run Thrift/gRPC, both of
/// which retransmit; without this, a single dropped packet strands a request
/// forever). Shared by the application's child RPCs and the load generator's
/// client requests. Timeouts back off exponentially:
/// attempt k waits timeout * backoff^k.
struct RpcRetryPolicy {
  bool enabled = false;
  /// First-attempt timeout. Must comfortably exceed the normal RPC round
  /// trip or healthy calls will spuriously retransmit.
  SimTime timeout = 50 * kMillisecond;
  double backoff = 2.0;
  /// Retransmissions after the initial attempt; once exhausted the call is
  /// abandoned (child RPCs complete degraded, client requests count as
  /// dropped).
  int max_retries = 5;

  /// Timeout for attempt k (k=0 is the initial send).
  SimTime timeout_for_attempt(int attempt) const;
};

class Application {
 public:
  struct Options {
    /// Reporting window for container-runtime metric publication.
    SimTime metrics_interval = 50 * kMillisecond;

    /// Child-RPC retransmission policy. Disabled by default: the fault-free
    /// testbed never needs it, and the pre-fault event sequence must stay
    /// bit-identical.
    RpcRetryPolicy retry;
  };

  Application(Cluster& cluster, Network& network, MetricsPlane& metrics,
              AppSpec spec, const Deployment& deployment, Options options);

  /// Convenience overload with default Options.
  Application(Cluster& cluster, Network& network, MetricsPlane& metrics,
              AppSpec spec, const Deployment& deployment);

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  const AppSpec& spec() const { return spec_; }

  /// Container backing service index i.
  Container& service_container(int i) { return *services_[static_cast<std::size_t>(i)].container; }
  const Container& service_container(int i) const {
    return *services_[static_cast<std::size_t>(i)].container;
  }
  int service_count() const { return static_cast<int>(services_.size()); }

  ContainerId entry_container() const { return services_.front().container->id(); }
  NodeId entry_node() const { return services_.front().container->node(); }

  /// Starts publishing runtime metrics every metrics_interval. Call once
  /// after controllers are attached so their buses observe from t=0.
  void start_metric_publication();

  /// --- controller-facing runtime knobs ---

  /// Sets the upscale stamp for a container: while > 0, outgoing RPCs from
  /// it carry pkt.upscale = stamp (Escalator sets this on a queueBuildup
  /// violation; Table II row 2). Cleared by passing 0.
  void set_upscale_stamp(ContainerId container, int stamp);

  /// Lifetime profiling averages, used to derive expectedExecMetric /
  /// expectedTimeFromStart (paper §IV "SurgeGuard Parameters").
  const ContainerRuntimeMetrics& runtime_metrics(ContainerId container) const;

  /// Requests in flight inside the application (all services). Duplicate
  /// deliveries of a still-in-flight entry request (client retransmissions,
  /// packet-dup faults) are absorbed by the frontend's idempotency dedup
  /// and do not count; a duplicate arriving after completion re-executes.
  int in_flight() const { return in_flight_; }

  std::uint64_t requests_completed() const { return requests_completed_; }

  /// --- fault observability ---
  /// Counters are kept per node (each node's state is owned by one shard)
  /// and summed on read; reads are only meaningful between runs.

  /// Child RPCs retransmitted after a timeout.
  std::uint64_t rpc_retries() const {
    std::uint64_t total = 0;
    for (const NodeState& ns : nodes_) total += ns.rpc_retries;
    return total;
  }
  /// Child RPCs abandoned after exhausting retries (visit completed
  /// degraded so the request still drains).
  std::uint64_t rpc_failures() const {
    std::uint64_t total = 0;
    for (const NodeState& ns : nodes_) total += ns.rpc_failures;
    return total;
  }
  /// Responses with no pending call: duplicates, or originals that raced a
  /// retransmission. Benign under faults; a bug if nonzero without them.
  std::uint64_t stray_responses() const {
    std::uint64_t total = 0;
    for (const NodeState& ns : nodes_) total += ns.stray_responses;
    return total;
  }
  /// Entry requests absorbed by the frontend's idempotency dedup (a copy of
  /// a request whose original visit was still in flight).
  std::uint64_t duplicate_requests() const { return duplicate_requests_; }

  /// Per-edge pool (service, child index) — exposed for tests/inspection.
  const ConnectionPool& edge_pool(int service, int child_idx) const;

  /// Container-id adjacency of the task graph (for controllers).
  AppTopology topology() const;

 private:
  struct ServiceRuntime {
    const ServiceSpec* spec = nullptr;
    int index = 0;
    Container* container = nullptr;
    ContainerRuntimeMetrics metrics;
    int upscale_stamp = 0;
    std::vector<std::unique_ptr<ConnectionPool>> child_pools;
  };

  struct ReplyAddress {
    int container = kClientEndpoint;
    int node = kClientNode;
    std::uint64_t call_id = 0;
  };

  struct Visit {
    RequestId request_id = 0;
    int service = 0;
    TimePoint start_time;         // end-to-end job start (pkt.startTime)
    TimePoint arrive;
    Duration time_from_start;     // observed progress at ingress (eq. 5)
    Duration conn_wait;           // timeWaitingForFreeConn accumulator
    int arrived_upscale = 0;      // pkt.upscale on the incoming request
    ReplyAddress reply_to;
    std::size_t next_child = 0;   // sequential fan-out cursor
    int pending_children = 0;     // parallel fan-out join counter

    // --- trace context (sg::trace) ---
    bool traced = false;          // propagated from the incoming packet
    bool post_span_open = false;  // post-work exec segment pending in reply()
    TimePoint exec_begin;         // open exec segment start
    double exec_share0 = 0.0;     // container share integral at segment open
  };

  /// One in-flight child RPC awaiting its response (or a retransmission).
  struct PendingCall {
    std::uint64_t visit_key = 0;
    std::size_t child_idx = 0;
    int attempt = 0;               // 0 = initial send
    EventId timer = kInvalidEvent; // armed only when retry is enabled
  };

  /// Per-node partition of the request-processing state. Every visit and
  /// pending call is keyed with its owning node in the key's high bits, so
  /// any handler can find the right partition from the key alone — and under
  /// sharded execution each partition is only ever touched by the shard that
  /// owns the node (requests and responses are delivered on the destination
  /// node's shard).
  struct NodeState {
    std::unordered_map<std::uint64_t, Visit> visits;
    std::unordered_map<std::uint64_t, PendingCall> pending_calls;
    std::uint64_t next_visit_seq = 1;
    std::uint64_t next_call_seq = 1;
    std::uint64_t rpc_retries = 0;
    std::uint64_t rpc_failures = 0;
    std::uint64_t stray_responses = 0;
  };

  /// Node-tagged key: node id + 1 in the top 16 bits, per-node sequence
  /// below. Sequences are node-local, so key assignment is independent of
  /// the interleaving of other nodes' traffic (and hence of shard count).
  static std::uint64_t make_node_key(int node, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(node + 1) << 48) | seq;
  }
  static int node_of_key(std::uint64_t key) {
    return static_cast<int>(key >> 48) - 1;
  }
  NodeState& node_state_of_key(std::uint64_t key);

  ServiceRuntime& runtime_of_container(int container);
  void on_packet(const RpcPacket& pkt);
  void on_request(const RpcPacket& pkt);
  void on_response(const RpcPacket& pkt);
  void on_own_work_done(std::uint64_t visit_key);
  void begin_child(std::uint64_t visit_key, std::size_t child_idx);
  void send_child_rpc(std::uint64_t visit_key, std::size_t child_idx,
                      int attempt = 0);
  void on_call_timeout(std::uint64_t call_id);
  void on_child_reply(std::uint64_t visit_key, std::size_t child_idx);
  void finish_children(std::uint64_t visit_key);
  void reply(std::uint64_t visit_key);
  int outgoing_upscale(const ServiceRuntime& sr, const Visit& v) const;

  Cluster& cluster_;
  Network& network_;
  MetricsPlane& metrics_plane_;
  AppSpec spec_;
  Options options_;
  Rng rng_;
  // Per-service work-draw streams, forked from rng_ in service order. Each
  // service's draw sequence depends only on its own request order (which is
  // node-local), making the draws identical at any shard count.
  std::vector<Rng> service_rngs_;

  std::vector<ServiceRuntime> services_;
  std::unordered_map<int, int> service_by_container_;

  // One partition per node (indexed by node id); see NodeState.
  std::vector<NodeState> nodes_;
  // In-flight entry visits by client request id (frontend idempotency key).
  // Entry-node state: only the entry node's shard touches it.
  std::unordered_map<RequestId, std::uint64_t> entry_visit_by_request_;

  int in_flight_ = 0;
  std::uint64_t requests_completed_ = 0;
  std::uint64_t duplicate_requests_ = 0;
};

}  // namespace sg
