#include "app/workloads.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace sg {
namespace {

// Calibrated CPU-cost tiers (ns at one core at the reference frequency).
// "standard" services run ~0.65 utilization with 1 core at 2000 rps,
// "heavy" with 2 cores, and "light" leaf/storage services sit near 0.32 —
// the flat-sensitivity-curve containers of paper Fig. 6.
constexpr double kStd = 325'000.0;
constexpr double kHeavy = 650'000.0;
constexpr double kLight = 160'000.0;

ServiceSpec svc(std::string name, double work, std::vector<int> children = {},
                FanoutMode fanout = FanoutMode::kSequential) {
  ServiceSpec s;
  s.name = std::move(name);
  s.work_ns_mean = work;
  s.work_sigma = 0.15;
  s.children = std::move(children);
  s.fanout = fanout;
  return s;
}

/// HTTP frontend: light work, and its outgoing edges are not Thrift pools
/// (nginx worker connections are effectively unbounded), so the first
/// implicit queue forms one tier down, as in the paper's Fig. 14.
ServiceSpec http_frontend(std::string name, std::vector<int> children) {
  ServiceSpec s = svc(std::move(name), kLight, std::move(children));
  s.unpooled_children = true;
  return s;
}

}  // namespace

int WorkloadInfo::total_initial_cores() const {
  return std::accumulate(initial_cores.begin(), initial_cores.end(), 0);
}

WorkloadInfo make_chain() {
  WorkloadInfo w;
  w.family = "CHAIN";
  w.action = "chain";
  w.base_rate_rps = 10000.0;
  w.paper_depth = 5;
  w.paper_threadpool_size = 512;
  w.spec.name = "CHAIN";
  w.spec.threading = ThreadingModel::kFixedThreadPool;
  w.spec.rpc = RpcStyle::kThrift;
  // Five services, each doing one vector-accumulate-sized chunk of work.
  // 130us at 10k rps needs 1.3 cores -> 2 cores at 0.65 utilization.
  constexpr double kChainWork = 130'000.0;
  w.spec.services = {
      svc("chain-0", kChainWork, {1}), svc("chain-1", kChainWork, {2}),
      svc("chain-2", kChainWork, {3}), svc("chain-3", kChainWork, {4}),
      svc("chain-4", kChainWork),
  };
  w.initial_cores = {2, 2, 2, 2, 2};
  SG_ASSERT(w.spec.validate());
  SG_ASSERT(w.spec.depth() == 5);
  return w;
}

WorkloadInfo make_social_read_user_timeline() {
  WorkloadInfo w;
  w.family = "socialNetwork";
  w.action = "readUserTimeline";
  w.base_rate_rps = 2000.0;
  w.paper_depth = 5;
  w.paper_threadpool_size = 512;
  w.spec.name = "socialNetwork.readUserTimeline";
  w.spec.threading = ThreadingModel::kFixedThreadPool;
  w.spec.rpc = RpcStyle::kThrift;
  // Depth-5 storage chain (nginx -> user-timeline -> post-storage ->
  // memcached -> mongodb, the cache-miss path modeled inline) plus the
  // user-timeline-redis side call. Calibrated for the paper's Fig. 14
  // scenario: the entry tier (nginx) has headroom so surges pass through;
  // user-timeline has moderate CPU headroom but a bindable pool toward the
  // post-storage tier, which is the true bottleneck — so user-timeline
  // holds the implicit queue while post-storage-memcached/mongodb starve
  // under per-container controllers.
  w.spec.services = {
      /*0*/ http_frontend("nginx", {1}),
      /*1*/ svc("user-timeline-service", 450'000.0, {2, 3}),
      /*2*/ svc("user-timeline-redis", kLight),
      /*3*/ svc("post-storage-service", kHeavy, {4}),
      /*4*/ svc("post-storage-memcached", kStd, {5}),
      /*5*/ svc("post-storage-mongodb", kLight),
  };
  w.initial_cores = {1, 2, 1, 2, 1, 1};
  SG_ASSERT(w.spec.validate());
  SG_ASSERT(w.spec.depth() == 5);
  return w;
}

WorkloadInfo make_social_compose_post() {
  WorkloadInfo w;
  w.family = "socialNetwork";
  w.action = "composePost";
  w.base_rate_rps = 2000.0;
  w.paper_depth = 8;
  w.paper_threadpool_size = 512;
  w.spec.name = "socialNetwork.composePost";
  w.spec.threading = ThreadingModel::kFixedThreadPool;
  w.spec.rpc = RpcStyle::kThrift;
  // Depth-8 write path with side services (unique-id, media, url-shorten).
  // As with readUserTimeline, the entry tier has headroom so surges reach
  // the heavy compose/home-timeline tiers.
  w.spec.services = {
      /*0*/ http_frontend("nginx", {1}),
      /*1*/ svc("compose-post-service", kHeavy, {2, 3, 4}),
      /*2*/ svc("unique-id-service", kLight),
      /*3*/ svc("media-service", kLight),
      /*4*/ svc("text-service", kStd, {5, 6}),
      /*5*/ svc("url-shorten-service", kLight),
      /*6*/ svc("user-mention-service", kStd, {7}),
      /*7*/ svc("user-service", kStd, {8}),
      /*8*/ svc("social-graph-service", kStd, {9}),
      /*9*/ svc("home-timeline-service", kHeavy, {10}),
      /*10*/ svc("post-storage-service", kStd),
  };
  // 2000 rps: kStd needs 0.65 cores (1), kHeavy 1.3 (2), kLight 0.32 (1).
  w.initial_cores = {1, 2, 1, 1, 1, 1, 1, 1, 1, 2, 1};
  SG_ASSERT(w.spec.validate());
  SG_ASSERT(w.spec.depth() == 8);
  return w;
}

WorkloadInfo make_hotel_search() {
  WorkloadInfo w;
  w.family = "hotelReservation";
  w.action = "searchHotel";
  w.base_rate_rps = 2000.0;
  w.paper_depth = 11;
  w.paper_threadpool_size = -1;  // connection-per-request
  w.spec.name = "hotelReservation.searchHotel";
  w.spec.threading = ThreadingModel::kConnectionPerRequest;
  w.spec.rpc = RpcStyle::kGrpc;
  // Depth-11 search path; search fans out to geo and rate in parallel
  // (DeathStarBench topology), then the rate path continues through the
  // reservation/profile/storage tiers.
  w.spec.services = {
      /*0*/ svc("frontend", kStd, {1}),
      /*1*/ svc("search-service", kHeavy, {2, 3}, FanoutMode::kParallel),
      /*2*/ svc("geo-service", kStd),
      /*3*/ svc("rate-service", kStd, {4}),
      /*4*/ svc("reservation-service", kStd, {5}),
      /*5*/ svc("availability-service", kStd, {6}),
      /*6*/ svc("hotel-service", kStd, {7}),
      /*7*/ svc("profile-service", kHeavy, {8}),
      /*8*/ svc("review-service", kStd, {9}),
      /*9*/ svc("review-memcached", kLight, {10}),
      /*10*/ svc("review-mongodb", kLight, {11}),
      /*11*/ svc("storage-service", kLight),
  };
  w.initial_cores = {1, 2, 1, 1, 1, 1, 1, 2, 1, 1, 1, 1};
  SG_ASSERT(w.spec.validate());
  SG_ASSERT(w.spec.depth() == 11);
  return w;
}

WorkloadInfo make_hotel_recommend() {
  WorkloadInfo w;
  w.family = "hotelReservation";
  w.action = "recommendHotel";
  w.base_rate_rps = 2000.0;
  w.paper_depth = 5;
  w.paper_threadpool_size = -1;
  w.spec.name = "hotelReservation.recommendHotel";
  w.spec.threading = ThreadingModel::kConnectionPerRequest;
  w.spec.rpc = RpcStyle::kGrpc;
  w.spec.services = {
      /*0*/ svc("frontend", kStd, {1}),
      /*1*/ svc("recommendation-service", kHeavy, {2}),
      /*2*/ svc("profile-service", kHeavy, {3}),
      /*3*/ svc("profile-memcached", kStd, {4}),
      /*4*/ svc("profile-mongodb", kLight),
  };
  w.initial_cores = {1, 2, 2, 1, 1};
  SG_ASSERT(w.spec.validate());
  SG_ASSERT(w.spec.depth() == 5);
  return w;
}

std::vector<WorkloadInfo> workload_catalog() {
  return {make_chain(), make_social_read_user_timeline(),
          make_social_compose_post(), make_hotel_search(),
          make_hotel_recommend()};
}

WorkloadInfo workload_by_name(const std::string& name) {
  for (WorkloadInfo& w : workload_catalog()) {
    if (name == w.action || name == w.family + "." + w.action ||
        name == w.family) {
      return w;
    }
  }
  SG_ASSERT_MSG(false, ("unknown workload: " + name).c_str());
  __builtin_unreachable();
}

}  // namespace sg
