#include "app/task_graph.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace sg {

const char* to_string(ThreadingModel m) {
  switch (m) {
    case ThreadingModel::kConnectionPerRequest: return "connection-per-request";
    case ThreadingModel::kFixedThreadPool: return "fixed-size threadpool";
  }
  return "?";
}

const char* to_string(RpcStyle s) {
  switch (s) {
    case RpcStyle::kThrift: return "Thrift";
    case RpcStyle::kGrpc: return "gRPC";
  }
  return "?";
}

bool AppSpec::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (services.empty()) return fail("no services");
  const int n = static_cast<int>(services.size());
  for (int i = 0; i < n; ++i) {
    const ServiceSpec& s = services[static_cast<std::size_t>(i)];
    if (s.name.empty()) return fail("service without a name");
    if (s.work_ns_mean < 0 || s.post_work_ns_mean < 0)
      return fail(s.name + ": negative work");
    for (int c : s.children) {
      if (c < 0 || c >= n) return fail(s.name + ": child index out of range");
      if (c == i) return fail(s.name + ": self edge");
    }
  }
  // Cycle check via DFS colors.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(static_cast<std::size_t>(n), Color::kWhite);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int u) {
    color[static_cast<std::size_t>(u)] = Color::kGray;
    for (int v : services[static_cast<std::size_t>(u)].children) {
      if (color[static_cast<std::size_t>(v)] == Color::kGray) {
        cyclic = true;
        return;
      }
      if (color[static_cast<std::size_t>(v)] == Color::kWhite) dfs(v);
      if (cyclic) return;
    }
    color[static_cast<std::size_t>(u)] = Color::kBlack;
  };
  dfs(0);
  if (cyclic) return fail("task graph has a cycle");
  return true;
}

int AppSpec::depth() const {
  std::function<int(int)> go = [&](int u) -> int {
    int best = 0;
    for (int v : services[static_cast<std::size_t>(u)].children)
      best = std::max(best, go(v));
    return best + 1;
  };
  return services.empty() ? 0 : go(0);
}

int AppSpec::edge_count() const {
  int edges = 0;
  for (const ServiceSpec& s : services)
    edges += static_cast<int>(s.children.size());
  return edges;
}

double AppSpec::estimate_subtree_latency_ns(int service,
                                            double net_hop_ns) const {
  const ServiceSpec& s = services[static_cast<std::size_t>(service)];
  double child_total = 0.0;
  double child_max = 0.0;
  for (int c : s.children) {
    const double rtt =
        2.0 * net_hop_ns + estimate_subtree_latency_ns(c, net_hop_ns);
    child_total += rtt;
    child_max = std::max(child_max, rtt);
  }
  const double child_time =
      s.fanout == FanoutMode::kParallel ? child_max : child_total;
  return s.work_ns_mean + child_time + s.post_work_ns_mean;
}

double AppSpec::estimate_e2e_latency_ns(double net_hop_ns) const {
  if (services.empty()) return 0.0;
  return 2.0 * net_hop_ns + estimate_subtree_latency_ns(0, net_hop_ns);
}

std::vector<std::vector<int>> AppSpec::autosize_pools(double rate_rps,
                                                      double net_hop_ns,
                                                      double headroom) {
  pool_sizes.assign(services.size(), {});
  for (std::size_t i = 0; i < services.size(); ++i) {
    const ServiceSpec& s = services[i];
    pool_sizes[i].reserve(s.children.size());
    for (int c : s.children) {
      if (threading == ThreadingModel::kConnectionPerRequest ||
          s.unpooled_children) {
        pool_sizes[i].push_back(-1);  // unbounded
        continue;
      }
      // Little's law (eq. 1): in-flight = rate * downstream RTT. Every
      // end-to-end request traverses each edge once in these graphs, so the
      // edge rate equals the app request rate.
      const double rtt_ns =
          2.0 * net_hop_ns + estimate_subtree_latency_ns(c, net_hop_ns);
      const double in_flight = rate_rps * rtt_ns / 1e9;
      const int size = std::max(2, static_cast<int>(std::ceil(in_flight * headroom)));
      pool_sizes[i].push_back(size);
    }
  }
  return pool_sizes;
}

}  // namespace sg
