#include "app/threadpool.hpp"

#include "common/assert.hpp"

namespace sg {

void ConnectionPool::acquire(std::function<void()> granted) {
  ++total_acquisitions_;
  if (unbounded() || free_ > 0) {
    if (!unbounded()) --free_;
    ++in_use_;
    granted();
    return;
  }
  ++total_waits_;
  waiters_.push_back(std::move(granted));
}

void ConnectionPool::release() {
  SG_ASSERT_MSG(in_use_ > 0, "release without a held connection");
  --in_use_;
  if (unbounded()) return;
  if (!waiters_.empty()) {
    auto granted = std::move(waiters_.front());
    waiters_.pop_front();
    ++in_use_;  // hand-off: the connection never returns to the free pool
    granted();
    return;
  }
  ++free_;
  SG_ASSERT(free_ <= capacity_);
}

}  // namespace sg
