#include "app/application.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/shard_context.hpp"
#include "trace/trace.hpp"

namespace sg {

SimTime RpcRetryPolicy::timeout_for_attempt(int attempt) const {
  double t = static_cast<double>(timeout);
  for (int i = 0; i < attempt; ++i) t *= backoff;
  return static_cast<SimTime>(t);
}

std::vector<int> AppTopology::downstream_on_node(int container, int node,
                                                 const Cluster& cluster) const {
  std::vector<int> out;
  std::vector<int> frontier{container};
  std::vector<int> seen;
  while (!frontier.empty()) {
    const int u = frontier.back();
    frontier.pop_back();
    const auto it = downstream.find(u);
    if (it == downstream.end()) continue;
    for (int v : it->second) {
      if (std::find(seen.begin(), seen.end(), v) != seen.end()) continue;
      seen.push_back(v);
      frontier.push_back(v);
      if (cluster.container(v).node() == node) out.push_back(v);
    }
  }
  return out;
}

Deployment Deployment::single_node(const AppSpec& spec, NodeId node,
                                   int cores_per_service) {
  Deployment d;
  d.node_of_service.assign(spec.services.size(), node);
  d.initial_cores.assign(spec.services.size(), cores_per_service);
  return d;
}

Deployment Deployment::round_robin(const AppSpec& spec, int node_count,
                                   int cores_per_service) {
  Deployment d;
  d.node_of_service.resize(spec.services.size());
  for (std::size_t i = 0; i < spec.services.size(); ++i)
    d.node_of_service[i] = static_cast<NodeId>(i % static_cast<std::size_t>(node_count));
  d.initial_cores.assign(spec.services.size(), cores_per_service);
  return d;
}

Application::Application(Cluster& cluster, Network& network,
                         MetricsPlane& metrics, AppSpec spec,
                         const Deployment& deployment)
    : Application(cluster, network, metrics, std::move(spec), deployment,
                  Options()) {}

Application::Application(Cluster& cluster, Network& network,
                         MetricsPlane& metrics, AppSpec spec,
                         const Deployment& deployment, Options options)
    : cluster_(cluster),
      network_(network),
      metrics_plane_(metrics),
      spec_(std::move(spec)),
      options_(options),
      rng_(cluster.sim().rng().fork()) {
  std::string error;
  SG_ASSERT_MSG(spec_.validate(&error), error.c_str());
  SG_ASSERT(deployment.node_of_service.size() == spec_.services.size());
  SG_ASSERT(deployment.initial_cores.size() == spec_.services.size());

  NodeId max_node = 0;
  for (NodeId n : deployment.node_of_service) max_node = std::max(max_node, n);
  nodes_.resize(static_cast<std::size_t>(max_node) + 1);

  services_.reserve(spec_.services.size());
  service_rngs_.reserve(spec_.services.size());
  for (std::size_t i = 0; i < spec_.services.size(); ++i) {
    const ServiceSpec& ss = spec_.services[i];
    Container& c = cluster_.add_container(
        spec_.name + "/" + ss.name, deployment.node_of_service[i],
        deployment.initial_cores[i]);
    ServiceRuntime sr;
    sr.spec = &spec_.services[i];
    sr.index = static_cast<int>(i);
    sr.container = &c;
    sr.metrics = ContainerRuntimeMetrics(c.id());
    for (std::size_t k = 0; k < ss.children.size(); ++k) {
      int cap;
      if (!spec_.pool_sizes.empty()) {
        cap = spec_.pool_sizes[i][k];
      } else if (spec_.threading == ThreadingModel::kFixedThreadPool) {
        cap = spec_.threadpool_size;
      } else {
        cap = -1;
      }
      sr.child_pools.push_back(std::make_unique<ConnectionPool>(cap));
    }
    services_.push_back(std::move(sr));
    service_rngs_.push_back(rng_.fork());
    service_by_container_.emplace(c.id(), static_cast<int>(i));
    network_.register_receiver(c.id(),
                               [this](const RpcPacket& pkt) { on_packet(pkt); });
  }
}

void Application::start_metric_publication() {
  for (ServiceRuntime& sr : services_) {
    ServiceRuntime* srp = &sr;
    // Each service's publication chain lives on the shard owning its node,
    // where both the metrics it flushes and the bus it publishes to live.
    ShardScope scope(cluster_.sim().shard_of_node(sr.container->node()));
    cluster_.sim().schedule_periodic(
        options_.metrics_interval, options_.metrics_interval, [this, srp]() {
          const MetricsSnapshot snap =
              srp->metrics.flush(cluster_.sim().now());
          metrics_plane_.node_bus(srp->container->node()).publish(snap);
          return true;  // publish for the lifetime of the simulation
        });
  }
}

void Application::set_upscale_stamp(ContainerId container, int stamp) {
  runtime_of_container(container).upscale_stamp = std::max(0, stamp);
}

const ContainerRuntimeMetrics& Application::runtime_metrics(
    ContainerId container) const {
  const auto it = service_by_container_.find(container);
  SG_ASSERT_MSG(it != service_by_container_.end(), "unknown container");
  return services_[static_cast<std::size_t>(it->second)].metrics;
}

const ConnectionPool& Application::edge_pool(int service, int child_idx) const {
  return *services_[static_cast<std::size_t>(service)]
              .child_pools[static_cast<std::size_t>(child_idx)];
}

AppTopology Application::topology() const {
  AppTopology topo;
  topo.entry = services_.front().container->id();
  for (const ServiceRuntime& sr : services_) {
    std::vector<int> kids;
    kids.reserve(sr.spec->children.size());
    for (int child : sr.spec->children)
      kids.push_back(services_[static_cast<std::size_t>(child)].container->id());
    topo.downstream.emplace(sr.container->id(), std::move(kids));
  }
  return topo;
}

Application::NodeState& Application::node_state_of_key(std::uint64_t key) {
  const int node = node_of_key(key);
  SG_ASSERT_MSG(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(),
                "key with unknown node tag");
  return nodes_[static_cast<std::size_t>(node)];
}

Application::ServiceRuntime& Application::runtime_of_container(int container) {
  const auto it = service_by_container_.find(container);
  SG_ASSERT_MSG(it != service_by_container_.end(), "unknown container");
  return services_[static_cast<std::size_t>(it->second)];
}

int Application::outgoing_upscale(const ServiceRuntime& sr,
                                  const Visit& v) const {
  // Fig. 8: a hint set here (upscale_stamp) or arriving from upstream
  // (arrived_upscale, decremented per hop) is forwarded downstream.
  return std::max({sr.upscale_stamp, v.arrived_upscale - 1, 0});
}

void Application::on_packet(const RpcPacket& pkt) {
  if (pkt.is_response) {
    on_response(pkt);
  } else {
    on_request(pkt);
  }
}

void Application::on_request(const RpcPacket& pkt) {
  ServiceRuntime& sr = runtime_of_container(pkt.dst_container);
  const SimTime now = cluster_.sim().now();

  if (sr.index == 0) {
    // Idempotency-key dedup at the frontend: a client retransmission (or a
    // dup-faulted delivery) of a request that is still being processed must
    // not re-execute the whole task graph — spurious retransmissions of
    // slow-but-alive requests would otherwise amplify a short fault window
    // into a metastable retry storm. The in-flight visit's eventual
    // response completes the request; only requests the frontend has
    // already forgotten (genuinely lost, or response lost) re-execute.
    const auto live = entry_visit_by_request_.find(pkt.request_id);
    if (live != entry_visit_by_request_.end()) {
      ++duplicate_requests_;
      return;
    }
  }

  NodeState& ns = nodes_[static_cast<std::size_t>(sr.container->node())];
  const std::uint64_t key =
      make_node_key(sr.container->node(), ns.next_visit_seq++);
  Visit v;
  v.request_id = pkt.request_id;
  v.service = sr.index;
  v.start_time = pkt.start_time;
  v.arrive = TimePoint::at(now);
  v.time_from_start = v.arrive - pkt.start_time;
  v.arrived_upscale = pkt.upscale;
  v.reply_to = ReplyAddress{pkt.src_container, pkt.src_node, pkt.call_id};
  v.traced = pkt.traced && cluster_.sim().trace_sink() != nullptr;
  if (v.traced) {
    // Open the own-work exec segment. sync() brings the share integral up
    // to `now` so the delta read at completion is exact (state after sync()
    // is bit-identical to what submit() below would produce anyway).
    sr.container->sync();
    v.exec_begin = TimePoint::at(now);
    v.exec_share0 = sr.container->share_integral_ns();
  }
  ns.visits.emplace(key, v);
  if (sr.index == 0) {
    ++in_flight_;
    entry_visit_by_request_.emplace(pkt.request_id, key);
  }

  const double work =
      sr.spec->work_ns_mean <= 0.0
          ? 0.0
          : (sr.spec->work_sigma > 0.0
                 ? service_rngs_[static_cast<std::size_t>(sr.index)]
                       .lognormal_mean(sr.spec->work_ns_mean,
                                       sr.spec->work_sigma)
                 : sr.spec->work_ns_mean);
  sr.container->submit(work, [this, key]() { on_own_work_done(key); });
}

void Application::on_own_work_done(std::uint64_t key) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  Visit& v = it->second;
  ServiceRuntime& sr = services_[static_cast<std::size_t>(v.service)];
  const ServiceSpec& spec = *sr.spec;
  if (v.traced) {
    if (TraceSink* trace = cluster_.sim().trace_sink()) {
      TraceSpan span;
      span.request_id = v.request_id;
      span.kind = SpanKind::kExec;
      span.container = sr.container->id();
      span.begin = v.exec_begin;
      span.end = cluster_.sim().now_point();
      // We run inside the container's completion handler: the share
      // integral is already advanced to now, so the delta is exact.
      span.cpu_served_ns = sr.container->share_integral_ns() - v.exec_share0;
      trace->add_span(span);
    }
  }
  if (spec.children.empty()) {
    finish_children(key);
    return;
  }
  if (spec.fanout == FanoutMode::kParallel) {
    v.pending_children = static_cast<int>(spec.children.size());
    // begin_child may resume synchronously and mutate visits_, so iterate
    // over a stable count, re-finding nothing (key-based API).
    const std::size_t n = spec.children.size();
    for (std::size_t i = 0; i < n; ++i) begin_child(key, i);
  } else {
    v.next_child = 0;
    begin_child(key, 0);
  }
}

void Application::begin_child(std::uint64_t key, std::size_t child_idx) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  ServiceRuntime& sr = services_[static_cast<std::size_t>(it->second.service)];
  ConnectionPool& pool = *sr.child_pools[child_idx];
  const TimePoint t0 = cluster_.sim().now_point();
  // The acquire may complete now (free connection) or later (implicit
  // queue). The wait, if any, is the hidden-dependency time (Fig. 5b).
  pool.acquire([this, key, child_idx, t0]() {
    auto& vmap = node_state_of_key(key).visits;
    auto vit = vmap.find(key);
    SG_ASSERT(vit != vmap.end());
    Visit& v = vit->second;
    const Duration wait = cluster_.sim().now_point() - t0;
    v.conn_wait += wait;
    if (v.traced && wait > Duration::zero()) {
      if (TraceSink* trace = cluster_.sim().trace_sink()) {
        TraceSpan span;
        span.request_id = v.request_id;
        span.kind = SpanKind::kConnWait;
        span.container =
            services_[static_cast<std::size_t>(v.service)].container->id();
        span.begin = t0;
        span.end = t0 + wait;
        trace->add_span(span);
      }
    }
    send_child_rpc(key, child_idx);
  });
}

void Application::send_child_rpc(std::uint64_t key, std::size_t child_idx,
                                 int attempt) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  Visit& v = it->second;
  ServiceRuntime& sr = services_[static_cast<std::size_t>(v.service)];
  const int child_service = sr.spec->children[child_idx];
  Container& child_container =
      *services_[static_cast<std::size_t>(child_service)].container;

  RpcPacket pkt;
  pkt.request_id = v.request_id;
  // Call ids carry the caller's node tag, so the response (delivered back
  // on the caller's node) finds the right pending-call partition.
  pkt.call_id = make_node_key(sr.container->node(), ns.next_call_seq++);
  pkt.src_container = sr.container->id();
  pkt.src_node = sr.container->node();
  pkt.dst_container = child_container.id();
  pkt.dst_node = child_container.node();
  pkt.is_response = false;
  pkt.start_time = v.start_time;   // propagated unchanged (Fig. 8)
  pkt.upscale = outgoing_upscale(sr, v);
  pkt.traced = v.traced;           // trace context propagates with the RPC

  PendingCall pc;
  pc.visit_key = key;
  pc.child_idx = child_idx;
  pc.attempt = attempt;
  if (options_.retry.enabled) {
    pc.timer = cluster_.sim().schedule_after(
        options_.retry.timeout_for_attempt(attempt),
        [this, call_id = pkt.call_id]() { on_call_timeout(call_id); });
  }
  ns.pending_calls.emplace(pkt.call_id, pc);
  network_.send(pkt.src_node, pkt);
}

void Application::on_call_timeout(std::uint64_t call_id) {
  NodeState& ns = node_state_of_key(call_id);
  const auto it = ns.pending_calls.find(call_id);
  if (it == ns.pending_calls.end()) return;  // response won the race
  const PendingCall pc = it->second;
  // The held connection stays held across retransmissions: the retry is the
  // same logical call, re-sent on the same connection.
  ns.pending_calls.erase(it);
  if (pc.attempt < options_.retry.max_retries) {
    ++ns.rpc_retries;
    send_child_rpc(pc.visit_key, pc.child_idx, pc.attempt + 1);
    return;
  }
  // Retries exhausted: abandon the call but complete the visit degraded, so
  // the request conserves (it drains as completed, never strands).
  ++ns.rpc_failures;
  on_child_reply(pc.visit_key, pc.child_idx);
}

void Application::on_response(const RpcPacket& pkt) {
  NodeState& ns = node_state_of_key(pkt.call_id);
  const auto it = ns.pending_calls.find(pkt.call_id);
  if (it == ns.pending_calls.end()) {
    // Duplicate response, or an original that lost the race against its own
    // retransmission. At-least-once delivery makes these benign under
    // faults; count them so fault-free tests can assert zero.
    ++ns.stray_responses;
    return;
  }
  const PendingCall pc = it->second;
  if (pc.timer != kInvalidEvent) cluster_.sim().cancel(pc.timer);
  ns.pending_calls.erase(it);
  on_child_reply(pc.visit_key, pc.child_idx);
}

void Application::on_child_reply(std::uint64_t key, std::size_t child_idx) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  Visit& v = it->second;
  ServiceRuntime& sr = services_[static_cast<std::size_t>(v.service)];
  sr.child_pools[child_idx]->release();

  if (sr.spec->fanout == FanoutMode::kParallel) {
    if (--v.pending_children == 0) finish_children(key);
    return;
  }
  v.next_child = child_idx + 1;
  if (v.next_child < sr.spec->children.size()) {
    begin_child(key, v.next_child);
  } else {
    finish_children(key);
  }
}

void Application::finish_children(std::uint64_t key) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  Visit& v = it->second;
  ServiceRuntime& sr = services_[static_cast<std::size_t>(v.service)];
  const double post = sr.spec->post_work_ns_mean;
  if (post > 0.0) {
    if (v.traced) {
      // Open the post-work exec segment; reply() closes it.
      sr.container->sync();
      v.post_span_open = true;
      v.exec_begin = cluster_.sim().now_point();
      v.exec_share0 = sr.container->share_integral_ns();
    }
    const double work =
        sr.spec->work_sigma > 0.0
            ? service_rngs_[static_cast<std::size_t>(sr.index)].lognormal_mean(
                  post, sr.spec->work_sigma)
            : post;
    sr.container->submit(work, [this, key]() { reply(key); });
  } else {
    reply(key);
  }
}

void Application::reply(std::uint64_t key) {
  NodeState& ns = node_state_of_key(key);
  auto it = ns.visits.find(key);
  SG_ASSERT(it != ns.visits.end());
  Visit& v = it->second;
  ServiceRuntime& sr = services_[static_cast<std::size_t>(v.service)];
  const SimTime now = cluster_.sim().now();

  VisitRecord rec;
  rec.container = sr.container->id();
  rec.arrive = v.arrive;
  rec.depart = TimePoint::at(now);
  rec.conn_wait = v.conn_wait;
  rec.time_from_start = v.time_from_start;
  rec.upscale_hint = v.arrived_upscale > 0;
  sr.metrics.record_visit(rec);

  if (v.traced) {
    if (TraceSink* trace = cluster_.sim().trace_sink()) {
      if (v.post_span_open) {
        sr.container->sync();
        TraceSpan post;
        post.request_id = v.request_id;
        post.kind = SpanKind::kExec;
        post.container = sr.container->id();
        post.begin = v.exec_begin;
        post.end = TimePoint::at(now);
        post.cpu_served_ns =
            sr.container->share_integral_ns() - v.exec_share0;
        trace->add_span(post);
      }
      TraceSpan visit;
      visit.request_id = v.request_id;
      visit.kind = SpanKind::kVisit;
      visit.container = sr.container->id();
      visit.begin = v.arrive;
      visit.end = TimePoint::at(now);
      visit.boost_active_ns = sr.container->freq_timeline().time_above(
          v.arrive.ns(), now, static_cast<double>(sr.container->dvfs().min_mhz));
      trace->add_span(visit);
    }
  }

  RpcPacket pkt;
  pkt.request_id = v.request_id;
  pkt.call_id = v.reply_to.call_id;
  pkt.src_container = sr.container->id();
  pkt.src_node = sr.container->node();
  pkt.dst_container = v.reply_to.container;
  pkt.dst_node = v.reply_to.node;
  pkt.is_response = true;
  pkt.start_time = v.start_time;
  pkt.upscale = 0;
  pkt.traced = v.traced;

  if (sr.index == 0) {
    --in_flight_;
    ++requests_completed_;
    entry_visit_by_request_.erase(v.request_id);
  }
  ns.visits.erase(it);
  network_.send(pkt.src_node, pkt);
}

}  // namespace sg
