// Application task graphs (paper §II-A, Fig. 2).
//
// An application is a set of services plus the RPC flow between them; an
// incoming user request enters at service 0 and triggers RPCs along the
// graph. The catalog in workloads.{hpp,cpp} instantiates the paper's
// Table III entries on top of these types.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace sg {

/// How a service's RPC framework maintains inter-service connections
/// (paper §II-A "Microservice Threading or Connection Models").
enum class ThreadingModel {
  /// New connection/thread per RPC: downstream concurrency is unbounded and
  /// a load surge propagates to every downstream service immediately.
  kConnectionPerRequest,
  /// Fixed-size pool of opened connections per edge: when the pool is
  /// exhausted, requests queue *implicitly* at the upstream service waiting
  /// for a free connection — the hidden dependency of Fig. 5(b).
  kFixedThreadPool,
};

/// RPC framework flavor (descriptive; Table III lists Thrift vs gRPC).
enum class RpcStyle { kThrift, kGrpc };

const char* to_string(ThreadingModel m);
const char* to_string(RpcStyle s);

/// How a service issues RPCs to its children.
enum class FanoutMode {
  kSequential,  // call children one after another (each holds one conn)
  kParallel,    // issue all child RPCs concurrently, join before replying
};

struct ServiceSpec {
  std::string name;

  /// Mean CPU work per request before calling children, in ns at one core
  /// at the DVFS reference frequency.
  double work_ns_mean = 200'000.0;

  /// Log-normal sigma of the work distribution (0 = deterministic).
  double work_sigma = 0.25;

  /// Optional CPU work after all children replied (merge/serialize phase).
  double post_work_ns_mean = 0.0;

  /// Indices (into AppSpec::services) of downstream services.
  std::vector<int> children;

  FanoutMode fanout = FanoutMode::kSequential;

  /// Minimum cores a controller may leave this service (floor for revokes).
  int min_cores = 1;

  /// True for services whose outgoing RPCs are NOT pooled even in a
  /// fixed-threadpool application — e.g. an HTTP frontend (nginx) whose
  /// worker-connection pool is effectively unbounded relative to the Thrift
  /// pools deeper in the graph. Such edges never produce conn-wait, so the
  /// first implicit queue forms at the first *pooled* tier, as in the
  /// paper's Fig. 14 (user-timeline-service).
  bool unpooled_children = false;
};

struct AppSpec {
  std::string name;

  /// services[0] is the entry point receiving client requests.
  std::vector<ServiceSpec> services;

  ThreadingModel threading = ThreadingModel::kFixedThreadPool;
  RpcStyle rpc = RpcStyle::kThrift;

  /// Per-edge connection-pool size for kFixedThreadPool. The paper's
  /// deployments use 512 (Table III) at testbed request rates; the
  /// simulator provisions pools with Little's law (eq. 1) via
  /// autosize_pools() so pool pressure is rate-appropriate.
  int threadpool_size = 512;

  /// Validates the graph: entry exists, children in range, acyclic
  /// (returns false and fills `error` otherwise).
  bool validate(std::string* error = nullptr) const;

  /// Longest service chain starting at the entry (Table III "Task-graph
  /// Depth" counts services, so a 5-service chain has depth 5).
  int depth() const;

  /// Total number of RPC edges.
  int edge_count() const;

  /// Estimated end-to-end latency at zero load: CPU works plus two network
  /// hops per edge (used for pool autosizing and sanity checks).
  double estimate_e2e_latency_ns(double net_hop_ns) const;

  /// Estimated zero-load subtree latency of one service (own work +
  /// children round-trips).
  double estimate_subtree_latency_ns(int service, double net_hop_ns) const;

  /// Provisions per-edge pools with Little's law (paper eq. 1):
  ///   ThPoolSize = DesiredReqRate * DownstreamLatency
  /// at `rate_rps` with multiplicative `headroom`. No-op for
  /// connection-per-request apps. Returns the chosen size per edge indexed
  /// as [service][child_index].
  /// The default headroom covers the latency inflation between the
  /// zero-load RTT estimate and the loaded operating point (the paper sizes
  /// pools for the deployed request rate; pools must NOT bind at the base
  /// rate, only under surges). With the wrk2-style paced client, loaded RTT
  /// at the base operating point stays within ~1.1x of the zero-load
  /// estimate. The 2.2x default is chosen so that (a) a mitigated 1.75x
  /// surge fits through every pool (1.75 x 1.15 < 2.2 — pools are not the
  /// throughput ceiling once a controller has fixed the bottleneck), while
  /// (b) pools DO bind while a downstream bottleneck is unmitigated and its
  /// RTT is inflated severalfold — which is exactly when the paper's
  /// implicit-queue signal appears.
  std::vector<std::vector<int>> autosize_pools(double rate_rps,
                                               double net_hop_ns,
                                               double headroom = 2.2);

  /// Per-edge pool sizes chosen by autosize_pools (empty until called; the
  /// Application falls back to `threadpool_size` when empty).
  std::vector<std::vector<int>> pool_sizes;
};

}  // namespace sg
