// Fig. 10: managing short surges with FirstResponder.
//
// CHAIN under 100us and 2ms surges whose instantaneous rate is 20x the base
// rate, comparing Escalator alone vs the full SurgeGuard
// (Escalator + FirstResponder). The paper: FirstResponder cuts the
// violation volume of such micro-surges by ~98% (100us) and ~88% (2ms), and
// its relative benefit shrinks as surges lengthen (Escalator's averaged
// metrics eventually see long surges on their own).
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Fig. 10 - short surges: Escalator vs Escalator+FirstResponder");

  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);

  auto csv = open_csv(args, "fig10_short_surges");
  if (csv) {
    csv->cell("surge_len_us").cell("controller").cell("vv_ms_s")
        .cell("p98_ms").cell("max_ms").cell("fr_boosts");
    csv->end_row();
  }

  TablePrinter table({"surge len", "controller", "VV (ms*s)", "p98 (ms)",
                      "max latency (ms)", "FR boosts", "VV reduction"});
  for (SimTime surge_len : {100 * kMicrosecond, 2 * kMillisecond}) {
    double vv[2] = {0, 0};
    int idx = 0;
    for (ControllerKind kind :
         {ControllerKind::kEscalator, ControllerKind::kSurgeGuard}) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = kind;
      // 20x instantaneous rate, one micro-surge per second.
      cfg.pattern_override = SpikePattern::surges(
          w.base_rate_rps, 20.0, surge_len, 1 * kSecond, 3 * kSecond);
      cfg.warmup = 2 * kSecond;
      cfg.duration = args.quick ? 6 * kSecond : 15 * kSecond;
      cfg.vv_window = 1 * kMillisecond;  // micro-surge resolution
      cfg.seed = args.seed;

      RepStats stats;
      ExperimentResult one;  // for FR counters / latency series
      {
        ExperimentConfig c2 = cfg;
        one = run_experiment(c2, profile);
        stats = run_replicated(cfg, profile, args.sweep());
      }
      vv[idx++] = stats.vv;
      table.add_row({format_time(surge_len), to_string(kind),
                     fmt_double(stats.vv, 3), fmt_double(stats.p98, 2),
                     fmt_double(to_millis(one.load.max_latency), 2),
                     std::to_string(one.fr_boosts),
                     idx == 2 && vv[0] > 0
                         ? fmt_double(100.0 * (1.0 - vv[1] / vv[0]), 1) + "%"
                         : "-"});
      if (csv) {
        csv->cell(static_cast<long long>(surge_len / kMicrosecond))
            .cell(to_string(kind)).cell(stats.vv).cell(stats.p98)
            .cell(to_millis(one.load.max_latency))
            .cell(static_cast<long long>(one.fr_boosts));
        csv->end_row();
      }
    }
  }
  table.print();
  std::printf(
      "\nPaper shape: Escalator alone cannot see surges much shorter than\n"
      "its averaging window; FirstResponder's per-packet slack detection\n"
      "boosts frequency within microseconds, cutting VV ~98%% at 100us and\n"
      "~88%% at 2ms — a benefit that shrinks as surges lengthen.\n");
  return 0;
}
