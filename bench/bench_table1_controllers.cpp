// Table I: comparison of SurgeGuard with existing controllers —
// dependence-awareness, distribution, and update interval. The paper's
// table is qualitative except for the update intervals; this bench prints
// the table and then MEASURES the effective detection-to-reaction latency
// of each implemented controller on an injected surge.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

namespace {

// Measures time from surge start until the controller's first resource
// action (core grant or frequency change) on any container.
SimTime measure_reaction(ControllerKind kind, const ProfileResult& profile,
                         const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = kind;
  cfg.warmup = 3 * kSecond;
  cfg.duration = 6 * kSecond;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 2 * kSecond;
  cfg.first_surge_offset = 1 * kSecond;
  cfg.record_alloc_timelines = true;
  cfg.trace_sample_interval = 100 * kMicrosecond;
  cfg.seed = args.seed;
  const ExperimentResult r = run_experiment(cfg, profile);

  const SimTime surge_start = cfg.warmup + cfg.first_surge_offset;
  SimTime first_action = kTimeInfinity;
  for (const ContainerTrace& trace : r.alloc_traces) {
    auto scan = [&](const std::vector<StepTimeline::Point>& pts) {
      if (pts.empty()) return;
      const double initial = pts.front().value;
      for (const auto& p : pts) {
        if (p.time > surge_start && p.value != initial) {
          first_action = std::min(first_action, p.time - surge_start);
          return;
        }
      }
    };
    scan(trace.cores);
    scan(trace.frequency);
  }
  return first_action;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Table I - controller comparison");

  TablePrinter paper({"Controller Type", "Controller", "Dependence Aware?",
                      "Distributed?", "Update Interval (paper)"});
  paper.add_row({"ML", "Sinan/Sage", "Yes", "No", ">1s (not reproduced: no trained model)"});
  paper.add_row({"Heuristic", "PARTIES", "No", "Yes", "500ms"});
  paper.add_row({"", "Caladan*", "No", "Yes", "5-20us (native stack)"});
  paper.add_row({"", "SurgeGuard", "Yes", "Yes", "~0.2ms"});
  paper.print();

  std::printf("\nMeasured reaction latency (surge start -> first resource "
              "action), CHAIN 1.75x surge:\n\n");
  const ProfileResult profile = profile_workload(make_chain(), 1);
  TablePrinter measured({"controller", "reaction latency", "notes"});
  auto csv = open_csv(args, "table1_reaction");
  if (csv) {
    csv->cell("controller").cell("reaction_ns");
    csv->end_row();
  }
  struct Row {
    ControllerKind kind;
    const char* note;
  };
  for (const Row& row :
       {Row{ControllerKind::kParties, "averaged metrics, 500ms FSM"},
        Row{ControllerKind::kCaladan, "queue signal, metric-publication bound"},
        Row{ControllerKind::kEscalator, "averaged metrics, 100ms cycle"},
        Row{ControllerKind::kSurgeGuard,
            "per-packet slack -> same-millisecond frequency boost"}}) {
    const SimTime reaction = measure_reaction(row.kind, profile, args);
    measured.add_row({to_string(row.kind),
                      reaction == kTimeInfinity ? "none" : format_time(reaction),
                      row.note});
    if (csv) {
      csv->cell(to_string(row.kind)).cell(static_cast<long long>(reaction));
      csv->end_row();
    }
  }
  measured.print();
  std::printf(
      "\nExpected shape: SurgeGuard reacts orders of magnitude faster than\n"
      "Parties (paper: ~0.2ms vs 500ms); Escalator alone sits at its decision\n"
      "interval; Caladan reacts at the metric-publication granularity.\n");
  return 0;
}
