// Sharded event-loop scaling (DESIGN.md §8): wall-clock speedup of the
// parallel simulation versus the serial path, with the bit-identity
// invariant checked on every cell.
//
// Grid: nodes x shards (shards <= nodes). Every (nodes, shards) cell runs
// the same pinned surge config; within a node count, all shard counts must
// produce the SAME result (events processed, VV, energy) — a cell that
// diverges is reported and fails the bench. Speedup is reported against the
// shards = 1 cell of the same node count.
//
// Emits BENCH_shard_scaling.json (machine-readable rows) alongside the
// printed table. Speedups depend on the host's core count: with one core
// the sharded loop still runs (windows execute inline or time-sliced) but
// cannot beat serial; near-linear scaling needs >= `shards` free cores.
#include <chrono>
#include <fstream>

#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

namespace {

struct Cell {
  int nodes = 0;
  int shards = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  std::uint64_t events = 0;
  double vv = 0.0;
  double energy = 0.0;
  bool identical = true;
};

double wall_clock_ms() {
  // sglint: allow(D2) wall-clock IS the measurement here (host speedup)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  std::vector<Cell> cells;
  bool all_identical = true;

  for (const int nodes : {1, 2, 4, 8}) {
    ExperimentConfig base;
    base.workload = make_chain();
    base.controller = ControllerKind::kSurgeGuard;
    base.nodes = nodes;
    base.seed = args.seed;
    base.surge_mult = 1.75;
    args.apply_timing(base);
    const ProfileResult profile =
        profile_workload(base.workload, nodes, base.target_mult, 42);

    print_banner("shard scaling - CHAIN, " + std::to_string(nodes) +
                 " node(s)");
    TablePrinter table(
        {"shards", "wall (ms)", "speedup", "events", "identical"});

    Cell serial;
    for (const int shards : {1, 2, 4, 8}) {
      if (shards > nodes) continue;
      ExperimentConfig cfg = base;
      cfg.shards = shards;
      const double t0 = wall_clock_ms();
      const ExperimentResult r = run_experiment(cfg, profile);
      const double t1 = wall_clock_ms();

      Cell cell;
      cell.nodes = nodes;
      cell.shards = shards;
      cell.wall_ms = t1 - t0;
      cell.events = r.events_processed;
      cell.vv = r.load.violation_volume_ms_s;
      cell.energy = r.energy_joules;
      if (shards == 1) {
        serial = cell;
      } else {
        cell.speedup = serial.wall_ms / std::max(cell.wall_ms, 1e-9);
        cell.identical = cell.events == serial.events &&
                         cell.vv == serial.vv && cell.energy == serial.energy;
        all_identical &= cell.identical;
      }
      table.add_row({std::to_string(shards), fmt_double(cell.wall_ms, 1),
                     fmt_double(cell.speedup, 2) + "x",
                     std::to_string(cell.events),
                     cell.identical ? "yes" : "NO - DIVERGED"});
      cells.push_back(cell);
    }
    table.print();
  }

  std::ofstream json("BENCH_shard_scaling.json");
  json << "{\n  \"bench\": \"shard_scaling\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"nodes\": " << c.nodes << ", \"shards\": " << c.shards
         << ", \"wall_ms\": " << fmt_double(c.wall_ms, 3)
         << ", \"speedup\": " << fmt_double(c.speedup, 3)
         << ", \"events\": " << c.events
         << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_shard_scaling.json\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: sharded runs diverged from serial (see table)\n");
    return 1;
  }
  return 0;
}
