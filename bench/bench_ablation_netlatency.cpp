// Ablation: network-latency surges.
//
// The paper's abstract scopes SurgeGuard to "surges in load and network
// latency". This bench injects the second disruption class: periodic
// windows during which every packet pays a large extra delay (a congested
// ToR, a failing link). FirstResponder's per-packet slack (eq. 4) counts
// lateness from ANY cause, so it detects these windows just as fast as load
// surges, and the frequency boost compensates the compute share of the
// end-to-end budget while the disruption lasts.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "ablation_netlatency");
  if (csv) {
    csv->cell("extra_delay_us").cell("controller").cell("vv_ms_s")
        .cell("p98_ms").cell("fr_boosts");
    csv->end_row();
  }

  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);

  for (SimTime extra : {100 * kMicrosecond, 300 * kMicrosecond}) {
    print_banner("network-latency surges: +" + format_time(extra) +
                 " per hop, 1s windows every 10s (no load surge)");
    TablePrinter table({"controller", "VV (ms*s)", "p98 (ms)", "FR boosts"});
    for (ControllerKind kind :
         {ControllerKind::kStatic, ControllerKind::kParties,
          ControllerKind::kSurgeGuard}) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = kind;
      cfg.surge_len = 0;  // NO load surge: the disruption is latency only
      cfg.net_delay_extra = extra;
      cfg.net_delay_len = 1 * kSecond;
      cfg.net_delay_period = 10 * kSecond;
      args.apply_timing(cfg);
      cfg.seed = args.seed;
      const ExperimentResult r = run_experiment(cfg, profile);
      table.add_row({to_string(kind),
                     fmt_double(r.load.violation_volume_ms_s, 2),
                     fmt_double(to_millis(r.load.p98), 2),
                     std::to_string(r.fr_boosts)});
      if (csv) {
        csv->cell(static_cast<long long>(extra / kMicrosecond))
            .cell(to_string(kind)).cell(r.load.violation_volume_ms_s)
            .cell(to_millis(r.load.p98))
            .cell(static_cast<long long>(r.fr_boosts));
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nExpected shape: network delay cannot be removed by any CPU\n"
      "controller — but SurgeGuard's per-packet slack detects the window\n"
      "within one request and the frequency boost claws back the compute\n"
      "share of the latency budget, so its violation volume sits below the\n"
      "baselines (which either never react or react after the window ends).\n");
  return 0;
}
