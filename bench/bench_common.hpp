// Shared plumbing for the figure/table benches.
//
// Every bench binary reproduces one table or figure of the paper: it runs
// the corresponding experiment grid, prints the same rows/series the paper
// reports (normalized to Parties where the paper normalizes), and with
// --csv writes raw data under bench_out/ for replotting.
//
// Common flags:
//   --reps N     replications per cell (default 3; paper used 17)
//   --quick      1 replication, shortened measurement (smoke-test mode)
//   --full       17 replications, paper-length measurement windows
//   --csv        also write CSV files under bench_out/
//   --seed N     base seed
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"
#include "common/stats.hpp"
#include "core/sweep.hpp"

namespace sg::bench {

struct BenchArgs {
  int reps = 3;
  bool quick = false;
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 1;
  SimTime duration = 30 * kSecond;
  SimTime warmup = 5 * kSecond;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        a.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
        a.reps = 1;
        a.duration = 12 * kSecond;
        a.warmup = 3 * kSecond;
      } else if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
        a.reps = 17;
        a.duration = 60 * kSecond;
        a.warmup = 30 * kSecond;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        a.csv = true;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --reps N | --quick | --full | --csv | --seed N\n");
        std::exit(0);
      }
    }
    return a;
  }

  SweepOptions sweep() const {
    SweepOptions s;
    s.replications = reps;
    s.trim = reps >= 5 ? 1 : 0;
    s.threads = 1;  // deterministic-order, single-core friendly
    s.seed0 = seed;
    return s;
  }

  void apply_timing(ExperimentConfig& cfg) const {
    cfg.duration = duration;
    cfg.warmup = warmup;
  }
};

/// Opens bench_out/<name>.csv (creating the directory), or returns nullptr
/// when --csv was not passed.
inline std::unique_ptr<CsvWriter> open_csv(const BenchArgs& args,
                                           const std::string& name) {
  if (!args.csv) return nullptr;
  ::mkdir("bench_out", 0755);
  auto w = std::make_unique<CsvWriter>("bench_out/" + name + ".csv");
  if (!w->ok()) {
    std::fprintf(stderr, "warning: cannot write bench_out/%s.csv\n",
                 name.c_str());
    return nullptr;
  }
  return w;
}

/// Short display label for a workload (the paper's abbreviations).
inline std::string short_name(const WorkloadInfo& w) {
  if (w.action == "chain") return "CHAIN";
  if (w.action == "readUserTimeline") return "read";
  if (w.action == "composePost") return "compose";
  if (w.action == "searchHotel") return "search";
  if (w.action == "recommendHotel") return "reco";
  return w.action;
}

}  // namespace sg::bench
