// Fig. 15: performance breakdown of Escalator's mechanisms.
//
// Four configurations on the Parties base allocator:
//   1. Parties                      (the baseline itself)
//   2. Parties + new metrics        (execMetric/queueBuildup/hints only)
//   3. Parties + sensitivity        (sensitivity allocation/revocation only)
//   4. Escalator (both)
// on readUserTimeline (fixed threadpool) and recommendHotel
// (connection-per-request).
//
// Paper shape: the new metrics help ONLY the threadpool workload
// (readUserTimeline -23.5% VV; recommendHotel unchanged — with unlimited
// pools execMetric == execTime, so the new metrics are inert); sensitivity
// helps both (-28% / -63% VV, -5% / -8% cores); combining them compounds.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "fig15_breakdown");
  if (csv) {
    csv->cell("workload").cell("variant").cell("vv_ms_s").cell("avg_cores");
    csv->end_row();
  }

  const ControllerKind variants[4] = {
      ControllerKind::kParties, ControllerKind::kEscalatorMetricsOnly,
      ControllerKind::kEscalatorSensOnly, ControllerKind::kEscalator};
  const char* labels[4] = {"Parties", "+ new metrics", "+ sensitivity",
                           "Escalator (both)"};

  for (const WorkloadInfo& w :
       {make_social_read_user_timeline(), make_hotel_recommend()}) {
    print_banner("Fig. 15 - Escalator breakdown, " + w.spec.name +
                 " (1.75x 2s surges)");
    const ProfileResult profile = profile_workload(w, 1);
    TablePrinter table({"variant", "VV (ms*s)", "VV vs Parties", "avg cores",
                        "cores vs Parties"});
    double base_vv = 0, base_cores = 0;
    for (int v = 0; v < 4; ++v) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = variants[v];
      cfg.surge_mult = 1.75;
      cfg.surge_len = 2 * kSecond;
      args.apply_timing(cfg);
      const RepStats stats = run_replicated(cfg, profile, args.sweep());
      if (v == 0) {
        base_vv = stats.vv;
        base_cores = stats.cores;
      }
      table.add_row({labels[v], fmt_double(stats.vv, 2),
                     base_vv > 0 ? fmt_ratio(stats.vv / base_vv) : "-",
                     fmt_double(stats.cores, 2),
                     base_cores > 0 ? fmt_ratio(stats.cores / base_cores) : "-"});
      if (csv) {
        csv->cell(short_name(w)).cell(labels[v]).cell(stats.vv)
            .cell(stats.cores);
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nPaper shape: new metrics only move the threadpool workload\n"
      "(readUserTimeline); with connection-per-request pools there is no\n"
      "conn-wait to subtract, so execMetric == execTime and the metrics\n"
      "variant tracks Parties. Sensitivity helps both; combining compounds.\n");
  return 0;
}
