// §VI-D overheads: real wall-clock microbenchmarks (google-benchmark) of
// the code that sits on hot paths.
//
// The paper reports: 0.26us per packet for FirstResponder's critical-path
// slack check, 0.44us to enqueue a work item toward the worker thread, and
// 2.1us for the off-path MSR write. The simulated counterparts here are the
// per-packet hook invocation, event scheduling, and the frequency update;
// this bench verifies the simulator's own hot paths are cheap enough that
// the figure benches measure controller behaviour, not harness overhead.
#include <benchmark/benchmark.h>

#include "controllers/first_responder.hpp"
#include "controllers/surgeguard.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "workload/load_generator.hpp"

namespace sg {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  SimTime t = 0;
  for (auto _ : state) {
    q.push(++t, []() {});
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.schedule_after(10, []() {});
    sim.step();
  }
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_ContainerSubmitComplete(benchmark::State& state) {
  Simulator sim;
  Container::Params params;
  params.name = "bench";
  params.initial_cores = 4;
  Container c(sim, std::move(params));
  for (auto _ : state) {
    c.submit(100.0, []() {});
    sim.step();
  }
}
BENCHMARK(BM_ContainerSubmitComplete);

void BM_ContainerPsWithBacklog(benchmark::State& state) {
  // Completion cost with many concurrent jobs (the surge regime).
  Simulator sim;
  Container::Params params;
  params.name = "bench";
  params.initial_cores = 4;
  Container c(sim, std::move(params));
  const int backlog = static_cast<int>(state.range(0));
  for (int i = 0; i < backlog; ++i) c.submit(1e15, []() {});
  for (auto _ : state) {
    c.submit(100.0, []() {});
    sim.step();
  }
}
BENCHMARK(BM_ContainerPsWithBacklog)->Arg(8)->Arg(64)->Arg(512);

struct HookFixture {
  Simulator sim{1};
  Cluster cluster{sim};
  Network network{sim};
  MetricsPlane metrics{1};
  std::unique_ptr<Application> app;
  std::unique_ptr<FirstResponder> fr;

  HookFixture() {
    cluster.add_node(64, 19);
    AppSpec spec;
    spec.name = "hook";
    ServiceSpec a;
    a.name = "a";
    a.children = {1};
    ServiceSpec b;
    b.name = "b";
    spec.services = {a, b};
    app = std::make_unique<Application>(cluster, network, metrics, spec,
                                        Deployment::single_node(spec, 0, 2));
    ControllerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    env.node = &cluster.node(0);
    env.bus = &metrics.node_bus(0);
    env.app = app.get();
    env.topology = app->topology();
    ContainerTargets t;
    t.expected_exec_metric_ns = 1e6;
    t.expected_time_from_start = Duration::ms(1);
    env.targets.per_container[app->entry_container()] = t;
    env.targets.expected_e2e_latency = Duration::ms(1);
    fr = std::make_unique<FirstResponder>(std::move(env), network);
    fr->start();
  }
};

void BM_FirstResponderSlackCheck(benchmark::State& state) {
  // The per-packet critical-path cost (paper: 0.26us on their kernel path).
  HookFixture fx;
  RpcPacket pkt;
  pkt.dst_container = fx.app->entry_container();
  pkt.dst_node = 0;
  pkt.start_time = TimePoint::origin();  // slack positive: pure check, no boost
  for (auto _ : state) {
    fx.fr->on_packet(pkt);
  }
  benchmark::DoNotOptimize(fx.fr->packets_inspected());
}
BENCHMARK(BM_FirstResponderSlackCheck);

void BM_FirstResponderViolationPath(benchmark::State& state) {
  // Detection + work-item handoff (boost event scheduling).
  HookFixture fx;
  RpcPacket pkt;
  pkt.dst_container = fx.app->entry_container();
  pkt.dst_node = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Make the packet violating and un-freeze the path.
    fx.sim.run_until(fx.sim.now() + 10 * kMillisecond);
    pkt.start_time = fx.sim.now_point() - Duration::ms(100);
    state.ResumeTiming();
    fx.fr->on_packet(pkt);
  }
}
BENCHMARK(BM_FirstResponderViolationPath);

void BM_SimulatedSecondThroughput(benchmark::State& state) {
  // Events per wall-second for a realistic full testbed: the number that
  // bounds every figure bench's wall-clock time.
  for (auto _ : state) {
    Simulator sim(7);
    Cluster cluster(sim);
    cluster.add_node(64, 19);
    Network network(sim);
    MetricsPlane metrics(1);
    AppSpec spec;
    spec.name = "tput";
    ServiceSpec a;
    a.name = "a";
    a.work_ns_mean = 100'000;
    a.children = {1};
    ServiceSpec b;
    b.name = "b";
    b.work_ns_mean = 100'000;
    spec.services = {a, b};
    Application app(cluster, network, metrics, spec,
                    Deployment::single_node(spec, 0, 4));
    LoadGenOptions opts;
    opts.pattern = SpikePattern::steady(5000);
    opts.qos = 10 * kMillisecond;
    opts.warmup = 0;
    opts.duration = 1 * kSecond;
    LoadGenerator gen(sim, network, app, opts);
    gen.start();
    sim.run_until(1 * kSecond);
    state.counters["events_per_sim_s"] =
        static_cast<double>(sim.events_processed());
  }
}
BENCHMARK(BM_SimulatedSecondThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg

BENCHMARK_MAIN();
