// Fig. 13: node scaling (1, 2, 4 nodes), 2s surges at 1.75x every 10s,
// normalized to Parties and CaladanAlgo.
//
// Paper shape: SurgeGuard wins everywhere; its core/energy advantage GROWS
// with node count (6.5%->16.4% cores, 14.2%->28.3% energy — more total
// free cores means the baselines over-allocate more), while its VV
// advantage SHRINKS (67.2%->51.4% — spreading containers makes it harder
// for any one container to hog a critical fraction of cores).
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "fig13_node_scaling");
  if (csv) {
    csv->cell("nodes").cell("workload").cell("controller").cell("vv_ms_s")
        .cell("avg_cores").cell("energy_j");
    csv->end_row();
  }

  const std::vector<WorkloadInfo> workloads =
      args.quick ? std::vector<WorkloadInfo>{make_chain(), make_hotel_recommend()}
                 : workload_catalog();

  for (int nodes : {1, 2, 4}) {
    print_banner("Fig. 13 - " + std::to_string(nodes) +
                 " node(s), 1.75x 2s surges (normalized to Parties)");
    TablePrinter table({"workload", "VV sg/parties", "VV sg/caladan",
                        "cores sg/parties", "energy sg/parties",
                        "energy sg/caladan"});
    std::vector<double> vvp, vvc, cp, ep, ec;
    for (const WorkloadInfo& w : workloads) {
      const ProfileResult profile = profile_workload(w, nodes);
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.nodes = nodes;
      cfg.surge_mult = 1.75;
      cfg.surge_len = 2 * kSecond;
      args.apply_timing(cfg);

      RepStats stats[3];
      const ControllerKind kinds[3] = {ControllerKind::kParties,
                                       ControllerKind::kCaladan,
                                       ControllerKind::kSurgeGuard};
      for (int k = 0; k < 3; ++k) {
        cfg.controller = kinds[k];
        stats[k] = run_replicated(cfg, profile, args.sweep());
        if (csv) {
          csv->cell(nodes).cell(short_name(w)).cell(to_string(kinds[k]))
              .cell(stats[k].vv).cell(stats[k].cores).cell(stats[k].energy);
          csv->end_row();
        }
      }
      auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
      const double r_vvp = ratio(stats[2].vv, stats[0].vv);
      const double r_vvc = ratio(stats[2].vv, stats[1].vv);
      const double r_cp = ratio(stats[2].cores, stats[0].cores);
      const double r_ep = ratio(stats[2].energy, stats[0].energy);
      const double r_ec = ratio(stats[2].energy, stats[1].energy);
      vvp.push_back(r_vvp);
      vvc.push_back(r_vvc);
      cp.push_back(r_cp);
      ep.push_back(r_ep);
      ec.push_back(r_ec);
      table.add_row({short_name(w), fmt_ratio(r_vvp), fmt_ratio(r_vvc),
                     fmt_ratio(r_cp), fmt_ratio(r_ep), fmt_ratio(r_ec)});
    }
    table.print();
    std::printf(
        "averages @%d node(s): VV %.1f%% lower, cores %.1f%% fewer, energy "
        "%.1f%% less than Parties\n",
        nodes, 100.0 * (1.0 - mean(vvp)), 100.0 * (1.0 - mean(cp)),
        100.0 * (1.0 - mean(ep)));
  }
  return 0;
}
