// Ablation: Escalator's detection thresholds.
//
// The paper fixes QUEUE_TH and EXEC_TH without a sensitivity study; this
// bench sweeps both on the hidden-dependency workload (readUserTimeline,
// 1.75x surges) to show the design point is robust: too-tight thresholds
// fire on base-load noise (wasted allocations, extra energy), too-loose
// thresholds delay detection (violation volume grows), and a wide middle
// band behaves like the paper's defaults.
#include "bench_common.hpp"

#include "controllers/escalator.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "ablation_thresholds");
  if (csv) {
    csv->cell("knob").cell("value").cell("vv_ms_s").cell("avg_cores")
        .cell("energy_j");
    csv->end_row();
  }

  const WorkloadInfo w = make_social_read_user_timeline();
  const ProfileResult profile = profile_workload(w, 1);

  // The harness exposes controller construction only by kind, so this bench
  // reaches one level deeper: it replicates run_experiment's SurgeGuard
  // setup with modified Escalator options via the defaults struct. To keep
  // the public API honest, the sweep varies the thresholds through a local
  // runner.
  auto run_with = [&](double queue_th, double exec_th) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.controller = ControllerKind::kEscalator;  // isolate the slow path
    cfg.surge_mult = 1.75;
    cfg.surge_len = 2 * kSecond;
    args.apply_timing(cfg);
    cfg.seed = args.seed;

    // Build the experiment manually so Escalator options are reachable.
    Simulator sim(cfg.seed);
    Cluster cluster(sim);
    const int init = w.total_initial_cores();
    cluster.add_node(static_cast<int>(std::ceil(init * 1.5)) + 19, 19);
    Network network(sim);
    MetricsPlane metrics(1);
    AppSpec spec = w.spec;
    spec.autosize_pools(w.base_rate_rps, 15'000.0);
    Deployment dep;
    dep.initial_cores = w.initial_cores;
    dep.node_of_service.assign(w.spec.services.size(), 0);
    Application app(cluster, network, metrics, std::move(spec), dep);
    app.start_metric_publication();

    ControllerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    env.node = &cluster.node(0);
    env.bus = &metrics.node_bus(0);
    env.app = &app;
    env.topology = app.topology();
    env.targets = profile.targets;
    Escalator::Options opts;
    opts.queue_threshold = queue_th;
    opts.exec_threshold = exec_th;
    Escalator esc(std::move(env), opts);

    LoadGenOptions gen_opts;
    gen_opts.pattern = cfg.make_pattern();
    gen_opts.qos = static_cast<SimTime>(
        cfg.qos_mult * static_cast<double>(profile.low_load_mean_latency));
    gen_opts.warmup = cfg.warmup;
    gen_opts.duration = cfg.duration;
    LoadGenerator gen(sim, network, app, gen_opts);
    esc.start();
    gen.start();
    sim.run_until(gen.measure_end());
    cluster.sync_all();

    struct Out {
      double vv, cores, energy;
    };
    return Out{gen.results().violation_volume_ms_s,
               cluster.average_allocated_cores(gen.measure_start(),
                                               gen.measure_end()),
               cluster.total_energy_joules()};
  };

  print_banner("QUEUE_TH sweep (EXEC_TH = 1.0), readUserTimeline 1.75x surges");
  TablePrinter qt({"QUEUE_TH", "VV (ms*s)", "avg cores", "energy (J)"});
  for (double th : {1.05, 1.15, 1.30, 1.60, 2.50, 10.0}) {
    const auto out = run_with(th, 1.0);
    qt.add_row({fmt_double(th, 2), fmt_double(out.vv, 2),
                fmt_double(out.cores, 2), fmt_double(out.energy, 1)});
    if (csv) {
      csv->cell("queue_th").cell(th).cell(out.vv).cell(out.cores)
          .cell(out.energy);
      csv->end_row();
    }
  }
  qt.print();

  print_banner("EXEC_TH sweep (QUEUE_TH = 1.3)");
  TablePrinter et({"EXEC_TH", "VV (ms*s)", "avg cores", "energy (J)"});
  for (double th : {0.6, 0.8, 1.0, 1.5, 2.5, 5.0}) {
    const auto out = run_with(1.3, th);
    et.add_row({fmt_double(th, 2), fmt_double(out.vv, 2),
                fmt_double(out.cores, 2), fmt_double(out.energy, 1)});
    if (csv) {
      csv->cell("exec_th").cell(th).cell(out.vv).cell(out.cores)
          .cell(out.energy);
      csv->end_row();
    }
  }
  et.print();
  std::printf(
      "\nExpected shape: a wide plateau around the defaults (QUEUE_TH 1.3,\n"
      "EXEC_TH 1.0); very loose thresholds (right end) push VV up as the\n"
      "controller stops seeing violations, very tight ones fire on noise and\n"
      "burn cores/energy without improving VV.\n");
  return 0;
}
