// Table III: details of the evaluated workloads.
//
// Prints the paper's catalog columns (action, task-graph depth, RPC
// framework, threadpool size) plus the simulator's calibration columns
// (base rate, initial cores, Little's-law pool sizes actually provisioned).
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Table III - evaluated workloads");

  TablePrinter table({"Workload", "Action", "Task-graph Depth", "RPC",
                      "Threadpool Size", "base rate (rps)", "init cores",
                      "sim pool sizes"});
  auto csv = open_csv(args, "table3_workloads");
  if (csv) {
    csv->cell("family").cell("action").cell("depth").cell("rpc")
        .cell("paper_pool").cell("base_rate").cell("init_cores");
    csv->end_row();
  }
  for (WorkloadInfo w : workload_catalog()) {
    // Provision pools exactly as the experiment harness does.
    AppSpec spec = w.spec;
    const auto pools = spec.autosize_pools(w.base_rate_rps, 15'000.0);
    std::string pool_str;
    for (const auto& per_svc : pools) {
      for (int p : per_svc) {
        if (!pool_str.empty()) pool_str += ",";
        pool_str += (p < 0 ? std::string("inf") : std::to_string(p));
      }
    }
    const std::string paper_pool = w.paper_threadpool_size < 0
                                       ? "infinity"
                                       : std::to_string(w.paper_threadpool_size);
    table.add_row({w.family, w.action == "chain" ? "-" : w.action,
                   std::to_string(w.spec.depth()), to_string(w.spec.rpc),
                   paper_pool, fmt_double(w.base_rate_rps, 0),
                   std::to_string(w.total_initial_cores()), pool_str});
    if (csv) {
      csv->cell(w.family).cell(w.action).cell(w.spec.depth())
          .cell(to_string(w.spec.rpc)).cell(paper_pool)
          .cell(w.base_rate_rps).cell(w.total_initial_cores());
      csv->end_row();
    }
  }
  table.print();
  std::printf(
      "\nNote: the paper deploys 512-entry pools at testbed rates; the\n"
      "simulator provisions pools with Little's law (eq. 1) at its\n"
      "calibrated rates, preserving when pools bind (surges) vs not (base).\n");
  return 0;
}
