// Chaos recovery: controller comparison under injected faults.
//
// ScalerEval-style disturbance scenarios: the same surge workload is run
// through (a) a clean baseline, (b) a 10% packet-loss window, and (c) a
// deep node-slowdown window, with RPC retransmission enabled everywhere.
// The questions a scaler must answer under chaos are different from the
// steady-state ones: does every request drain (conservation), how much tail
// latency does recovery cost, and does the controller's reaction help or
// thrash. Faults are seed-deterministic (sg::fault), so cells are
// reproducible run to run.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

namespace {

struct Scenario {
  const char* name;
  const char* plan;  // FaultPlan spec ("" = clean baseline)
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "chaos_recovery");
  if (csv) {
    csv->cell("scenario").cell("controller").cell("vv_ms_s").cell("p99_ms")
        .cell("completed").cell("client_retries").cell("dropped")
        .cell("stranded");
    csv->end_row();
  }

  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);

  // Fault windows sit inside the measurement window (warmup defaults to
  // 5 s), overlapping the load surges so recovery and scaling interact.
  const Scenario scenarios[] = {
      {"baseline (no faults)", ""},
      {"10% packet loss, 2s window",
       "drop:start_ms=8000,len_ms=2000,rate=0.1"},
      {"node slowdown 4x, 500ms window",
       "slow:node=0,start_ms=8000,len_ms=500,factor=0.25"},
  };

  for (const Scenario& sc : scenarios) {
    print_banner(std::string("chaos: ") + sc.name);
    TablePrinter table({"controller", "VV (ms*s)", "p99 (ms)", "completed",
                        "retries", "dropped", "stranded"});
    for (ControllerKind kind :
         {ControllerKind::kParties, ControllerKind::kCaladan,
          ControllerKind::kSurgeGuard}) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = kind;
      cfg.surge_len = 0;  // NO load surge: the disruption is the fault
      args.apply_timing(cfg);
      cfg.seed = args.seed;
      cfg.rpc_retry.enabled = true;
      cfg.rpc_retry.timeout = 50 * kMillisecond;
      cfg.drain = 5 * kSecond;
      if (sc.plan[0] != '\0') {
        std::string error;
        const auto plan = FaultPlan::parse(sc.plan, &error);
        if (!plan) {
          std::fprintf(stderr, "bad plan: %s\n", error.c_str());
          return 2;
        }
        cfg.fault_plan = *plan;
      }
      const ExperimentResult r = run_experiment(cfg, profile);
      table.add_row({to_string(kind),
                     fmt_double(r.load.violation_volume_ms_s, 2),
                     fmt_double(to_millis(r.load.p99), 2),
                     std::to_string(r.load.completed_total),
                     std::to_string(r.load.retries),
                     std::to_string(r.load.dropped),
                     std::to_string(r.load.outstanding)});
      if (csv) {
        csv->cell(sc.name).cell(to_string(kind))
            .cell(r.load.violation_volume_ms_s).cell(to_millis(r.load.p99))
            .cell(static_cast<long long>(r.load.completed_total))
            .cell(static_cast<long long>(r.load.retries))
            .cell(static_cast<long long>(r.load.dropped))
            .cell(static_cast<long long>(r.load.outstanding));
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nExpected shape: every baseline cell is clean (retries enabled but\n"
      "never firing). Faults inflate the tail for everyone — retransmission\n"
      "delay is not removable by a CPU controller — but a controller that\n"
      "restores capacity drains the retried backlog and finishes with zero\n"
      "stranded requests (SurgeGuard fastest, Parties behind it). A\n"
      "controller whose upscale signal misses the post-fault backlog\n"
      "(CaladanAlgo on this pooled workload) ends the run with a standing\n"
      "queue: completed < issued and the remainder shows as stranded —\n"
      "the recovery difference chaos runs exist to expose.\n");
  return 0;
}
