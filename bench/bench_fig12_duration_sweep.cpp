// Fig. 12: effect of surge duration (0.1s - 5s) on SurgeGuard, normalized
// to (a) Parties and (b) CaladanAlgo, for recommendHotel
// (connection-per-request) and readUserTimeline (fixed threadpool) at a
// 1.75x surge rate.
//
// Paper shape: SurgeGuard < 1.0 everywhere, improving as surges lengthen
// (43.4% -> 56.5% over the baselines from 0.1s to 5s); energy stays ~1
// except CaladanAlgo on recommendHotel, where Caladan never upscales at all
// (x-fold lower energy, orders-of-magnitude higher VV).
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "fig12_duration_sweep");
  if (csv) {
    csv->cell("workload").cell("surge_len_ms").cell("controller")
        .cell("vv_ms_s").cell("energy_j").cell("avg_cores");
    csv->end_row();
  }

  const std::vector<SimTime> durations =
      args.quick ? std::vector<SimTime>{100 * kMillisecond, 2 * kSecond}
                 : std::vector<SimTime>{100 * kMillisecond, 500 * kMillisecond,
                                        1 * kSecond, 2 * kSecond, 5 * kSecond};

  for (const WorkloadInfo& w :
       {make_hotel_recommend(), make_social_read_user_timeline()}) {
    print_banner("Fig. 12 - surge duration sweep, " + w.spec.name +
                 " @1.75x (normalized to each baseline)");
    const ProfileResult profile = profile_workload(w, 1);
    TablePrinter table({"surge len", "VV vs Parties", "VV vs Caladan",
                        "energy vs Parties", "energy vs Caladan",
                        "VV SG (ms*s)"});
    for (SimTime len : durations) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.surge_mult = 1.75;
      cfg.surge_len = len;
      cfg.surge_period = 10 * kSecond;
      args.apply_timing(cfg);
      // Long surges need a longer window to hold >=1 full surge.
      if (len >= cfg.duration / 2) cfg.duration = len * 4;

      RepStats stats[3];
      const ControllerKind kinds[3] = {ControllerKind::kParties,
                                       ControllerKind::kCaladan,
                                       ControllerKind::kSurgeGuard};
      for (int k = 0; k < 3; ++k) {
        cfg.controller = kinds[k];
        stats[k] = run_replicated(cfg, profile, args.sweep());
        if (csv) {
          csv->cell(short_name(w)).cell(to_millis(len))
              .cell(to_string(kinds[k])).cell(stats[k].vv)
              .cell(stats[k].energy).cell(stats[k].cores);
          csv->end_row();
        }
      }
      auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
      table.add_row({format_time(len),
                     fmt_ratio(ratio(stats[2].vv, stats[0].vv)),
                     fmt_ratio(ratio(stats[2].vv, stats[1].vv)),
                     fmt_ratio(ratio(stats[2].energy, stats[0].energy)),
                     fmt_ratio(ratio(stats[2].energy, stats[1].energy)),
                     fmt_double(stats[2].vv, 2)});
    }
    table.print();
  }
  std::printf(
      "\nPaper shape: values < 1 mean SurgeGuard beats the baseline; the VV\n"
      "advantage widens with surge duration. On recommendHotel, CaladanAlgo\n"
      "is blind (connection-per-request: queueBuildup stays ~1), so its\n"
      "energy is far lower but its VV is orders of magnitude higher.\n");
  return 0;
}
