// §VII "Interaction with Other Controllers": the paper envisions heavy
// ML/gradient controllers setting steady-state allocations at long
// intervals while SurgeGuard manages transients in between.
//
// This bench realizes that vision with the CentralizedML stand-in:
//   Parties           — heuristic baseline
//   CentralizedML     — near-ideal rightsizing, >1s decisions, centralized
//   SurgeGuard        — the paper's controller
//   ML + SurgeGuard   — §VII's proposed deployment
//
// Expected shape: CentralizedML alone achieves the leanest steady-state
// allocation but the worst surge damage (its decisions land ~1.2s after a
// surge begins); SurgeGuard contains surges; the hybrid keeps both —
// ML-grade rightsizing with SurgeGuard-grade surge response.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "discussion_hybrid");
  if (csv) {
    csv->cell("workload").cell("controller").cell("vv_ms_s").cell("avg_cores")
        .cell("energy_j").cell("steady_cores");
    csv->end_row();
  }

  for (const WorkloadInfo& w : {make_chain(), make_social_read_user_timeline()}) {
    print_banner("SVII hybrid deployment - " + w.spec.name +
                 " (1.75x 2s surges; steady-state cores from a surge-free run)");
    const ProfileResult profile = profile_workload(w, 1);
    TablePrinter table({"controller", "VV (ms*s)", "avg cores (surges)",
                        "energy (J)", "steady-state cores"});
    for (ControllerKind kind :
         {ControllerKind::kParties, ControllerKind::kCentralizedML,
          ControllerKind::kSurgeGuard, ControllerKind::kMLPlusSurgeGuard}) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = kind;
      cfg.surge_mult = 1.75;
      cfg.surge_len = 2 * kSecond;
      args.apply_timing(cfg);
      const RepStats surged = run_replicated(cfg, profile, args.sweep());

      // Steady-state rightsizing: same controller, no surges.
      ExperimentConfig steady = cfg;
      steady.surge_len = 0;
      steady.seed = args.seed;
      const ExperimentResult steady_r = run_experiment(steady, profile);

      table.add_row({to_string(kind), fmt_double(surged.vv, 2),
                     fmt_double(surged.cores, 2),
                     fmt_double(surged.energy, 1),
                     fmt_double(steady_r.avg_cores, 2)});
      if (csv) {
        csv->cell(short_name(w)).cell(to_string(kind)).cell(surged.vv)
            .cell(surged.cores).cell(surged.energy).cell(steady_r.avg_cores);
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nExpected shape (paper SVII): the ML-class controller rightsizes the\n"
      "steady state best but cannot catch 2s surges (decisions land >1s\n"
      "late); SurgeGuard contains surges; the hybrid combines both, letting\n"
      "the heavy controller run rarely without QoS damage in between.\n");
  return 0;
}
