// Fig. 11: longer surges managed by Escalator.
//
// Protocol (paper §VI-B): inject 2s request-rate surges every 10s; surge
// rate = 1.25x / 1.5x / 1.75x of base. For every workload and controller,
// report violation volume, cores used, and energy — normalized to Parties,
// exactly as the paper plots them.
//
// Expected shape: SurgeGuard's normalized VV < 1 everywhere, improving with
// surge magnitude (paper: -19% avg at 1.25x, -43% at 1.5x, -61% at 1.75x),
// with 2-8% fewer cores and 2-4% less energy than Parties. CaladanAlgo
// collapses on the connection-per-request hotel workloads.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "fig11_long_surges");
  if (csv) {
    csv->cell("surge_mult").cell("workload").cell("controller").cell("vv_ms_s")
        .cell("avg_cores").cell("energy_j").cell("p98_ms");
    csv->end_row();
  }

  const std::vector<ControllerKind> controllers = {
      ControllerKind::kParties, ControllerKind::kCaladan,
      ControllerKind::kSurgeGuard};

  for (double mult : {1.25, 1.5, 1.75}) {
    print_banner("Fig. 11 - surge " + fmt_double(mult, 2) +
                 "x base rate, 2s every 10s (normalized to Parties)");
    TablePrinter table({"workload", "VV parties", "VV caladan", "VV surgegd",
                        "cores p.", "cores c.", "cores s.", "energy p.",
                        "energy c.", "energy s."});
    std::vector<double> sg_vv_norm, sg_core_norm, sg_energy_norm;

    for (const WorkloadInfo& w : workload_catalog()) {
      const ProfileResult profile = profile_workload(w, 1);
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.surge_mult = mult;
      cfg.surge_len = 2 * kSecond;
      args.apply_timing(cfg);

      RepStats stats[3];
      for (std::size_t k = 0; k < controllers.size(); ++k) {
        cfg.controller = controllers[k];
        stats[k] = run_replicated(cfg, profile, args.sweep());
        if (csv) {
          csv->cell(mult).cell(short_name(w)).cell(to_string(controllers[k]))
              .cell(stats[k].vv).cell(stats[k].cores).cell(stats[k].energy)
              .cell(stats[k].p98);
          csv->end_row();
        }
      }
      const RepStats& parties = stats[0];
      auto norm = [&](double v, double base) {
        return base > 0.0 ? v / base : 0.0;
      };
      table.add_row({short_name(w), fmt_ratio(1.0),
                     fmt_ratio(norm(stats[1].vv, parties.vv)),
                     fmt_ratio(norm(stats[2].vv, parties.vv)),
                     fmt_ratio(1.0),
                     fmt_ratio(norm(stats[1].cores, parties.cores)),
                     fmt_ratio(norm(stats[2].cores, parties.cores)),
                     fmt_ratio(1.0),
                     fmt_ratio(norm(stats[1].energy, parties.energy)),
                     fmt_ratio(norm(stats[2].energy, parties.energy))});
      sg_vv_norm.push_back(norm(stats[2].vv, parties.vv));
      sg_core_norm.push_back(norm(stats[2].cores, parties.cores));
      sg_energy_norm.push_back(norm(stats[2].energy, parties.energy));
    }
    table.print();
    std::printf(
        "SurgeGuard vs Parties @%.2fx: VV %.1f%% lower, cores %.1f%% fewer, "
        "energy %.1f%% less (averages; paper: 19/43/61%% VV at "
        "1.25/1.5/1.75x, 2-8%% cores, 2-4%% energy)\n",
        mult, 100.0 * (1.0 - mean(sg_vv_norm)),
        100.0 * (1.0 - mean(sg_core_norm)),
        100.0 * (1.0 - mean(sg_energy_norm)));
  }
  return 0;
}
