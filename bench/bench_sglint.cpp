// sg-lint throughput gate: runs the full flow-aware lint (lexer + D/H/A +
// U1-U4 unit analysis) over the real tree in-process and fails if a scan
// exceeds its budget. The lint runs on every commit and in pre-commit
// hooks, so it must stay cheap; this bench pins that property with a
// number instead of a feeling.
//
// Emits BENCH_sglint.json with per-rep wall times and throughput. Exits
// nonzero if the best-of-N scan is slower than the 5 s budget, or if the
// tree is not clean (a dirty tree would make the timing meaningless: the
// finding paths dominate the cost profile).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

// Mirror of the sglint CLI's tree walk: same extensions, same skip set, so
// the measured corpus is exactly what `sglint src bench tests tools
// examples` scans.
bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "sglint_fixtures" || name == "sglint_fixable" ||
         name == "build" || (!name.empty() && name[0] == '.');
}

void collect_files(const fs::path& root, std::vector<fs::path>* out) {
  if (!fs::is_directory(root)) return;
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(root)) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& e : entries) {
    if (fs::is_directory(e)) {
      if (!skip_directory(e)) collect_files(e, out);
    } else if (has_cxx_extension(e)) {
      out->push_back(e);
    }
  }
}

struct Source {
  std::string display_path;
  std::string text;
  std::string header_text;  // paired same-stem header, empty if none
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double wall_clock_ms() {
  // sglint: allow(D2) wall-clock IS the measurement here (lint throughput)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

// One full lint pass over the preloaded corpus. File I/O is excluded on
// purpose: the budget guards analysis cost, not the disk.
std::size_t lint_corpus(const std::vector<Source>& corpus) {
  std::size_t findings = 0;
  for (const Source& s : corpus) {
    sglint::Lexer lexer(s.text);
    const sglint::LexResult lex = lexer.run();
    sglint::RuleEngine engine;
    if (!s.header_text.empty()) {
      sglint::Lexer hdr_lexer(s.header_text);
      const sglint::LexResult hdr_lex = hdr_lexer.run();
      engine.seed_declarations(hdr_lex);
    }
    findings += engine.run(s.display_path, lex).size();
  }
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      reps = 2;
    }
  }

  const fs::path root = SG_LINT_REPO_ROOT;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "bench", "tests", "tools", "examples"}) {
    collect_files(root / dir, &files);
  }
  if (files.empty()) {
    std::fprintf(stderr, "bench_sglint: no sources under %s\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<Source> corpus;
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  for (const fs::path& f : files) {
    Source s;
    s.display_path = fs::relative(f, root).generic_string();
    s.text = read_file(f);
    if (f.extension() == ".cpp") {
      for (const char* ext : {".hpp", ".h"}) {
        const fs::path header = fs::path(f).replace_extension(ext);
        if (fs::is_regular_file(header)) {
          s.header_text = read_file(header);
          break;
        }
      }
    }
    bytes += s.text.size();
    lines += static_cast<std::uint64_t>(
        std::count(s.text.begin(), s.text.end(), '\n'));
    corpus.push_back(std::move(s));
  }

  constexpr double kBudgetMs = 5000.0;
  std::vector<double> rep_ms;
  std::size_t findings = 0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = wall_clock_ms();
    findings = lint_corpus(corpus);
    const double t1 = wall_clock_ms();
    rep_ms.push_back(t1 - t0);
  }
  const double best_ms = *std::min_element(rep_ms.begin(), rep_ms.end());
  double mean_ms = 0.0;
  for (const double m : rep_ms) mean_ms += m;
  mean_ms /= static_cast<double>(rep_ms.size());
  const double mb_per_s =
      (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (best_ms / 1000.0);

  std::printf("sg-lint throughput: %zu files, %llu lines, %.1f KiB\n",
              corpus.size(), static_cast<unsigned long long>(lines),
              static_cast<double>(bytes) / 1024.0);
  std::printf("  reps: %d  best: %.2f ms  mean: %.2f ms  %.1f MiB/s\n", reps,
              best_ms, mean_ms, mb_per_s);
  std::printf("  findings: %zu  budget: %.0f ms\n", findings, kBudgetMs);

  std::ofstream json("BENCH_sglint.json");
  json << "{\n  \"bench\": \"sglint\",\n";
  json << "  \"files\": " << corpus.size() << ",\n";
  json << "  \"lines\": " << lines << ",\n";
  json << "  \"bytes\": " << bytes << ",\n";
  json << "  \"findings\": " << findings << ",\n";
  json << "  \"reps\": " << reps << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", best_ms);
  json << "  \"best_ms\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", mean_ms);
  json << "  \"mean_ms\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", mb_per_s);
  json << "  \"mib_per_s\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.0f", kBudgetMs);
  json << "  \"budget_ms\": " << buf << ",\n";
  json << "  \"within_budget\": " << (best_ms < kBudgetMs ? "true" : "false")
       << "\n}\n";
  json.close();
  std::printf("wrote BENCH_sglint.json\n");

  if (findings != 0) {
    std::fprintf(stderr,
                 "error: tree is not lint-clean (%zu findings) — timing is "
                 "not representative\n",
                 findings);
    return 1;
  }
  if (best_ms >= kBudgetMs) {
    std::fprintf(stderr, "error: scan took %.1f ms, budget is %.0f ms\n",
                 best_ms, kBudgetMs);
    return 1;
  }
  return 0;
}
