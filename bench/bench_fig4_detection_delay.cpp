// Fig. 4: why detection latency matters.
//
// An idealized controller that, `delay` after a surge begins, instantly
// allocates exactly the cores needed (surge + backlog drain) and releases
// them afterwards. The paper's example: a 4s surge; detection delays of
// 0.2ms (SurgeGuard's fast path), 0.5s (Parties), and 1s (ML controllers)
// give violation volumes of roughly 1x : ~4.75x : ~24x, with 40-75% more
// cores needed at the slower delays (the backlog accumulated while
// undetected must be drained on top of the surge itself).
//
// The node is provisioned with a deep free pool so the oracle is never
// pool-limited — the figure isolates detection latency, not scarcity.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

namespace {

/// Peak simultaneous application cores across the run (the "cores needed
/// to overcome the surge" quantity Fig. 4 plots).
double peak_total_cores(const ExperimentResult& r) {
  double peak = 0.0;
  if (r.alloc_traces.empty()) return peak;
  const std::size_t n = r.alloc_traces.front().cores.size();
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (const ContainerTrace& trace : r.alloc_traces) {
      if (i < trace.cores.size()) total += trace.cores[i].value;
    }
    peak = std::max(peak, total);
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Fig. 4 - detection delay vs violation volume (ideal controller)");

  ExperimentConfig base;
  base.workload = make_chain();
  base.controller = ControllerKind::kIdealOracle;
  base.surge_mult = 1.75;
  base.surge_len = 4 * kSecond;   // the paper's 4s surge
  base.surge_period = 10 * kSecond;
  base.warmup = args.quick ? 2 * kSecond : 5 * kSecond;
  base.duration = args.quick ? 12 * kSecond : 30 * kSecond;
  base.ideal_drain_window = 150 * kMillisecond;
  base.free_headroom = 3.0;  // deep pool: isolate detection latency
  base.record_alloc_timelines = true;
  base.trace_sample_interval = 10 * kMillisecond;

  const ProfileResult profile = profile_workload(base.workload, 1);

  struct Cell {
    SimTime delay;
    RepStats stats;
    double peak_cores;
  };
  std::vector<Cell> cells;
  for (SimTime delay : {200 * kMicrosecond, 500 * kMillisecond, 1 * kSecond}) {
    ExperimentConfig cfg = base;
    cfg.ideal_detection_delay = delay;
    Cell cell;
    cell.delay = delay;
    cell.stats = run_replicated(cfg, profile, args.sweep());
    ExperimentConfig one = cfg;
    one.seed = args.seed;
    cell.peak_cores = peak_total_cores(run_experiment(one, profile));
    cells.push_back(std::move(cell));
  }

  const double initial =
      static_cast<double>(base.workload.total_initial_cores());
  TablePrinter table({"detection delay", "VV (ms*s)", "VV vs 0.2ms",
                      "peak cores", "peak extra", "extra vs 0.2ms"});
  auto csv = open_csv(args, "fig4_detection_delay");
  if (csv) {
    csv->cell("delay_ns").cell("vv_ms_s").cell("peak_cores");
    csv->end_row();
  }
  const double vv0 = cells.front().stats.vv;
  const double extra0 = std::max(1e-9, cells.front().peak_cores - initial);
  for (const Cell& c : cells) {
    const double extra = c.peak_cores - initial;
    // A 0.2ms detection can genuinely zero out the violation volume in the
    // simulator (the queue never forms); the ratio column then degenerates.
    const std::string vv_ratio =
        vv0 > 0.01 ? fmt_ratio(c.stats.vv / vv0, 1)
                   : (c.stats.vv <= 0.01 ? "1.0x" : ">>1 (0.2ms absorbs all)");
    table.add_row({format_time(c.delay), fmt_double(c.stats.vv, 2), vv_ratio,
                   fmt_double(c.peak_cores, 1), fmt_double(extra, 1),
                   fmt_ratio(extra / extra0, 2)});
    if (csv) {
      csv->cell(static_cast<long long>(c.delay)).cell(c.stats.vv)
          .cell(c.peak_cores);
      csv->end_row();
    }
  }
  table.print();
  if (cells.size() >= 3 && cells[1].stats.vv > 0.01) {
    std::printf("VV(1s) / VV(0.5s) = %.1fx (paper: 24/4.75 ~ 5.1x)\n",
                cells[2].stats.vv / cells[1].stats.vv);
  }
  std::printf(
      "\nPaper shape: VV grows super-linearly with detection delay\n"
      "(1s is ~24x the 0.2ms case, 0.5s is ~4.75x), and slower detection\n"
      "needs 40-75%% more cores to drain the accumulated queue.\n");
  return 0;
}
