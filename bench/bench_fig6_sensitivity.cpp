// Fig. 6: execution time vs allocated cores (sensitivity curves).
//
// The paper plots two socialNetwork services: post-storage (steep curve —
// upscaling it buys a lot) and user-timeline near its downscale threshold
// (flat curve — it hogs cores for no benefit). This bench sweeps core
// allocations for the readUserTimeline services under steady base load and
// prints each service's measured curve plus the derived sens[] values.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

namespace {

// Measured mean execMetric of `service` when it runs with `cores`.
double exec_at_cores(const WorkloadInfo& w, int service, int cores,
                     const BenchArgs& args) {
  // A static run with one service's allocation overridden. Measured at
  // 1.4x the base rate — the loaded regime where Fig. 6's gradient lives
  // (at the calm base point the curve is flat beyond the demand).
  WorkloadInfo mod = w;
  mod.initial_cores[static_cast<std::size_t>(service)] = cores;
  WorkloadInfo scaled = mod;
  scaled.base_rate_rps = mod.base_rate_rps * 14.0;
  const ProfileResult p = profile_workload(scaled, 1, 2.0, args.seed);
  // Targets store 2x the measured execMetric.
  return p.targets.of(service).expected_exec_metric_ns / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Fig. 6 - sensitivity curves (readUserTimeline, 1.4x load)");

  const WorkloadInfo w = make_social_read_user_timeline();
  // The two services the paper plots.
  const int post_storage = 3;   // steep: bottleneck tier
  const int user_timeline = 1;  // flattens once past its demand

  auto csv = open_csv(args, "fig6_sensitivity");
  if (csv) {
    csv->cell("service").cell("cores").cell("exec_metric_us").cell("sens");
    csv->end_row();
  }

  for (int svc : {post_storage, user_timeline}) {
    const std::string name = w.spec.services[static_cast<std::size_t>(svc)].name;
    std::printf("\n%s:\n", name.c_str());
    TablePrinter table({"cores", "execMetric (us)", "sens[cores]"});
    std::vector<double> exec;
    const int max_cores = 7;
    for (int c = 1; c <= max_cores; ++c) {
      exec.push_back(exec_at_cores(w, svc, c, args));
    }
    for (int c = 1; c <= max_cores; ++c) {
      const std::size_t i = static_cast<std::size_t>(c - 1);
      // sens[c] = 1 - exec[c+1]/exec[c] (paper III-C).
      const std::string sens =
          c < max_cores ? fmt_double(1.0 - exec[i + 1] / exec[i], 3) : "-";
      table.add_row({std::to_string(c), fmt_double(exec[i] / 1000.0, 1), sens});
      if (csv) {
        csv->cell(name).cell(c).cell(exec[i] / 1000.0)
            .cell(c < max_cores ? 1.0 - exec[i + 1] / exec[i] : 0.0);
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nPaper shape: both curves drop steeply until the service's demand is\n"
      "covered, then flatten; sens[] falls below the 0.02 revocation\n"
      "threshold exactly where extra cores stop buying latency — which is\n"
      "what lets Escalator reclaim hogged cores (Fig. 6 right).\n");
  return 0;
}
