// Fig. 14: core allocations over time for readUserTimeline under a 10s
// 1.75x surge starting at t=15s.
//
// Paper shape: Parties and CaladanAlgo keep feeding cores to
// user-timeline-service (the container HOLDING the implicit threadpool
// queue), starving the downstream post-storage tier; SurgeGuard spreads
// cores across the task graph from the moment the surge is detected and
// reverses sensitivity-poor allocations mid-surge.
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "fig14_alloc_timeline");
  if (csv) {
    csv->cell("controller").cell("service").cell("t_s").cell("cores");
    csv->end_row();
  }

  const WorkloadInfo w = make_social_read_user_timeline();
  const ProfileResult profile = profile_workload(w, 1);

  for (ControllerKind kind :
       {ControllerKind::kParties, ControllerKind::kCaladan,
        ControllerKind::kSurgeGuard}) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.controller = kind;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 30 * kSecond;
    // One 10s surge at 15s (paper's setup: surge over [15s, 25s]).
    cfg.pattern_override = SpikePattern::surges(
        w.base_rate_rps, 1.75, 10 * kSecond, 60 * kSecond, 15 * kSecond);
    cfg.record_alloc_timelines = true;
    cfg.trace_sample_interval = 1 * kSecond;
    cfg.seed = args.seed;
    const ExperimentResult r = run_experiment(cfg, profile);

    print_banner("Fig. 14 - " + std::string(to_string(kind)) +
                 ": cores per service over time (surge 15s-25s)");
    std::vector<std::string> headers{"service"};
    for (SimTime t = 10 * kSecond; t <= 30 * kSecond; t += 2 * kSecond) {
      headers.push_back(std::to_string(t / kSecond) + "s");
    }
    TablePrinter table(headers);
    for (const ContainerTrace& trace : r.alloc_traces) {
      std::vector<std::string> row{trace.name};
      for (SimTime t = 10 * kSecond; t <= 30 * kSecond; t += 2 * kSecond) {
        double v = 0;
        for (const auto& p : trace.cores) {
          if (p.time <= t) v = p.value;
        }
        row.push_back(fmt_double(v, 0));
      }
      table.add_row(std::move(row));
      if (csv) {
        for (const auto& p : trace.cores) {
          csv->cell(to_string(kind)).cell(trace.name)
              .cell(to_seconds(p.time)).cell(p.value);
          csv->end_row();
        }
      }
    }
    table.print();

    // The paper's headline number: what share of all application cores does
    // user-timeline-service hold at the height of the surge?
    double ut_cores = 0, total = 0;
    for (const ContainerTrace& trace : r.alloc_traces) {
      double v = 0;
      for (const auto& p : trace.cores) {
        if (p.time <= 24 * kSecond) v = p.value;
      }
      total += v;
      if (trace.name.find("user-timeline-service") != std::string::npos) {
        ut_cores = v;
      }
    }
    std::printf("user-timeline-service holds %.0f%% of application cores at "
                "t=24s\n", 100.0 * ut_cores / std::max(1.0, total));
  }
  std::printf(
      "\nPaper shape: Parties/Caladan let user-timeline-service absorb the\n"
      "free pool (it shows the worst execTime because it holds the implicit\n"
      "queue) while post-storage-* starve; SurgeGuard spreads allocations\n"
      "downstream and revokes insensitive cores mid-surge.\n");
  return 0;
}
