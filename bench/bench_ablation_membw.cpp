// Ablation (§VII "Extending SurgeGuard to Other Resources"): shared
// memory-bandwidth contention.
//
// The paper names memory bandwidth as the natural next resource for
// SurgeGuard to manage. This bench enables the per-node bandwidth
// interference domain at three provisioning levels and shows (a) how
// contention amplifies surge damage for every controller — upscaled cores
// buy less when the node's bandwidth saturates — and (b) that SurgeGuard's
// relative advantage persists under contention (its sensitivity profile
// observes the diminished returns directly).
#include "bench_common.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  auto csv = open_csv(args, "ablation_membw");
  if (csv) {
    csv->cell("bw_gbs").cell("controller").cell("vv_ms_s").cell("avg_cores");
    csv->end_row();
  }

  const WorkloadInfo w = make_chain();
  const ProfileResult uncontended_profile = profile_workload(w, 1);

  struct Level {
    const char* label;
    double bw_gbs;  // <= 0: contention model off
  };
  for (const Level& level : {Level{"no contention model", 0.0},
                             Level{"ample bandwidth (200 GB/s)", 200.0},
                             Level{"constrained bandwidth (48 GB/s)", 48.0}}) {
    print_banner("membw ablation - CHAIN 1.75x surges, " +
                 std::string(level.label));
    TablePrinter table({"controller", "VV (ms*s)", "avg cores",
                        "VV vs Parties"});
    double parties_vv = 0.0;
    for (ControllerKind kind :
         {ControllerKind::kParties, ControllerKind::kSurgeGuard}) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.controller = kind;
      cfg.surge_mult = 1.75;
      cfg.surge_len = 2 * kSecond;
      args.apply_timing(cfg);
      if (level.bw_gbs > 0.0) {
        MemBwDomain::Params bw;
        bw.node_bw_gbs = level.bw_gbs;
        bw.demand_per_busy_core_gbs = 6.0;
        cfg.membw = bw;
      }
      // Profile under the same contention regime the experiment runs in.
      const ProfileResult profile =
          level.bw_gbs > 0.0 ? profile_workload(cfg.workload, 1)
                             : uncontended_profile;
      const RepStats stats = run_replicated(cfg, profile, args.sweep());
      if (kind == ControllerKind::kParties) parties_vv = stats.vv;
      table.add_row({to_string(kind), fmt_double(stats.vv, 2),
                     fmt_double(stats.cores, 2),
                     parties_vv > 0 ? fmt_ratio(stats.vv / parties_vv) : "-"});
      if (csv) {
        csv->cell(level.bw_gbs).cell(to_string(kind)).cell(stats.vv)
            .cell(stats.cores);
        csv->end_row();
      }
    }
    table.print();
  }
  std::printf(
      "\nExpected shape: with constrained bandwidth, the same surge produces\n"
      "a larger violation volume for every controller (extra cores return\n"
      "less once the node bandwidth saturates), but the SurgeGuard/Parties\n"
      "ordering is preserved.\n");
  return 0;
}
