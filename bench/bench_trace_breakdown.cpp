// Trace-driven surge latency decomposition (fig10-style micro-surges).
//
// Runs CHAIN under 2ms surges at 20x the base rate with tracing on and
// decomposes where traced requests spend their time, per service: execution
// vs CPU queueing vs connection-pool waiting vs network, plus the fraction
// of visit time the serving container ran above base frequency. Comparing
// Escalator alone against full SurgeGuard shows the paper's FirstResponder
// story at request granularity: the boost-active fraction jumps while queue
// fractions shrink. Also prints the critical paths of the slowest kept
// requests and writes a Chrome trace_event JSON of the SurgeGuard run to
// bench_out/trace_breakdown.json (open in Perfetto / chrome://tracing).
#include "bench_common.hpp"

#include <fstream>

#include "trace/export.hpp"

using namespace sg;
using namespace sg::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner("Trace-driven latency breakdown: Escalator vs SurgeGuard");

  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);

  auto csv = open_csv(args, "trace_breakdown");
  if (csv) {
    csv->cell("controller").cell("service").cell("visits")
        .cell("avg_visit_us").cell("exec_frac").cell("cpu_queue_frac")
        .cell("conn_wait_frac").cell("boost_frac");
    csv->end_row();
  }

  for (ControllerKind kind :
       {ControllerKind::kEscalator, ControllerKind::kSurgeGuard}) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.controller = kind;
    // 20x instantaneous rate, 2ms surges, one per second (Fig. 10's regime
    // where FirstResponder matters most).
    cfg.pattern_override = SpikePattern::surges(
        w.base_rate_rps, 20.0, 2 * kMillisecond, 1 * kSecond, 3 * kSecond);
    cfg.warmup = 2 * kSecond;
    cfg.duration = args.quick ? 4 * kSecond : 10 * kSecond;
    cfg.vv_window = 1 * kMillisecond;
    cfg.seed = args.seed;
    cfg.trace_enabled = true;
    cfg.trace_capacity = 1u << 16;

    const ExperimentResult r = run_experiment(cfg, profile);
    const TraceReport& tr = *r.trace;

    std::printf("\n--- %s: %llu traces kept (%llu SLO violators), "
                "%llu controller decisions ---\n",
                to_string(kind),
                static_cast<unsigned long long>(tr.stats.requests_kept),
                static_cast<unsigned long long>(tr.stats.slo_violators_kept),
                static_cast<unsigned long long>(tr.stats.decisions_recorded));
    breakdown_table(tr).print();

    std::printf("\nCritical paths of the slowest requests:\n");
    critical_path_table(tr, 3).print();

    if (csv) {
      for (const BreakdownRow& row : latency_breakdown(tr)) {
        csv->cell(to_string(kind)).cell(row.service)
            .cell(static_cast<long long>(row.visits))
            .cell(row.avg_visit_us).cell(row.exec_frac)
            .cell(row.cpu_queue_frac).cell(row.conn_wait_frac)
            .cell(row.boost_frac);
        csv->end_row();
      }
    }

    if (kind == ControllerKind::kSurgeGuard) {
      ::mkdir("bench_out", 0755);
      std::ofstream out("bench_out/trace_breakdown.json", std::ios::binary);
      if (out) {
        out << chrome_trace_json(tr);
        std::printf("\nwrote bench_out/trace_breakdown.json "
                    "(load in Perfetto to inspect)\n");
      }
    }
  }

  std::printf(
      "\nPaper shape: under micro-surges SurgeGuard's FirstResponder raises\n"
      "the boost-active fraction within microseconds of a slack violation,\n"
      "so traced requests show smaller CPU-queue fractions than Escalator\n"
      "alone, whose averaged metrics react only after the surge has queued.\n");
  return 0;
}
