// Quickstart: run one surge experiment with SurgeGuard vs Parties on the
// CHAIN microbenchmark and print the headline numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"

int main() {
  using namespace sg;

  // 1. Pick a workload from the Table III catalog.
  const WorkloadInfo workload = make_chain();

  // 2. Profile it at low load once; targets are shared by all controllers
  //    (paper §IV "SurgeGuard Parameters": 2x the low-load values).
  const ProfileResult profile = profile_workload(workload, /*nodes=*/1);
  std::printf("low-load mean e2e latency: %.2f ms (p98 %.2f ms)\n",
              to_millis(profile.low_load_mean_latency),
              to_millis(profile.low_load_p98));

  // 3. Describe the experiment: 2s surges at 1.75x the base rate, every
  //    10s, measured for 30s after a 5s warmup.
  ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 2 * kSecond;
  cfg.seed = 7;

  // 4. Run each controller on the identical setup.
  TablePrinter table({"controller", "VV (ms*s)", "p98 (ms)", "avg cores",
                      "energy (J)", "throughput (rps)", "FR boosts"});
  for (ControllerKind kind :
       {ControllerKind::kStatic, ControllerKind::kParties,
        ControllerKind::kCaladan, ControllerKind::kSurgeGuard}) {
    cfg.controller = kind;
    const ExperimentResult r = run_experiment(cfg, profile);
    table.add_row({to_string(kind), fmt_double(r.load.violation_volume_ms_s, 2),
                   fmt_double(to_millis(r.load.p98), 2),
                   fmt_double(r.avg_cores, 1), fmt_double(r.energy_joules, 1),
                   fmt_double(r.load.throughput_rps, 0),
                   std::to_string(r.fr_boosts)});
  }
  print_banner("CHAIN, 1.75x surge, 2s every 10s");
  table.print();
  return 0;
}
