// Methodology example: finding the knee of the load-latency curve.
//
// The paper's artifact sets each experiment's base rate "slightly below the
// knee of the load latency curve achieved using our initial allocations".
// This example reproduces that methodology: sweep the request rate on a
// static allocation, print the latency curve, and report where the knee
// lands relative to the catalog's calibrated base rate.
//
//   ./build/examples/load_latency_curve [workload]
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"

using namespace sg;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "chain";
  const WorkloadInfo w = workload_by_name(name);
  const ProfileResult profile = profile_workload(w, 1);

  print_banner("load-latency curve: " + w.spec.name +
               " (static initial allocation)");
  TablePrinter table({"rate (rps)", "fraction of base", "mean (ms)",
                      "p98 (ms)", "p98 / low-load"});
  const double low_p98 = to_millis(profile.low_load_p98);

  double knee_rate = 0.0;
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.35, 1.5}) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.controller = ControllerKind::kStatic;
    cfg.pattern_override =
        SpikePattern::steady(w.base_rate_rps * frac);
    cfg.warmup = 2 * kSecond;
    cfg.duration = 6 * kSecond;
    cfg.seed = 17;
    const ExperimentResult r = run_experiment(cfg, profile);
    const double p98_ms = to_millis(r.load.p98);
    const double blowup = low_p98 > 0 ? p98_ms / low_p98 : 0.0;
    table.add_row({fmt_double(w.base_rate_rps * frac, 0), fmt_double(frac, 2),
                   fmt_double(r.load.mean_latency_ns / 1e6, 2),
                   fmt_double(p98_ms, 2), fmt_ratio(blowup, 2)});
    // First rate where p98 exceeds 2x the low-load tail: past the knee.
    if (knee_rate == 0.0 && blowup > 2.0) {
      knee_rate = w.base_rate_rps * frac;
    }
  }
  table.print();

  if (knee_rate > 0.0) {
    std::printf(
        "\nknee (p98 > 2x low-load tail) near %.0f rps; catalog base rate "
        "%.0f rps sits at %.0f%% of it — \"slightly below the knee\", as the "
        "artifact prescribes.\n",
        knee_rate, w.base_rate_rps, 100.0 * w.base_rate_rps / knee_rate);
  } else {
    std::printf("\nno knee within the swept range (allocation has headroom "
                "beyond 1.5x base).\n");
  }
  return 0;
}
