// Calibration probe: inspects the operating point of each catalog workload.
//
// Prints, per service: low-load vs base-load execMetric and timeFromStart,
// utilization, queueBuildup, and pool sizes — then runs SurgeGuard on a
// STEADY (no-surge) load to verify the fast path is quiet when nothing is
// wrong (FirstResponder must not fire on base-load jitter).
//
//   ./build/examples/calibration_probe [workload]
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"

using namespace sg;

namespace {

struct ProbeStats {
  std::vector<double> exec_metric;
  std::vector<double> tfs;
  std::vector<double> queue_buildup;
  std::vector<double> util;
  std::vector<std::string> names;
};

// Runs a steady load at `rate_frac` of base with a given controller and
// collects per-service lifetime averages.
ProbeStats probe(const WorkloadInfo& w, double rate_frac, ControllerKind kind,
                 const ProfileResult& prof, std::uint64_t* fr_boosts) {
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.controller = kind;
  cfg.surge_len = 0;  // steady
  cfg.warmup = 3 * kSecond;
  cfg.duration = 10 * kSecond;
  cfg.seed = 11;
  SpikePattern pattern = SpikePattern::steady(w.base_rate_rps * rate_frac);
  cfg.pattern_override = pattern;
  cfg.record_alloc_timelines = true;
  const ExperimentResult r = run_experiment(cfg, prof);
  if (fr_boosts) *fr_boosts = r.fr_boosts;

  // Re-derive per-service stats with a dedicated instrumented run: the
  // public ExperimentResult does not expose runtime metrics, so probe via a
  // fresh profile-style run at the target rate.
  ProbeStats out;
  (void)r;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "chain";
  const WorkloadInfo w = workload_by_name(name);

  print_banner("calibration probe: " + w.spec.name);
  const ProfileResult prof_low = profile_workload(w, 1);
  std::printf("low-load mean e2e: %.3f ms\n",
              to_millis(prof_low.low_load_mean_latency));

  // Profile again at the BASE rate: the ratio base/low per container tells
  // how close to the knee each service runs.
  WorkloadInfo base_w = w;
  ProfileResult prof_base;
  {
    // profile_workload always probes at 10% of base_rate_rps; scale the
    // catalog rate so "10%" is the full base rate.
    base_w.base_rate_rps = w.base_rate_rps * 10.0;
    prof_base = profile_workload(base_w, 1);
  }

  TablePrinter table({"service", "exec low (us)", "exec base (us)", "ratio",
                      "tfs low (us)", "tfs base (us)", "tfs ratio"});
  for (std::size_t i = 0; i < w.spec.services.size(); ++i) {
    const int cid = static_cast<int>(i);
    const auto& lo = prof_low.targets.of(cid);
    const auto& hi = prof_base.targets.of(cid);
    // Targets are 2x the measured values; the ratio cancels the factor.
    table.add_row(
        {w.spec.services[i].name,
         fmt_double(lo.expected_exec_metric_ns / 2e3, 1),
         fmt_double(hi.expected_exec_metric_ns / 2e3, 1),
         fmt_double(hi.expected_exec_metric_ns /
                        std::max(1.0, lo.expected_exec_metric_ns), 2),
         fmt_double(
             static_cast<double>(lo.expected_time_from_start.ns()) / 2e3, 1),
         fmt_double(
             static_cast<double>(hi.expected_time_from_start.ns()) / 2e3, 1),
         fmt_double(
             static_cast<double>(hi.expected_time_from_start.ns()) /
                 std::max<double>(
                     1.0,
                     static_cast<double>(lo.expected_time_from_start.ns())),
             2)});
  }
  table.print();

  std::printf("base e2e mean: %.3f ms (%.2fx low-load)\n",
              to_millis(prof_base.low_load_mean_latency),
              static_cast<double>(prof_base.low_load_mean_latency) /
                  static_cast<double>(prof_low.low_load_mean_latency));

  // Steady-state quietness check: SurgeGuard on a surge-free base load.
  std::uint64_t boosts = 0;
  probe(w, 1.0, ControllerKind::kSurgeGuard, prof_low, &boosts);
  std::printf("FirstResponder boosts on steady base load (13s): %llu %s\n",
              static_cast<unsigned long long>(boosts),
              boosts < 100 ? "(quiet - OK)" : "(NOISY - recalibrate)");
  return 0;
}
