// Domain example: operating socialNetwork's readUserTimeline through load
// surges — the paper's flagship hidden-dependency workload (Fig. 14).
//
// Walks through: profiling targets at low load, choosing a QoS, running the
// same surge scenario under Parties and SurgeGuard, and reading the
// per-service core-allocation timelines to see WHERE each controller put
// the cores.
//
//   ./build/examples/social_network_surge [surge_mult]
#include <cstdio>
#include <cstdlib>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"

using namespace sg;

int main(int argc, char** argv) {
  const double surge_mult = argc > 1 ? std::atof(argv[1]) : 1.75;

  const WorkloadInfo w = make_social_read_user_timeline();
  std::printf("workload: %s (depth %d, %s, %s)\n", w.spec.name.c_str(),
              w.spec.depth(), to_string(w.spec.rpc),
              to_string(w.spec.threading));

  // Step 1: profile at low load. Targets = 2x measured (paper §IV).
  const ProfileResult profile = profile_workload(w, /*nodes=*/1);
  std::printf("low-load mean e2e %.2f ms -> QoS %.2f ms\n",
              to_millis(profile.low_load_mean_latency),
              to_millis(profile.low_load_mean_latency) * 2.0);

  // Step 2: the surge scenario — a single 10s surge mid-run, so the
  // allocation timelines are easy to read.
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.warmup = 5 * kSecond;
  cfg.duration = 30 * kSecond;
  cfg.pattern_override = SpikePattern::surges(
      w.base_rate_rps, surge_mult, 10 * kSecond, 60 * kSecond, 15 * kSecond);
  cfg.record_alloc_timelines = true;
  cfg.trace_sample_interval = 1 * kSecond;
  cfg.seed = 42;

  for (ControllerKind kind :
       {ControllerKind::kParties, ControllerKind::kSurgeGuard}) {
    cfg.controller = kind;
    const ExperimentResult r = run_experiment(cfg, profile);
    print_banner(std::string(to_string(kind)) + " under a " +
                 fmt_double(surge_mult, 2) + "x surge (15s-25s)");
    std::printf("violation volume %.2f ms*s | p98 %.2f ms | avg cores %.1f | "
                "energy %.0f J\n\n",
                r.load.violation_volume_ms_s, to_millis(r.load.p98),
                r.avg_cores, r.energy_joules);

    // Step 3: where did the cores go?
    TablePrinter table({"service", "pre-surge", "t=20s (mid)", "t=24s (late)",
                        "t=29s (post)"});
    for (const ContainerTrace& trace : r.alloc_traces) {
      auto at = [&](SimTime t) {
        double v = 0;
        for (const auto& p : trace.cores) {
          if (p.time <= t) v = p.value;
        }
        return fmt_double(v, 0);
      };
      table.add_row({trace.name, at(14 * kSecond), at(20 * kSecond),
                     at(24 * kSecond), at(29 * kSecond)});
    }
    table.print();
  }

  std::printf(
      "\nReading the tables: Parties piles cores onto user-timeline-service\n"
      "(it holds the implicit threadpool queue, so its execTime looks worst),\n"
      "while SurgeGuard's queueBuildup metric routes cores to the post-storage\n"
      "tier that actually needs them — and returns cores it cannot use.\n");
  return 0;
}
