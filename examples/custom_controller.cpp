// Extension example: writing YOUR OWN controller against the public API.
//
// The paper positions Escalator's candidate-selection as composable with
// any allocation algorithm (§VII). This example builds a deliberately
// simple "GreedyLatency" controller — upscale whatever container currently
// has the largest execTime overshoot, using queueBuildup only as a
// tiebreak — and races it against the built-ins on CHAIN.
//
// It demonstrates every integration point a controller implementor needs:
//   * ControllerEnv: the per-node view (node, metrics bus, topology, targets)
//   * MetricsSnapshot: the published runtime metrics
//   * Node::grant/revoke: the core ledger
//   * Container::set_frequency: the DVFS knob
//   * the experiment harness run directly against a custom controller
#include <cstdio>
#include <memory>

#include "common/csv.hpp"
#include "controllers/controller.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"
#include "workload/load_generator.hpp"

using namespace sg;

namespace {

class GreedyLatencyController final : public Controller {
 public:
  explicit GreedyLatencyController(ControllerEnv env) : env_(std::move(env)) {}

  std::string name() const override { return "greedy-latency"; }

  void start() override {
    env_.sim->schedule_periodic(kInterval, kInterval, [this]() {
      tick();
      return true;
    });
  }

  void tick() {
    Container* worst = nullptr;
    double worst_overshoot = 0.0;
    for (Container* c : env_.node->containers()) {
      const auto snap = env_.bus->latest(c->id());
      if (!snap || !snap->valid()) continue;
      const double limit = env_.targets.of(c->id()).expected_exec_metric_ns;
      if (limit <= 0) continue;
      const double overshoot =
          (snap->avg_exec_time_ns - limit) * snap->queue_buildup;
      if (overshoot > worst_overshoot) {
        worst_overshoot = overshoot;
        worst = c;
      }
    }
    if (worst != nullptr) {
      if (env_.node->grant(worst, 2) == 0) {
        worst->set_frequency(worst->frequency() + 300);
      }
    }
  }

 private:
  static constexpr SimTime kInterval = 200 * kMillisecond;
  ControllerEnv env_;
};

/// Runs one experiment with a caller-constructed controller. This is the
/// "bring your own controller" path: build the testbed pieces directly
/// instead of going through ControllerKind.
LoadGenResults run_with_custom_controller(const WorkloadInfo& w,
                                          const ProfileResult& profile) {
  Simulator sim(99);
  Cluster cluster(sim);
  // Single node sized like the harness would (init cores * 1.5 + reserved).
  const int init = w.total_initial_cores();
  cluster.add_node(init * 3 / 2 + 19, 19);
  Network network(sim);
  MetricsPlane metrics(1);

  AppSpec spec = w.spec;
  spec.autosize_pools(w.base_rate_rps, 15'000.0);
  Deployment dep;
  dep.initial_cores = w.initial_cores;
  dep.node_of_service.assign(w.spec.services.size(), 0);
  Application app(cluster, network, metrics, std::move(spec), dep);
  app.start_metric_publication();

  ControllerEnv env;
  env.sim = &sim;
  env.cluster = &cluster;
  env.node = &cluster.node(0);
  env.bus = &metrics.node_bus(0);
  env.app = &app;
  env.topology = app.topology();
  env.targets = profile.targets;
  GreedyLatencyController controller(std::move(env));

  LoadGenOptions gen_opts;
  gen_opts.pattern =
      SpikePattern::surges(w.base_rate_rps, 1.75, 2 * kSecond, 10 * kSecond,
                           6 * kSecond);
  gen_opts.qos = 2 * profile.low_load_mean_latency;
  gen_opts.warmup = 5 * kSecond;
  gen_opts.duration = 20 * kSecond;
  LoadGenerator gen(sim, network, app, gen_opts);

  controller.start();
  gen.start();
  sim.run_until(gen.measure_end());
  return gen.results();
}

}  // namespace

int main() {
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);

  print_banner("custom controller vs built-ins (CHAIN, 1.75x surges)");
  TablePrinter table({"controller", "VV (ms*s)", "p98 (ms)"});

  // Built-ins through the harness...
  for (ControllerKind kind : {ControllerKind::kParties,
                              ControllerKind::kSurgeGuard}) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.controller = kind;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 20 * kSecond;
    cfg.seed = 99;
    const ExperimentResult r = run_experiment(cfg, profile);
    table.add_row({to_string(kind), fmt_double(r.load.violation_volume_ms_s, 2),
                   fmt_double(to_millis(r.load.p98), 2)});
  }
  // ...and the hand-rolled one through the raw API.
  const LoadGenResults custom = run_with_custom_controller(w, profile);
  table.add_row({"GreedyLatency (custom)",
                 fmt_double(custom.violation_volume_ms_s, 2),
                 fmt_double(to_millis(custom.p98), 2)});
  table.print();
  std::printf(
      "\nThe custom controller plugs into the same ControllerEnv surface the\n"
      "built-ins use; see src/controllers/*.hpp for richer policies.\n");
  return 0;
}
