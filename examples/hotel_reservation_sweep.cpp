// Domain example: hotelReservation (gRPC, connection-per-request) under a
// surge-magnitude sweep — the workload family where queue-signal
// controllers (CaladanAlgo) go blind because there are no connection pools
// to queue on, and where sensitivity-aware allocation carries SurgeGuard.
//
//   ./build/examples/hotel_reservation_sweep [searchHotel|recommendHotel]
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/reporting.hpp"
#include "core/sweep.hpp"

using namespace sg;

int main(int argc, char** argv) {
  const std::string action = argc > 1 ? argv[1] : "recommendHotel";
  const WorkloadInfo w = workload_by_name(action);
  std::printf("workload: %s (%s, %s)\n", w.spec.name.c_str(),
              to_string(w.spec.rpc), to_string(w.spec.threading));

  const ProfileResult profile = profile_workload(w, 1);

  print_banner(w.action + ": violation volume across surge magnitudes");
  TablePrinter table({"surge", "Parties VV", "Caladan VV", "SurgeGuard VV",
                      "SG vs Parties", "Caladan energy vs SG"});
  for (double mult : {1.25, 1.5, 1.75, 2.0}) {
    ExperimentConfig cfg;
    cfg.workload = w;
    cfg.surge_mult = mult;
    cfg.surge_len = 2 * kSecond;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 20 * kSecond;

    SweepOptions sweep;
    sweep.replications = 3;
    sweep.trim = 0;
    sweep.threads = 1;

    RepStats stats[3];
    const ControllerKind kinds[3] = {ControllerKind::kParties,
                                     ControllerKind::kCaladan,
                                     ControllerKind::kSurgeGuard};
    for (int k = 0; k < 3; ++k) {
      cfg.controller = kinds[k];
      stats[k] = run_replicated(cfg, profile, sweep);
    }
    table.add_row(
        {fmt_double(mult, 2) + "x", fmt_double(stats[0].vv, 2),
         fmt_double(stats[1].vv, 2), fmt_double(stats[2].vv, 2),
         stats[0].vv > 0 ? fmt_ratio(stats[2].vv / stats[0].vv) : "-",
         stats[2].energy > 0 ? fmt_ratio(stats[1].energy / stats[2].energy)
                             : "-"});
  }
  table.print();
  std::printf(
      "\nWith connection-per-request RPCs there is no implicit queue, so\n"
      "CaladanAlgo's queue signal never fires: it neither upscales (huge VV)\n"
      "nor spends energy. SurgeGuard falls back on its execMetric check and\n"
      "sensitivity-aware placement, which is why it still beats Parties.\n");
  return 0;
}
