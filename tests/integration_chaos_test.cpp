// End-to-end chaos runs: SurgeGuard under packet loss and node slowdown
// with RPC retransmission enabled. Pins the recovery story: every issued
// request drains (zero stranded), the tail stays bounded, and the same run
// without retries demonstrably strands requests — which is why the
// retransmission layer exists.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sg {
namespace {

using namespace sg::literals;

// 10% loss for 1.5s plus one 4x node slowdown for 500ms, both inside the
// measurement window. No load surge: the disturbance is the fault.
constexpr const char* kChaosPlan =
    "drop:start_ms=3000,len_ms=1500,rate=0.1;"
    "slow:node=0,start_ms=5000,len_ms=500,factor=0.25";

ExperimentConfig chaos_config(bool faults, bool retry) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 2_s;
  cfg.duration = 6_s;
  cfg.surge_len = 0;
  cfg.seed = 31;
  if (faults) {
    std::string error;
    const auto plan = FaultPlan::parse(kChaosPlan, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    cfg.fault_plan = *plan;
  }
  cfg.rpc_retry.enabled = retry;
  cfg.drain = 6_s;
  return cfg;
}

TEST(IntegrationChaosTest, RetriesRecoverEveryRequest) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult r =
      run_experiment(chaos_config(/*faults=*/true, /*retry=*/true), profile);

  // The faults actually bit.
  EXPECT_GT(r.faults.packets_dropped, 0u);
  EXPECT_EQ(r.faults.node_slowdowns, 1u);
  // Both retransmission layers worked: lost child RPCs were retried inside
  // the app, lost client requests were retried by the generator.
  EXPECT_GT(r.app_rpc_retries, 0u);
  EXPECT_GT(r.load.retries, 0u);
  // Recovery is complete: conservation holds, nothing strands, nothing is
  // abandoned.
  EXPECT_GT(r.load.issued, 0u);
  EXPECT_EQ(r.load.issued,
            r.load.completed_total + r.load.dropped + r.load.outstanding);
  EXPECT_EQ(r.load.outstanding, 0u);
  EXPECT_EQ(r.load.dropped, 0u);
  EXPECT_EQ(r.load.completed_total, r.load.issued);
}

TEST(IntegrationChaosTest, TailBoundedVersusNoFaultBaseline) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult base =
      run_experiment(chaos_config(/*faults=*/false, /*retry=*/true), profile);
  const ExperimentResult chaos =
      run_experiment(chaos_config(/*faults=*/true, /*retry=*/true), profile);

  // Fault-free with retransmission enabled is quiet: the retry layer alone
  // must not perturb a healthy system.
  EXPECT_EQ(base.faults.packets_dropped, 0u);
  EXPECT_EQ(base.load.retries, 0u);
  EXPECT_EQ(base.app_rpc_retries, 0u);
  EXPECT_EQ(base.app_stray_responses, 0u);
  EXPECT_DOUBLE_EQ(base.load.violation_volume_ms_s, 0.0);

  // Chaos inflates the tail (a dropped packet costs at least one timeout)
  // but stays finite and bounded: the system recovers within the run
  // rather than collapsing into a retry storm.
  EXPECT_GT(chaos.load.p99, base.load.p99);
  EXPECT_LT(chaos.load.p99, 5_s);
  EXPECT_LT(chaos.load.max_latency, chaos.measure_end + 6_s);
  // Some backlogged completions slide past measure_end into the drain (they
  // still complete — the zero-stranded test pins that), so in-window
  // goodput dips but must not collapse.
  EXPECT_GT(chaos.load.throughput_rps, 0.7 * base.load.throughput_rps);
}

TEST(IntegrationChaosTest, WithoutRetriesLossStrandsRequests) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult r =
      run_experiment(chaos_config(/*faults=*/true, /*retry=*/false), profile);
  // Same faults, no retransmission: dropped packets strand their requests
  // forever. This is the failure mode the retry layer closes.
  EXPECT_GT(r.faults.packets_dropped, 0u);
  EXPECT_GT(r.load.outstanding, 0u);
  EXPECT_EQ(r.load.issued,
            r.load.completed_total + r.load.dropped + r.load.outstanding);
}

}  // namespace
}  // namespace sg
