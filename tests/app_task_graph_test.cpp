#include "app/task_graph.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

AppSpec two_service_chain() {
  AppSpec spec;
  spec.name = "t";
  ServiceSpec a;
  a.name = "a";
  a.work_ns_mean = 100;
  a.children = {1};
  ServiceSpec b;
  b.name = "b";
  b.work_ns_mean = 200;
  spec.services = {a, b};
  return spec;
}

TEST(TaskGraphTest, ValidSpecPasses) {
  AppSpec spec = two_service_chain();
  std::string err;
  EXPECT_TRUE(spec.validate(&err)) << err;
}

TEST(TaskGraphTest, EmptySpecFails) {
  AppSpec spec;
  EXPECT_FALSE(spec.validate());
}

TEST(TaskGraphTest, OutOfRangeChildFails) {
  AppSpec spec = two_service_chain();
  spec.services[1].children = {5};
  std::string err;
  EXPECT_FALSE(spec.validate(&err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(TaskGraphTest, SelfEdgeFails) {
  AppSpec spec = two_service_chain();
  spec.services[0].children = {0};
  EXPECT_FALSE(spec.validate());
}

TEST(TaskGraphTest, CycleFails) {
  AppSpec spec = two_service_chain();
  spec.services[1].children = {0};
  std::string err;
  EXPECT_FALSE(spec.validate(&err));
  EXPECT_NE(err.find("cycle"), std::string::npos);
}

TEST(TaskGraphTest, NegativeWorkFails) {
  AppSpec spec = two_service_chain();
  spec.services[0].work_ns_mean = -1;
  EXPECT_FALSE(spec.validate());
}

TEST(TaskGraphTest, DepthOfChain) {
  AppSpec spec = two_service_chain();
  EXPECT_EQ(spec.depth(), 2);
}

TEST(TaskGraphTest, DepthOfTreeIsLongestPath) {
  AppSpec spec;
  spec.name = "tree";
  ServiceSpec root, left, mid, deep;
  root.name = "root";
  root.children = {1, 2};
  left.name = "left";
  mid.name = "mid";
  mid.children = {3};
  deep.name = "deep";
  spec.services = {root, left, mid, deep};
  EXPECT_EQ(spec.depth(), 3);
  EXPECT_EQ(spec.edge_count(), 3);
}

TEST(TaskGraphTest, ZeroLoadLatencyEstimate) {
  AppSpec spec = two_service_chain();
  // e2e = client hop*2 + workA + (2 hops + workB)
  const double hop = 1000.0;
  EXPECT_DOUBLE_EQ(spec.estimate_e2e_latency_ns(hop),
                   2 * hop + 100 + 2 * hop + 200);
}

TEST(TaskGraphTest, ParallelFanoutUsesMaxChild) {
  AppSpec spec;
  ServiceSpec root, s1, s2;
  root.name = "r";
  root.work_ns_mean = 0;
  root.children = {1, 2};
  root.fanout = FanoutMode::kParallel;
  s1.name = "s1";
  s1.work_ns_mean = 100;
  s2.name = "s2";
  s2.work_ns_mean = 900;
  spec.services = {root, s1, s2};
  // parallel: max(2h+100, 2h+900) = 2h+900; sequential would be 4h+1000.
  EXPECT_DOUBLE_EQ(spec.estimate_subtree_latency_ns(0, 50.0), 2 * 50 + 900);
  spec.services[0].fanout = FanoutMode::kSequential;
  EXPECT_DOUBLE_EQ(spec.estimate_subtree_latency_ns(0, 50.0), 4 * 50 + 1000);
}

TEST(TaskGraphTest, AutosizePoolsLittlesLaw) {
  AppSpec spec = two_service_chain();
  spec.threading = ThreadingModel::kFixedThreadPool;
  // Edge a->b RTT at zero load = 2*hop + 200ns. rate in rps.
  const auto pools = spec.autosize_pools(1e6, 400.0, 1.0);
  ASSERT_EQ(pools.size(), 2u);
  ASSERT_EQ(pools[0].size(), 1u);
  // in-flight = 1e6/s * (800+200)ns = 1e-3 -> max(2, ceil(...)) = 2 floor.
  EXPECT_EQ(pools[0][0], 2);

  const auto pools2 = spec.autosize_pools(10e6, 400.0, 1.0);
  // in-flight = 10e6 * 1000ns = 10.
  EXPECT_EQ(pools2[0][0], 10);
}

TEST(TaskGraphTest, AutosizeHeadroomScales) {
  AppSpec spec = two_service_chain();
  spec.threading = ThreadingModel::kFixedThreadPool;
  const auto a = spec.autosize_pools(10e6, 400.0, 1.0);
  const auto b = spec.autosize_pools(10e6, 400.0, 2.0);
  EXPECT_EQ(b[0][0], 2 * a[0][0]);
}

TEST(TaskGraphTest, ConnectionPerRequestPoolsUnbounded) {
  AppSpec spec = two_service_chain();
  spec.threading = ThreadingModel::kConnectionPerRequest;
  const auto pools = spec.autosize_pools(1e6, 400.0);
  EXPECT_EQ(pools[0][0], -1);
}

TEST(TaskGraphTest, ToStringNames) {
  EXPECT_STREQ(to_string(ThreadingModel::kFixedThreadPool),
               "fixed-size threadpool");
  EXPECT_STREQ(to_string(ThreadingModel::kConnectionPerRequest),
               "connection-per-request");
  EXPECT_STREQ(to_string(RpcStyle::kThrift), "Thrift");
  EXPECT_STREQ(to_string(RpcStyle::kGrpc), "gRPC");
}

}  // namespace
}  // namespace sg
