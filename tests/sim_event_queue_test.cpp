#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sg {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&]() { order.push_back(3); });
  q.push(10, [&]() { order.push_back(1); });
  q.push(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  // Determinism requirement: simultaneous events fire in schedule order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(100, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeTracksEarliest) {
  EventQueue q;
  q.push(50, []() {});
  q.push(20, []() {});
  EXPECT_EQ(q.next_time(), 20);
  q.pop();
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10, [&]() { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(10, []() {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.push(10, []() {});
  q.pop().cb();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidAndUnknownIds) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(9999));  // never issued
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&]() { order.push_back(1); });
  const EventId mid = q.push(20, [&]() { order.push_back(2); });
  q.push(30, [&]() { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.push(1, []() {});
  q.push(2, []() {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(42, []() {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Insert times in a scrambled but reproducible pattern.
  for (int i = 0; i < 1000; ++i) {
    q.push((i * 7919) % 1000, []() {});
  }
  SimTime prev = 0;  // event times are non-negative
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, prev);
    prev = fired.time;
  }
}

}  // namespace
}  // namespace sg
