// Trace-driven regression gate: for a pinned config and seed, the
// per-service latency decomposition (exec / cpu-queue / conn-wait /
// downstream fractions and the visit count) must match golden values.
//
// The determinism gate (determinism_regression_test) catches NON-determinism
// — a run that differs from the previous run. This gate catches determinism
// with the WRONG numbers: a change that shifts where request time actually
// goes (scheduler accounting, pool sizing, network latency model, span
// attribution) reproduces perfectly yet silently rewrites the paper's
// Fig. 5-style story. Drift beyond the tolerances below means either a bug
// or an intentional behavior change; when intentional, regenerate with:
//
//   ./build/tests/trace_breakdown_gate_test --gtest_also_run_disabled_tests \
//       --gtest_filter='*PrintGolden*'
//
// and paste the printed table over kGolden.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "trace/export.hpp"

namespace sg {
namespace {

/// Pinned 4-node surge run with full tracing. Must not change without
/// regenerating the goldens.
ExperimentConfig gate_config() {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.nodes = 4;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;
  cfg.seed = 424242;
  cfg.surge_mult = 2.0;
  cfg.surge_len = 500 * kMillisecond;
  cfg.surge_period = 2 * kSecond;
  cfg.trace_enabled = true;
  cfg.trace_sample = 1.0;
  cfg.trace_capacity = 1u << 15;
  return cfg;
}

struct GoldenRow {
  const char* service;
  std::uint64_t visits;
  double avg_visit_us;
  double exec_frac;
  double cpu_queue_frac;
  double conn_wait_frac;
  double downstream_frac;
};

// Golden decomposition for gate_config() (generated from a verified run;
// see the header comment for the regeneration recipe).
const GoldenRow kGolden[] = {
    {"CHAIN/chain-0", 32768, 9010.687, 0.014, 0.213, 0.685, 0.088},
    {"CHAIN/chain-1", 32768, 712.286, 0.141, 0.001, 0.026, 0.833},
    {"CHAIN/chain-2", 32768, 513.259, 0.195, 0.001, 0.016, 0.788},
    {"CHAIN/chain-3", 32768, 324.514, 0.309, 0.001, 0.046, 0.644},
    {"CHAIN/chain-4", 32768, 129.172, 0.837, 0.163, 0.000, 0.000},
};

// Tolerances: fractions are of visit wall time (absolute drift), the mean
// visit wall is relative, visit counts are exact (the run is deterministic
// and every request is traced).
constexpr double kFracTol = 0.02;
constexpr double kAvgVisitRelTol = 0.05;

TEST(TraceBreakdownGate, PinnedRunMatchesGolden) {
  const ExperimentResult r = run_experiment(gate_config());
  ASSERT_TRUE(r.trace.has_value());
  const std::vector<BreakdownRow> rows = latency_breakdown(*r.trace);
  ASSERT_EQ(rows.size(), std::size(kGolden));

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BreakdownRow& row = rows[i];
    const GoldenRow& gold = kGolden[i];
    SCOPED_TRACE("service " + row.service);
    EXPECT_EQ(row.service, gold.service);
    EXPECT_EQ(row.visits, gold.visits);
    EXPECT_NEAR(row.avg_visit_us, gold.avg_visit_us,
                gold.avg_visit_us * kAvgVisitRelTol);
    EXPECT_NEAR(row.exec_frac, gold.exec_frac, kFracTol);
    EXPECT_NEAR(row.cpu_queue_frac, gold.cpu_queue_frac, kFracTol);
    EXPECT_NEAR(row.conn_wait_frac, gold.conn_wait_frac, kFracTol);
    EXPECT_NEAR(row.downstream_frac, gold.downstream_frac, kFracTol);
  }
}

// Regeneration helper (disabled; see header comment). Prints kGolden rows
// for the current build.
TEST(TraceBreakdownGate, DISABLED_PrintGolden) {
  const ExperimentResult r = run_experiment(gate_config());
  ASSERT_TRUE(r.trace.has_value());
  for (const BreakdownRow& row : latency_breakdown(*r.trace)) {
    std::printf("    {\"%s\", %llu, %.3f, %.3f, %.3f, %.3f, %.3f},\n",
                row.service.c_str(),
                static_cast<unsigned long long>(row.visits), row.avg_visit_us,
                row.exec_frac, row.cpu_queue_frac, row.conn_wait_frac,
                row.downstream_frac);
  }
}

}  // namespace
}  // namespace sg
