// Edge cases and failure injection across module boundaries: degenerate
// configurations that must not crash, corrupt the ledger, or wedge the
// event loop.
#include <gtest/gtest.h>

#include "app/application.hpp"
#include "controllers/escalator.hpp"
#include "controllers/parties.hpp"
#include "core/experiment.hpp"
#include "workload/load_generator.hpp"

namespace sg {
namespace {

using namespace sg::literals;

TEST(EdgeCaseTest, ZeroWorkServiceCompletes) {
  Simulator sim(1);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Network network(sim);
  MetricsPlane metrics(1);
  AppSpec spec;
  spec.name = "zero";
  ServiceSpec s;
  s.name = "noop";
  s.work_ns_mean = 0.0;
  s.work_sigma = 0.0;
  spec.services = {s};
  Application app(cluster, network, metrics, spec,
                  Deployment::single_node(spec, 0, 1));
  bool done = false;
  network.register_client_receiver([&](const RpcPacket&) { done = true; });
  RpcPacket pkt;
  pkt.request_id = 1;
  pkt.dst_container = app.entry_container();
  pkt.dst_node = 0;
  pkt.start_time = TimePoint::origin();
  network.send(kClientNode, pkt);
  sim.run_to_completion();
  EXPECT_TRUE(done);
}

TEST(EdgeCaseTest, SingleServiceAppUnderLoad) {
  // Degenerate task graph: no edges, no pools, no downstream.
  Simulator sim(2);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Network network(sim);
  MetricsPlane metrics(1);
  AppSpec spec;
  spec.name = "solo";
  ServiceSpec s;
  s.name = "only";
  s.work_ns_mean = 100'000;
  spec.services = {s};
  Application app(cluster, network, metrics, spec,
                  Deployment::single_node(spec, 0, 2));
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(5000);
  opts.qos = 10_ms;
  opts.warmup = 100_ms;
  opts.duration = 1_s;
  LoadGenerator gen(sim, network, app, opts);
  gen.start();
  sim.run_until(gen.measure_end());
  EXPECT_GT(gen.results().completed, 4000u);
}

TEST(EdgeCaseTest, ControllerWithZeroTargetsIsInert) {
  // Missing/zero targets (limit 0) must never divide by zero or upscale on
  // garbage ratios.
  Simulator sim(3);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Network network(sim);
  MetricsPlane metrics(1);
  AppSpec spec;
  spec.name = "notargets";
  ServiceSpec s;
  s.name = "svc";
  spec.services = {s};
  Application app(cluster, network, metrics, spec,
                  Deployment::single_node(spec, 0, 2));
  ControllerEnv env;
  env.sim = &sim;
  env.cluster = &cluster;
  env.node = &cluster.node(0);
  env.bus = &metrics.node_bus(0);
  env.app = &app;
  env.topology = app.topology();
  // env.targets deliberately empty.
  PartiesController parties(env);
  MetricsSnapshot snap;
  snap.container = app.entry_container();
  snap.visits = 10;
  snap.avg_exec_time_ns = 1e9;  // absurdly slow — but no target to compare
  snap.avg_exec_metric_ns = 1e9;
  metrics.node_bus(0).publish(snap);
  parties.tick();
  EXPECT_EQ(app.service_container(0).cores(), 2);
}

TEST(EdgeCaseTest, EscalatorOnEmptyNode) {
  // A node with no containers must tick harmlessly (multi-node deployments
  // can leave nodes bare).
  Simulator sim(4);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.add_node(64, 19);  // empty node 1
  Network network(sim);
  MetricsPlane metrics(2);
  AppSpec spec;
  spec.name = "onenode";
  ServiceSpec s;
  s.name = "svc";
  spec.services = {s};
  Deployment dep;
  dep.node_of_service = {0};
  dep.initial_cores = {2};
  Application app(cluster, network, metrics, spec, dep);
  ControllerEnv env;
  env.sim = &sim;
  env.cluster = &cluster;
  env.node = &cluster.node(1);  // the EMPTY node
  env.bus = &metrics.node_bus(1);
  env.app = &app;
  env.topology = app.topology();
  Escalator esc(std::move(env));
  esc.tick();  // no snapshots, no containers: no-op
  EXPECT_TRUE(esc.last_scores().empty());
}

TEST(EdgeCaseTest, SurgeLongerThanPeriodClamps) {
  // spike_len == period: permanently surged — the pattern must behave as a
  // steady stream at the spike rate, not wedge.
  SpikePattern p = SpikePattern::surges(1000, 2.0, 10_s, 10_s, 1_s);
  EXPECT_TRUE(p.in_spike(5_s));
  EXPECT_TRUE(p.in_spike(15_s));
  EXPECT_DOUBLE_EQ(p.rate_at(20_s), 2000.0);
}

TEST(EdgeCaseTest, ExperimentWithTinyWindow) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kStatic;
  cfg.warmup = 100_ms;
  cfg.duration = 200_ms;
  cfg.surge_len = 0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.load.completed, 0u);
}

TEST(EdgeCaseTest, RepeatedProfilingIsDeterministic) {
  const ProfileResult a = profile_workload(make_hotel_recommend(), 1);
  const ProfileResult b = profile_workload(make_hotel_recommend(), 1);
  EXPECT_EQ(a.low_load_mean_latency, b.low_load_mean_latency);
  for (const auto& [id, t] : a.targets.per_container) {
    EXPECT_DOUBLE_EQ(t.expected_exec_metric_ns,
                     b.targets.of(id).expected_exec_metric_ns);
  }
}

TEST(EdgeCaseTest, GrantOnFullNodeReturnsZero) {
  Simulator sim(5);
  Cluster cluster(sim);
  cluster.add_node(21, 19);  // 2 app cores total
  Container& c = cluster.add_container("c", 0, 2);
  EXPECT_EQ(cluster.node(0).free_cores(), 0);
  EXPECT_EQ(cluster.node(0).grant(&c, 4), 0);
  EXPECT_EQ(c.cores(), 2);
}

TEST(EdgeCaseTest, FrequencyBoundsRespectedUnderSpam) {
  Simulator sim(6);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Container& c = cluster.add_container("c", 0, 2);
  for (int i = 0; i < 100; ++i) {
    c.set_frequency(c.frequency() + 500);
  }
  EXPECT_EQ(c.frequency(), c.dvfs().max_mhz);
  for (int i = 0; i < 100; ++i) {
    c.set_frequency(c.frequency() - 500);
  }
  EXPECT_EQ(c.frequency(), c.dvfs().min_mhz);
}

}  // namespace
}  // namespace sg
