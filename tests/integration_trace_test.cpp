// End-to-end properties of sg::trace on a real simulated testbed:
//   * exact slack attribution — a traced request's exec + conn-wait +
//     net-hop spans tile its end-to-end latency to the nanosecond
//     (sequential CHAIN task graph);
//   * determinism — same seed, byte-identical exported trace JSON;
//   * zero observer effect — tracing disabled vs enabled leaves the event
//     count and every latency percentile bit-identical;
//   * surge runs produce breakdown rows, decisions, and kept violators.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "trace/export.hpp"

namespace sg {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 3 * kSecond;
  cfg.seed = 7;
  return cfg;
}

ExperimentConfig steady_traced_config() {
  ExperimentConfig cfg = base_config();
  cfg.surge_mult = 1.0;  // steady load: no surge windows
  cfg.trace_enabled = true;
  cfg.trace_sample = 1.0;
  cfg.trace_capacity = 1u << 16;  // keep everything: no ring eviction
  return cfg;
}

TEST(IntegrationTraceTest, SpanSegmentsTileEndToEndLatencyExactly) {
  const ExperimentResult r = run_experiment(steady_traced_config());
  ASSERT_TRUE(r.trace.has_value());
  const TraceReport& tr = *r.trace;
  ASSERT_GT(tr.traces.size(), 100u);
  EXPECT_EQ(tr.stats.traces_evicted, 0u);

  for (const RequestTrace& t : tr.traces) {
    Duration covered;
    for (const TraceSpan& s : t.spans) {
      if (s.kind == SpanKind::kVisit) continue;  // encloses exec/conn-wait
      covered += s.wall();
    }
    // CHAIN is sequential: exec + conn-wait + net segments are contiguous,
    // so their walls sum to the client-observed latency within 1 ns.
    EXPECT_NEAR(static_cast<double>(covered.ns()),
                static_cast<double>(t.latency.ns()), 1.0)
        << "request " << t.id;
    EXPECT_EQ(t.end - t.begin, t.latency) << "request " << t.id;
  }
}

TEST(IntegrationTraceTest, ExecSpansDecomposeIntoServedPlusQueue) {
  const ExperimentResult r = run_experiment(steady_traced_config());
  ASSERT_TRUE(r.trace.has_value());
  std::uint64_t exec_spans = 0;
  for (const RequestTrace& t : r.trace->traces) {
    for (const TraceSpan& s : t.spans) {
      if (s.kind != SpanKind::kExec) continue;
      ++exec_spans;
      // Served core share can never exceed the wall (it is an integral of a
      // quantity <= 1); allow float-integration slop of 1 ns.
      EXPECT_LE(s.cpu_served_ns, static_cast<double>(s.wall().ns()) + 1.0);
      EXPECT_GE(s.cpu_served_ns, 0.0);
    }
  }
  EXPECT_GT(exec_spans, 0u);
}

TEST(IntegrationTraceTest, SameSeedProducesByteIdenticalTraceJson) {
  const ExperimentResult a = run_experiment(steady_traced_config());
  const ExperimentResult b = run_experiment(steady_traced_config());
  ASSERT_TRUE(a.trace.has_value());
  ASSERT_TRUE(b.trace.has_value());
  const std::string ja = chrome_trace_json(*a.trace);
  const std::string jb = chrome_trace_json(*b.trace);
  EXPECT_GT(ja.size(), 1000u);
  EXPECT_EQ(ja, jb);
}

TEST(IntegrationTraceTest, TracingHasZeroObserverEffect) {
  ExperimentConfig off = base_config();
  ExperimentConfig on = base_config();
  on.trace_enabled = true;
  on.trace_sample = 0.25;  // sampling must not perturb the run either

  const ExperimentResult r_off = run_experiment(off);
  const ExperimentResult r_on = run_experiment(on);

  EXPECT_FALSE(r_off.trace.has_value());
  ASSERT_TRUE(r_on.trace.has_value());
  EXPECT_GT(r_on.trace->stats.requests_recorded, 0u);

  // Bit-identical simulation: same event count, same completions, same
  // percentiles. Tracing only observes; it never schedules or draws RNG.
  EXPECT_EQ(r_off.events_processed, r_on.events_processed);
  EXPECT_EQ(r_off.load.completed, r_on.load.completed);
  EXPECT_EQ(r_off.load.issued, r_on.load.issued);
  EXPECT_EQ(r_off.load.p50, r_on.load.p50);
  EXPECT_EQ(r_off.load.p98, r_on.load.p98);
  EXPECT_EQ(r_off.load.p99, r_on.load.p99);
  EXPECT_EQ(r_off.load.max_latency, r_on.load.max_latency);
  EXPECT_DOUBLE_EQ(r_off.avg_cores, r_on.avg_cores);
  EXPECT_DOUBLE_EQ(r_off.energy_joules, r_on.energy_joules);
}

TEST(IntegrationTraceTest, SurgeRunYieldsBreakdownDecisionsAndViolators) {
  ExperimentConfig cfg = base_config();
  // Fig. 10-style micro-surges: 20x instantaneous rate for 2 ms every
  // second — enough pressure for SLO violations and controller responses.
  cfg.pattern_override = SpikePattern::surges(
      cfg.workload.base_rate_rps, 20.0, 2 * kMillisecond, 1 * kSecond,
      1500 * kMillisecond);
  cfg.trace_enabled = true;
  cfg.trace_sample = 0.05;  // rely on tail sampling for the violators
  cfg.trace_capacity = 1u << 16;

  const ExperimentResult r = run_experiment(cfg);
  ASSERT_TRUE(r.trace.has_value());
  const TraceReport& tr = *r.trace;

  EXPECT_GT(tr.slo, Duration::zero());
  EXPECT_GT(tr.stats.requests_kept, 0u);
  EXPECT_GT(tr.stats.slo_violators_kept, 0u);
  EXPECT_GT(tr.stats.decisions_recorded, 0u);

  // One breakdown row per service of the deployed task graph.
  const auto rows = latency_breakdown(tr);
  EXPECT_EQ(rows.size(), cfg.workload.spec.services.size());
  EXPECT_EQ(tr.containers.size(), cfg.workload.spec.services.size());
  for (const BreakdownRow& row : rows) {
    EXPECT_GT(row.visits, 0u);
    EXPECT_GT(row.avg_visit_us, 0.0);
  }

  // Exported JSON stays structurally valid on a big report too.
  const std::string json = chrome_trace_json(tr);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Critical paths of the slowest requests exist and attribute their
  // latency fully (exec + queue + net + gap == latency).
  const auto paths = critical_paths(tr, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_GE(paths[0].latency, paths[1].latency);
  for (const CriticalPath& p : paths) {
    EXPECT_EQ(p.exec_ns + p.queue_ns + p.net_ns + p.gap_ns, p.latency);
    EXPECT_FALSE(p.segments.empty());
  }
}

TEST(IntegrationTraceTest, HeadSamplingKeepsRoughlyTheRequestedFraction) {
  ExperimentConfig cfg = steady_traced_config();
  cfg.trace_sample = 0.2;
  cfg.trace_keep_violators = false;  // isolate head sampling
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_TRUE(r.trace.has_value());
  const TraceStats& st = r.trace->stats;
  // With tail sampling off, only head-sampled requests are ever recorded,
  // so compare kept traces against every completion of the run.
  EXPECT_EQ(st.requests_discarded, 0u);
  const double kept_frac = static_cast<double>(st.requests_kept) /
                           static_cast<double>(r.load.completed_total);
  EXPECT_GT(kept_frac, 0.1);
  EXPECT_LT(kept_frac, 0.3);
}

}  // namespace
}  // namespace sg
