#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sg {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalMeanParameterization) {
  // lognormal_mean is parameterized by the TARGET mean, unlike the usual
  // (mu, sigma) convention.
  Rng rng(21);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean(300.0, 0.25);
  EXPECT_NEAR(sum / n, 300.0, 3.0);
}

TEST(RngTest, LognormalStrictlyPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.lognormal_mean(100.0, 0.5), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(25);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  // The fork advanced a; the two streams should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(33), b(33);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and run
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace sg
