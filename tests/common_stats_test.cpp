#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceAndStddev) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance({2.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), 1.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, PercentileNearestRank) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 50.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 98), 98.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 100.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
}

TEST(StatsTest, TrimmedMeanDropsExtremes) {
  // The paper's protocol: 17 points, drop best and worst, average 15.
  std::vector<double> xs;
  for (int i = 0; i < 15; ++i) xs.push_back(10.0);
  xs.push_back(1000.0);  // outlier high
  xs.push_back(0.001);   // outlier low
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 1), 10.0);
}

TEST(StatsTest, TrimmedMeanFallsBackWhenOvertrimmed) {
  EXPECT_DOUBLE_EQ(trimmed_mean({1.0, 2.0}, 1), 1.5);
  EXPECT_DOUBLE_EQ(trimmed_mean({7.0}, 3), 7.0);
}

TEST(StatsTest, TrimmedMeanZeroTrimIsMean) {
  EXPECT_DOUBLE_EQ(trimmed_mean({1.0, 2.0, 3.0}, 0), 2.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
  EXPECT_DOUBLE_EQ(min_of({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(max_of({3.0, -1.0, 2.0}), 3.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 0.0}), 0.0);   // non-positive input
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, -3.0}), 0.0);
}

}  // namespace
}  // namespace sg
