#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sg {
namespace {

RpcPacket make_packet(int dst_container, int dst_node) {
  RpcPacket p;
  p.request_id = 1;
  p.dst_container = dst_container;
  p.dst_node = dst_node;
  return p;
}

TEST(NetworkTest, DeliversToRegisteredReceiver) {
  Simulator sim;
  Network net(sim);
  int received = 0;
  net.register_receiver(7, [&](const RpcPacket& p) {
    EXPECT_EQ(p.dst_container, 7);
    ++received;
  });
  net.send(0, make_packet(7, 0));
  sim.run_to_completion();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.packets_delivered(), 1u);
}

TEST(NetworkTest, SameNodeFasterThanCrossNode) {
  Simulator sim;
  NetworkLatencyModel model;
  model.jitter = 0.0;
  Network net(sim, model);
  SimTime same = 0, cross = 0;
  net.register_receiver(1, [&](const RpcPacket&) { same = sim.now(); });
  net.register_receiver(2, [&](const RpcPacket&) { cross = sim.now(); });
  net.send(0, make_packet(1, 0));  // same node
  net.send(0, make_packet(2, 1));  // cross node
  sim.run_to_completion();
  EXPECT_EQ(same, model.same_node_ns);
  EXPECT_EQ(cross, model.cross_node_ns);
}

TEST(NetworkTest, JitterBoundsLatency) {
  Simulator sim;
  NetworkLatencyModel model;
  model.jitter = 0.1;
  Network net(sim, model);
  std::vector<SimTime> deliveries;
  SimTime sent_at = 0;
  net.register_receiver(1, [&](const RpcPacket&) {
    deliveries.push_back(sim.now() - sent_at);
  });
  for (int i = 0; i < 200; ++i) {
    sent_at = sim.now();
    net.send(0, make_packet(1, 0));
    sim.run_to_completion();
  }
  for (SimTime d : deliveries) {
    EXPECT_GE(d, static_cast<SimTime>(0.9 * static_cast<double>(model.same_node_ns)) - 1);
    EXPECT_LE(d, static_cast<SimTime>(1.1 * static_cast<double>(model.same_node_ns)) + 1);
  }
}

TEST(NetworkTest, ExtraDelayInjected) {
  Simulator sim;
  NetworkLatencyModel model;
  model.jitter = 0.0;
  Network net(sim, model);
  SimTime at = 0;
  net.register_receiver(1, [&](const RpcPacket&) { at = sim.now(); });
  net.set_extra_delay(1 * kMillisecond);
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(at, model.same_node_ns + 1 * kMillisecond);
}

TEST(NetworkTest, ClientReceiverGetsResponses) {
  Simulator sim;
  Network net(sim);
  int got = 0;
  net.register_client_receiver([&](const RpcPacket& p) {
    EXPECT_TRUE(p.is_response);
    ++got;
  });
  RpcPacket p = make_packet(kClientEndpoint, kClientNode);
  p.is_response = true;
  net.send(0, p);
  sim.run_to_completion();
  EXPECT_EQ(got, 1);
}

class CountingHook : public RxHook {
 public:
  void on_packet(const RpcPacket& pkt) override {
    seen.push_back(pkt.dst_container);
  }
  std::vector<int> seen;
};

TEST(NetworkTest, RxHookRunsBeforeReceiver) {
  Simulator sim;
  Network net(sim);
  CountingHook hook;
  std::vector<std::string> order;
  net.add_rx_hook(0, &hook);
  net.register_receiver(1, [&](const RpcPacket&) {
    // The hook must already have seen the packet (netif_receive_skb runs
    // before the destination container).
    EXPECT_EQ(hook.seen.size(), 1u);
    order.push_back("receiver");
  });
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(order.size(), 1u);
}

TEST(NetworkTest, HookOnlyOnDestinationNode) {
  Simulator sim;
  Network net(sim);
  CountingHook hook0, hook1;
  net.add_rx_hook(0, &hook0);
  net.add_rx_hook(1, &hook1);
  net.register_receiver(1, [](const RpcPacket&) {});
  net.register_receiver(2, [](const RpcPacket&) {});
  net.send(0, make_packet(1, 0));
  net.send(0, make_packet(2, 1));
  sim.run_to_completion();
  EXPECT_EQ(hook0.seen.size(), 1u);
  EXPECT_EQ(hook1.seen.size(), 1u);
  EXPECT_EQ(hook0.seen[0], 1);
  EXPECT_EQ(hook1.seen[0], 2);
}

TEST(NetworkTest, MultipleHooksChainInOrder) {
  Simulator sim;
  Network net(sim);
  CountingHook a, b;
  net.add_rx_hook(0, &a);
  net.add_rx_hook(0, &b);
  net.register_receiver(1, [](const RpcPacket&) {});
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(a.seen.size(), 1u);
  EXPECT_EQ(b.seen.size(), 1u);
}

// Appends a tag to a shared log, exposing the exact hook/receiver sequence.
class TaggingHook : public RxHook {
 public:
  TaggingHook(std::vector<std::string>* log, std::string tag)
      : log_(log), tag_(std::move(tag)) {}
  void on_packet(const RpcPacket&) override { log_->push_back(tag_); }

 private:
  std::vector<std::string>* log_;
  std::string tag_;
};

TEST(NetworkTest, HookChainRunsInRegistrationOrderPerDelivery) {
  Simulator sim;
  Network net(sim);
  std::vector<std::string> log;
  TaggingHook a(&log, "a"), b(&log, "b"), c(&log, "c");
  net.add_rx_hook(0, &a);
  net.add_rx_hook(0, &b);
  net.add_rx_hook(0, &c);
  net.register_receiver(1, [&](const RpcPacket&) { log.push_back("rx"); });
  net.send(0, make_packet(1, 0));
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  const std::vector<std::string> expected = {"a", "b", "c", "rx",
                                             "a", "b", "c", "rx"};
  EXPECT_EQ(log, expected);
}

// Scripted wire-level fault hook: returns one fixed fate for every packet.
class ScriptedFaultHook : public PacketFaultHook {
 public:
  PacketFate fate;
  int consulted = 0;
  PacketFate on_send(const RpcPacket&) override {
    ++consulted;
    return fate;
  }
};

TEST(NetworkFaultTest, DroppedPacketInvisibleToHooksAndReceiver) {
  Simulator sim;
  Network net(sim);
  ScriptedFaultHook fault;
  fault.fate.drop = true;
  net.set_fault_hook(&fault);
  CountingHook rx_hook;
  net.add_rx_hook(0, &rx_hook);
  int received = 0;
  net.register_receiver(1, [&](const RpcPacket&) { ++received; });
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(fault.consulted, 1);
  // Lost on the wire: neither the rx hook chain nor the receiver sees it.
  EXPECT_EQ(rx_hook.seen.size(), 0u);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.packets_dropped(), 1u);
  EXPECT_EQ(net.packets_delivered(), 0u);
}

TEST(NetworkFaultTest, DuplicatedPacketTraversesHookChainOncePerDelivery) {
  Simulator sim;
  NetworkLatencyModel model;
  model.jitter = 0.0;
  Network net(sim, model);
  ScriptedFaultHook fault;
  fault.fate.duplicate = true;
  net.set_fault_hook(&fault);
  CountingHook a, b;
  net.add_rx_hook(0, &a);
  net.add_rx_hook(0, &b);
  int received = 0;
  net.register_receiver(1, [&](const RpcPacket&) { ++received; });
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  // One send, consulted once, delivered twice; every hook sees each copy
  // exactly once (never zero, never doubled per copy).
  EXPECT_EQ(fault.consulted, 1);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(a.seen.size(), 2u);
  EXPECT_EQ(b.seen.size(), 2u);
  EXPECT_EQ(net.packets_duplicated(), 1u);
  EXPECT_EQ(net.packets_delivered(), 2u);
}

TEST(NetworkFaultTest, ExtraDelayShiftsDeliveryAndHooksSeeDelayedCopy) {
  Simulator sim;
  NetworkLatencyModel model;
  model.jitter = 0.0;
  Network net(sim, model);
  ScriptedFaultHook fault;
  fault.fate.extra_delay_ns = 1 * kMillisecond;
  net.set_fault_hook(&fault);
  CountingHook rx_hook;
  net.add_rx_hook(0, &rx_hook);
  SimTime at = 0;
  net.register_receiver(1, [&](const RpcPacket&) { at = sim.now(); });
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(at, model.same_node_ns + 1 * kMillisecond);
  // The delayed packet is still delivered (and hooked) exactly once.
  EXPECT_EQ(rx_hook.seen.size(), 1u);
  EXPECT_EQ(net.packets_delivered(), 1u);
  EXPECT_EQ(net.packets_dropped(), 0u);
}

TEST(NetworkFaultTest, ClearingFaultHookRestoresCleanDelivery) {
  Simulator sim;
  Network net(sim);
  ScriptedFaultHook fault;
  fault.fate.drop = true;
  net.set_fault_hook(&fault);
  net.set_fault_hook(nullptr);
  int received = 0;
  net.register_receiver(1, [&](const RpcPacket&) { ++received; });
  net.send(0, make_packet(1, 0));
  sim.run_to_completion();
  EXPECT_EQ(fault.consulted, 0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.packets_dropped(), 0u);
}

TEST(NetworkTest, PacketMetadataPreserved) {
  Simulator sim;
  Network net(sim);
  RpcPacket got;
  net.register_receiver(3, [&](const RpcPacket& p) { got = p; });
  RpcPacket sent = make_packet(3, 0);
  sent.start_time = TimePoint::at(12345);
  sent.upscale = 2;
  sent.call_id = 99;
  sent.src_container = 8;
  sent.src_node = 4;
  net.send(4, sent);
  sim.run_to_completion();
  EXPECT_EQ(got.start_time, TimePoint::at(12345));
  EXPECT_EQ(got.upscale, 2);
  EXPECT_EQ(got.call_id, 99u);
  EXPECT_EQ(got.src_container, 8);
  EXPECT_EQ(got.src_node, 4);
}

}  // namespace
}  // namespace sg
