#include "workload/load_generator.hpp"

#include <gtest/gtest.h>

#include "app/application.hpp"

namespace sg {
namespace {

using namespace sg::literals;

struct GenTestbed {
  Simulator sim{11};
  Cluster cluster{sim};
  Network network{sim};
  MetricsPlane metrics{1};
  std::unique_ptr<Application> app;

  GenTestbed() {
    cluster.add_node(64, 19);
    AppSpec spec;
    spec.name = "one";
    ServiceSpec s;
    s.name = "svc";
    s.work_ns_mean = 50'000;  // 50us: fast enough to keep up
    s.work_sigma = 0.0;
    spec.services = {s};
    app = std::make_unique<Application>(cluster, network, metrics,
                                        std::move(spec),
                                        Deployment::single_node(spec, 0, 8));
  }
};

TEST(LoadGeneratorTest, DeterministicPacingIssuesExpectedCount) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(1000);
  opts.poisson = false;
  opts.warmup = 1_s;
  opts.duration = 2_s;
  opts.qos = 10_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  const LoadGenResults r = gen.results();
  // 3 seconds at 1000 rps.
  EXPECT_NEAR(static_cast<double>(r.issued), 3000.0, 5.0);
  EXPECT_NEAR(r.throughput_rps, 1000.0, 10.0);
}

TEST(LoadGeneratorTest, PoissonRateMatches) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(2000);
  opts.poisson = true;
  opts.warmup = 1_s;
  opts.duration = 4_s;
  opts.qos = 10_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  const LoadGenResults r = gen.results();
  EXPECT_NEAR(static_cast<double>(r.issued), 10000.0, 300.0);
}

TEST(LoadGeneratorTest, SpikeRaisesIssueRate) {
  GenTestbed tb;
  LoadGenOptions opts;
  // 1s of 1000 rps, then a 1s spike at 3000, then 1s at 1000.
  opts.pattern = SpikePattern::surges(1000, 3.0, 1_s, 10_s, 1_s);
  opts.poisson = false;
  opts.warmup = 0;
  opts.duration = 3_s;
  opts.qos = 10_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  const LoadGenResults r = gen.results();
  EXPECT_NEAR(static_cast<double>(r.issued), 1000.0 + 3000.0 + 1000.0, 20.0);
}

TEST(LoadGeneratorTest, ShortSpikeNotSkippedByPacing) {
  // A 100us 20x spike between base-rate gaps must still produce extra
  // requests (boundary re-pacing).
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::surges(1000, 20.0, 100_us, 1_s, 500_ms);
  opts.poisson = false;
  opts.warmup = 0;
  opts.duration = 1_s;
  opts.qos = 100_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  const LoadGenResults r = gen.results();
  // Base alone would be ~1000; the spike adds ~20000*0.0001 = 2 requests.
  EXPECT_GT(r.issued, 1000u);
}

TEST(LoadGeneratorTest, LatencyRecordedOnlyInWindow) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(1000);
  opts.poisson = false;
  opts.warmup = 1_s;
  opts.duration = 1_s;
  opts.qos = 10_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end() + 1_s);  // run past the window
  const LoadGenResults r = gen.results();
  EXPECT_NEAR(static_cast<double>(r.completed), 1000.0, 10.0);
  EXPECT_GT(r.p50, 0);
  EXPECT_LE(r.p50, r.p98);
  EXPECT_LE(r.p98, r.p99);
}

TEST(LoadGeneratorTest, QosRecordedInResults) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(100);
  opts.poisson = false;
  opts.qos = 7_ms;
  opts.warmup = 100_ms;
  opts.duration = 500_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  EXPECT_EQ(gen.results().qos, 7_ms);
}

TEST(LoadGeneratorTest, StopHaltsIssuing) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(1000);
  opts.poisson = false;
  opts.warmup = 0;
  opts.duration = 10_s;
  opts.qos = 10_ms;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(500_ms);
  gen.stop();
  tb.sim.run_until(2_s);
  const LoadGenResults r = gen.results();
  EXPECT_NEAR(static_cast<double>(r.issued), 500.0, 5.0);
}

TEST(LoadGeneratorTest, ViolationVolumeZeroWhenFast) {
  GenTestbed tb;
  LoadGenOptions opts;
  opts.pattern = SpikePattern::steady(500);
  opts.poisson = false;
  opts.qos = 50_ms;  // generous QoS; service is ~50us + hops
  opts.warmup = 500_ms;
  opts.duration = 1_s;
  LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
  gen.start();
  tb.sim.run_until(gen.measure_end());
  EXPECT_DOUBLE_EQ(gen.results().violation_volume_ms_s, 0.0);
}

TEST(LoadGeneratorTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    GenTestbed tb;
    tb.sim.rng().reseed(seed);
    LoadGenOptions opts;
    opts.pattern = SpikePattern::steady(1000);
    opts.poisson = true;
    opts.warmup = 200_ms;
    opts.duration = 1_s;
    opts.qos = 10_ms;
    LoadGenerator gen(tb.sim, tb.network, *tb.app, opts);
    gen.start();
    tb.sim.run_until(gen.measure_end());
    return gen.results().issued;
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace sg
