// End-to-end request flow through the application model.
#include "app/application.hpp"

#include <gtest/gtest.h>

#include "workload/load_generator.hpp"

namespace sg {
namespace {

struct MiniTestbed {
  Simulator sim{7};
  Cluster cluster{sim};
  Network network;
  MetricsPlane metrics{1};
  std::unique_ptr<Application> app;

  explicit MiniTestbed(AppSpec spec, int cores_per_service = 4,
                       NetworkLatencyModel model = {}) : network(sim, model) {
    cluster.add_node(64, 19);
    Deployment dep = Deployment::single_node(spec, 0, cores_per_service);
    app = std::make_unique<Application>(cluster, network, metrics,
                                        std::move(spec), dep);
  }

  /// Sends one client request; returns (completed, latency).
  std::pair<bool, SimTime> run_one_request() {
    bool done = false;
    SimTime latency = 0;
    network.register_client_receiver([&](const RpcPacket& p) {
      done = true;
      latency = (sim.now_point() - p.start_time).ns();
    });
    RpcPacket pkt;
    pkt.request_id = 1;
    pkt.dst_container = app->entry_container();
    pkt.dst_node = app->entry_node();
    pkt.start_time = sim.now_point();
    network.send(kClientNode, pkt);
    sim.run_to_completion();
    return {done, latency};
  }
};

AppSpec chain_spec(int n, double work = 10'000.0) {
  AppSpec spec;
  spec.name = "chain";
  for (int i = 0; i < n; ++i) {
    ServiceSpec s;
    s.name = "s" + std::to_string(i);
    s.work_ns_mean = work;
    s.work_sigma = 0.0;  // deterministic for exact assertions
    if (i + 1 < n) s.children = {i + 1};
    spec.services.push_back(s);
  }
  return spec;
}

TEST(ApplicationTest, SingleRequestTraversesChain) {
  MiniTestbed tb(chain_spec(3));
  auto [done, latency] = tb.run_one_request();
  EXPECT_TRUE(done);
  EXPECT_GT(latency, 30'000);  // at least the CPU work
  EXPECT_EQ(tb.app->requests_completed(), 1u);
  EXPECT_EQ(tb.app->in_flight(), 0);
}

TEST(ApplicationTest, LatencyAccountsWorkAndHops) {
  NetworkLatencyModel model;
  model.jitter = 0.0;
  MiniTestbed tb(chain_spec(3), 4, model);
  auto [done, latency] = tb.run_one_request();
  ASSERT_TRUE(done);
  // 3 services x 10us work; hops: client->s0, s0->s1, s1->s2 and the three
  // responses = 6 x same_node... client hops are cross-node (client is
  // remote): 2 cross + 4 same.
  const SimTime expected = 3 * 10'000 + 2 * model.cross_node_ns +
                           4 * model.same_node_ns;
  EXPECT_EQ(latency, expected);
}

TEST(ApplicationTest, ParallelFanoutOverlapsChildren) {
  AppSpec par;
  par.name = "par";
  ServiceSpec root, s1, s2;
  root.name = "root";
  root.work_ns_mean = 0;
  root.work_sigma = 0;
  root.children = {1, 2};
  root.fanout = FanoutMode::kParallel;
  s1.name = "s1";
  s1.work_ns_mean = 500'000;
  s1.work_sigma = 0;
  s2.name = "s2";
  s2.work_ns_mean = 500'000;
  s2.work_sigma = 0;
  par.services = {root, s1, s2};

  AppSpec seq = par;
  seq.services[0].fanout = FanoutMode::kSequential;

  NetworkLatencyModel model;
  model.jitter = 0.0;
  MiniTestbed tb_par(par, 4, model);
  MiniTestbed tb_seq(seq, 4, model);
  auto [dp, lat_par] = tb_par.run_one_request();
  auto [ds, lat_seq] = tb_seq.run_one_request();
  ASSERT_TRUE(dp && ds);
  // Parallel: children overlap (distinct containers) -> ~one child latency.
  // Sequential: both children serialize.
  EXPECT_LT(lat_par, lat_seq);
  EXPECT_GT(lat_seq, 1'000'000);
  EXPECT_LT(lat_par, 1'000'000);
}

TEST(ApplicationTest, PostWorkRunsAfterChildren) {
  AppSpec spec = chain_spec(2);
  spec.services[0].post_work_ns_mean = 50'000;
  NetworkLatencyModel model;
  model.jitter = 0.0;
  MiniTestbed tb(spec, 4, model);
  auto [done, latency] = tb.run_one_request();
  ASSERT_TRUE(done);
  const SimTime expected = 2 * 10'000 + 50'000 + 2 * model.cross_node_ns +
                           2 * model.same_node_ns;
  EXPECT_EQ(latency, expected);
}

TEST(ApplicationTest, VisitRecordsCapturedPerContainer) {
  MiniTestbed tb(chain_spec(2));
  tb.run_one_request();
  const auto& m0 = tb.app->runtime_metrics(tb.app->service_container(0).id());
  const auto& m1 = tb.app->runtime_metrics(tb.app->service_container(1).id());
  EXPECT_EQ(m0.total_visits(), 1u);
  EXPECT_EQ(m1.total_visits(), 1u);
  // Upstream exec time includes downstream latency.
  EXPECT_GT(m0.lifetime_avg_exec_metric_ns(), m1.lifetime_avg_exec_metric_ns());
}

TEST(ApplicationTest, TimeFromStartGrowsDownstream) {
  MiniTestbed tb(chain_spec(3));
  tb.run_one_request();
  double prev = -1.0;
  for (int i = 0; i < 3; ++i) {
    const auto& m = tb.app->runtime_metrics(tb.app->service_container(i).id());
    EXPECT_GT(m.lifetime_avg_time_from_start_ns(), prev);
    prev = m.lifetime_avg_time_from_start_ns();
  }
}

TEST(ApplicationTest, UpscaleStampPropagatesAndDecrements) {
  MiniTestbed tb(chain_spec(4));
  // Stamp at service 1 with depth 2: services 2 and 3 should receive hints
  // (2 at depth 2, 3 at depth 1), service 1 itself receives none.
  tb.app->set_upscale_stamp(tb.app->service_container(1).id(), 2);
  tb.run_one_request();
  auto hint_received = [&](int svc) {
    // Hint state is only visible through the flushed snapshot.
    ContainerRuntimeMetrics& m = const_cast<ContainerRuntimeMetrics&>(
        tb.app->runtime_metrics(tb.app->service_container(svc).id()));
    return m.flush(tb.sim.now()).upscale_hint_received;
  };
  EXPECT_FALSE(hint_received(0));
  EXPECT_FALSE(hint_received(1));
  EXPECT_TRUE(hint_received(2));
  EXPECT_TRUE(hint_received(3));
}

TEST(ApplicationTest, StampDepthOneReachesOnlyChild) {
  MiniTestbed tb(chain_spec(4));
  tb.app->set_upscale_stamp(tb.app->service_container(1).id(), 1);
  tb.run_one_request();
  auto hint_received = [&](int svc) {
    ContainerRuntimeMetrics& m = const_cast<ContainerRuntimeMetrics&>(
        tb.app->runtime_metrics(tb.app->service_container(svc).id()));
    return m.flush(tb.sim.now()).upscale_hint_received;
  };
  EXPECT_TRUE(hint_received(2));
  EXPECT_FALSE(hint_received(3));
}

TEST(ApplicationTest, ClearingStampStopsHints) {
  MiniTestbed tb(chain_spec(3));
  tb.app->set_upscale_stamp(tb.app->service_container(0).id(), 3);
  tb.app->set_upscale_stamp(tb.app->service_container(0).id(), 0);
  tb.run_one_request();
  ContainerRuntimeMetrics& m = const_cast<ContainerRuntimeMetrics&>(
      tb.app->runtime_metrics(tb.app->service_container(1).id()));
  EXPECT_FALSE(m.flush(tb.sim.now()).upscale_hint_received);
}

TEST(ApplicationTest, TopologyMatchesSpec) {
  MiniTestbed tb(chain_spec(3));
  const AppTopology topo = tb.app->topology();
  const int c0 = tb.app->service_container(0).id();
  const int c1 = tb.app->service_container(1).id();
  const int c2 = tb.app->service_container(2).id();
  EXPECT_EQ(topo.entry, c0);
  EXPECT_EQ(topo.downstream.at(c0), std::vector<int>{c1});
  EXPECT_EQ(topo.downstream.at(c1), std::vector<int>{c2});
  EXPECT_TRUE(topo.downstream.at(c2).empty());
}

TEST(ApplicationTest, DownstreamOnNodeTransitive) {
  MiniTestbed tb(chain_spec(4));
  const AppTopology topo = tb.app->topology();
  const auto down = topo.downstream_on_node(tb.app->service_container(0).id(),
                                            0, tb.cluster);
  EXPECT_EQ(down.size(), 3u);  // all on node 0
}

TEST(ApplicationTest, MetricPublicationFlushesToBus) {
  MiniTestbed tb(chain_spec(2));
  tb.app->start_metric_publication();
  // Run a few requests across several publication intervals.
  tb.network.register_client_receiver([](const RpcPacket&) {});
  for (int i = 0; i < 5; ++i) {
    RpcPacket pkt;
    pkt.request_id = static_cast<RequestId>(i + 1);
    pkt.dst_container = tb.app->entry_container();
    pkt.dst_node = tb.app->entry_node();
    pkt.start_time = tb.sim.now_point();
    tb.network.send(kClientNode, pkt);
    tb.sim.run_until(tb.sim.now() + 60 * kMillisecond);
  }
  const auto snap =
      tb.metrics.node_bus(0).latest(tb.app->entry_container());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->window_end, 0);
}

TEST(ApplicationTest, DeploymentRoundRobinSpreads) {
  AppSpec spec = chain_spec(4);
  const Deployment d = Deployment::round_robin(spec, 2, 2);
  EXPECT_EQ(d.node_of_service, (std::vector<NodeId>{0, 1, 0, 1}));
}

}  // namespace
}  // namespace sg
