#include "controllers/centralized.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"
#include "core/experiment.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;
using namespace sg::literals;

CentralizedMLController::Options fast_ml() {
  CentralizedMLController::Options o;
  o.interval = 1_s;
  o.inference_latency = 200 * kMillisecond;
  return o;
}

TEST(CentralizedMLTest, DecisionsApplyAfterInferenceLatency) {
  ControllerTestbed tb;
  ControllerEnv env = tb.env(300.0);
  CentralizedMLController ml(tb.sim, tb.cluster, tb.metrics, env.targets,
                             fast_ml());
  // Saturate c1 so its demand estimate exceeds its allocation.
  for (int i = 0; i < 8; ++i) tb.c1().submit(1e12, []() {});
  tb.sim.run_until(500 * kMillisecond);
  tb.publish(tb.c1(), 900.0, 900.0);
  ml.tick();  // snapshot now, decision lands 200ms later
  EXPECT_EQ(tb.c1().cores(), 2);  // not yet
  tb.sim.run_until(tb.sim.now() + 250 * kMillisecond);
  EXPECT_GT(tb.c1().cores(), 2);  // applied
}

TEST(CentralizedMLTest, RightsizesIdleContainersDown) {
  ControllerTestbed tb;
  ControllerEnv env = tb.env(300.0);
  CentralizedMLController ml(tb.sim, tb.cluster, tb.metrics, env.targets,
                             fast_ml());
  tb.c1().set_cores(8);  // grossly oversized and idle
  tb.sim.run_until(1_s);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  ml.tick();  // establishes the busy baseline
  tb.sim.run_until(tb.sim.now() + 1_s);
  ml.tick();  // second snapshot has a real (idle) busy window
  tb.sim.run_until(tb.sim.now() + 300 * kMillisecond);
  EXPECT_LT(tb.c1().cores(), 8);
}

TEST(CentralizedMLTest, NeverBelowOneCore) {
  ControllerTestbed tb;
  ControllerEnv env = tb.env(300.0);
  CentralizedMLController ml(tb.sim, tb.cluster, tb.metrics, env.targets,
                             fast_ml());
  tb.sim.run_until(1_s);
  ml.tick();
  tb.sim.run_until(tb.sim.now() + 1_s);
  ml.tick();
  tb.sim.run_until(tb.sim.now() + 300 * kMillisecond);
  EXPECT_GE(tb.c1().cores(), 1);
  EXPECT_GE(tb.c2().cores(), 1);
}

TEST(CentralizedMLTest, SteadyStateLeanerThanParties) {
  // The ML-class controller's selling point: tight steady-state allocation.
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.surge_len = 0;  // steady state only
  cfg.warmup = 3_s;
  cfg.duration = 10_s;
  cfg.controller = ControllerKind::kCentralizedML;
  const ExperimentResult ml = run_experiment(cfg, profile);
  EXPECT_LE(ml.avg_cores, static_cast<double>(w.total_initial_cores()) + 0.5);
  EXPECT_GT(ml.load.throughput_rps, 0.95 * w.base_rate_rps);
}

TEST(CentralizedMLTest, TooSlowForShortSurges) {
  // A 500ms surge is over before the >1s-cadence controller can respond;
  // SurgeGuard handles it. This is Table I's core trade-off.
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.warmup = 3_s;
  cfg.duration = 10_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 500 * kMillisecond;
  cfg.surge_period = 5_s;
  cfg.controller = ControllerKind::kCentralizedML;
  const ExperimentResult ml = run_experiment(cfg, profile);
  cfg.controller = ControllerKind::kSurgeGuard;
  const ExperimentResult sg_res = run_experiment(cfg, profile);
  EXPECT_GT(ml.load.violation_volume_ms_s,
            2.0 * sg_res.load.violation_volume_ms_s);
}

TEST(CentralizedMLTest, HybridKeepsBothBenefits) {
  // Paper §VII: ML for steady-state rightsizing + SurgeGuard for surges.
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.warmup = 3_s;
  cfg.duration = 10_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 1_s;
  cfg.surge_period = 5_s;

  cfg.controller = ControllerKind::kCentralizedML;
  const ExperimentResult ml = run_experiment(cfg, profile);
  cfg.controller = ControllerKind::kMLPlusSurgeGuard;
  const ExperimentResult hybrid = run_experiment(cfg, profile);
  // The hybrid's surge response is far better than ML alone...
  EXPECT_LT(hybrid.load.violation_volume_ms_s,
            0.5 * ml.load.violation_volume_ms_s);
  // ...and it has a working fast path.
  EXPECT_GT(hybrid.fr_packets, 0u);
}

}  // namespace
}  // namespace sg
