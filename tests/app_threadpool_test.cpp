#include "app/threadpool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sg {
namespace {

TEST(ConnectionPoolTest, GrantsWhileFree) {
  ConnectionPool pool(2);
  int granted = 0;
  pool.acquire([&]() { ++granted; });
  pool.acquire([&]() { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 2);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(ConnectionPoolTest, QueuesWhenExhausted) {
  ConnectionPool pool(1);
  int granted = 0;
  pool.acquire([&]() { ++granted; });
  pool.acquire([&]() { ++granted; });
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  EXPECT_EQ(pool.total_waits(), 1u);
}

TEST(ConnectionPoolTest, ReleaseHandsToOldestWaiter) {
  ConnectionPool pool(1);
  std::vector<int> order;
  pool.acquire([&]() { order.push_back(0); });
  pool.acquire([&]() { order.push_back(1); });
  pool.acquire([&]() { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));  // FIFO
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.in_use(), 1);
  pool.release();
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(ConnectionPoolTest, InUseNeverExceedsCapacity) {
  ConnectionPool pool(3);
  for (int i = 0; i < 10; ++i) pool.acquire([]() {});
  EXPECT_EQ(pool.in_use(), 3);
  EXPECT_EQ(pool.waiting(), 7u);
  for (int i = 0; i < 7; ++i) {
    pool.release();
    EXPECT_LE(pool.in_use(), 3);
  }
}

TEST(ConnectionPoolTest, UnboundedNeverWaits) {
  ConnectionPool pool(-1);
  EXPECT_TRUE(pool.unbounded());
  int granted = 0;
  for (int i = 0; i < 1000; ++i) pool.acquire([&]() { ++granted; });
  EXPECT_EQ(granted, 1000);
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.total_waits(), 0u);
  for (int i = 0; i < 1000; ++i) pool.release();
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(ConnectionPoolTest, CountsAcquisitions) {
  ConnectionPool pool(1);
  pool.acquire([]() {});
  pool.acquire([]() {});
  pool.release();
  EXPECT_EQ(pool.total_acquisitions(), 2u);
}

TEST(ConnectionPoolTest, HandoffKeepsLedgerConsistent) {
  // A release that hands straight to a waiter must not inflate free count.
  ConnectionPool pool(1);
  int granted = 0;
  pool.acquire([&]() { ++granted; });
  pool.acquire([&]() { ++granted; });
  pool.release();  // hand-off
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 1);
  pool.release();  // now actually free
  // Pool usable again:
  pool.acquire([&]() { ++granted; });
  EXPECT_EQ(granted, 3);
}

TEST(ConnectionPoolTest, WaiterCanReacquireOnGrant) {
  // Re-entrant acquire from within a grant callback (as the application's
  // sequential fan-out does) must not corrupt state.
  ConnectionPool pool(1);
  int depth = 0;
  pool.acquire([&]() { ++depth; });
  pool.acquire([&]() {
    ++depth;
    pool.release();
  });
  pool.release();  // grants the waiter, which releases inside its callback
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(pool.in_use(), 0);
}

}  // namespace
}  // namespace sg
