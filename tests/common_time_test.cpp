#include "common/time.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

using namespace sg::literals;

TEST(TimeTest, LiteralsScale) {
  EXPECT_EQ(1_ns, 1);
  EXPECT_EQ(1_us, 1'000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(2_s + 500_ms, 2'500'000'000);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(1_s), 1000.0);
  EXPECT_DOUBLE_EQ(to_micros(1_ms), 1000.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_seconds(to_seconds(123'456'789)), 123'456'789);
}

TEST(TimeTest, FromSecondsRounds) {
  // 0.1234567891 s = 123456789.1 ns -> rounds to nearest integer ns.
  EXPECT_EQ(from_seconds(0.0000000015), 2);
}

TEST(TimeTest, FromSecondsRoundsNegativeHalfAwayFromZero) {
  // Symmetric rounding: -1.5 ns -> -2 ns, mirroring +1.5 ns -> +2 ns.
  // (The old `+ 0.5` form truncated toward +inf for negative slacks.)
  EXPECT_EQ(from_seconds(-0.0000000015), -2);
  EXPECT_EQ(from_seconds(-0.0000000014), -1);
  EXPECT_EQ(from_seconds(-0.0000000016), -2);
  EXPECT_EQ(from_seconds(-1.5), -1'500'000'000);
  EXPECT_EQ(from_seconds(-to_seconds(123'456'789)), -123'456'789);
  EXPECT_EQ(from_seconds(0.0), 0);
}

TEST(TimeTest, FormatPicksUnits) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1'500), "1.50us");
  EXPECT_EQ(format_time(2'500'000), "2.50ms");
  EXPECT_EQ(format_time(3'250'000'000), "3.250s");
}

TEST(TimeTest, FormatNegative) {
  EXPECT_EQ(format_time(-1'500), "-1.50us");
  EXPECT_EQ(format_time(-2'500'000), "-2.50ms");
}

TEST(TimeTest, InfinityIsMax) {
  EXPECT_EQ(kTimeInfinity, INT64_MAX);
  EXPECT_GT(kTimeInfinity, 1000000 * kSecond);
}

// --- quantity layer (DESIGN.md §9) ---

TEST(QuantityTest, DurationFactoriesAndAccessors) {
  EXPECT_EQ(Duration::ns(7).ns(), 7);
  EXPECT_EQ(Duration::us(3).ns(), 3'000);
  EXPECT_EQ(Duration::ms(5).ns(), 5'000'000);
  EXPECT_EQ(Duration::sec(2).ns(), 2'000'000'000);
  EXPECT_EQ(Duration::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::seconds(-1.5).ns(), -1'500'000'000);
  EXPECT_DOUBLE_EQ(Duration::sec(2).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::ms(2).millis(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::us(2).micros(), 2.0);
  EXPECT_EQ(Duration::zero().ns(), 0);
  EXPECT_EQ(Duration::infinity().ns(), kTimeInfinity);
}

TEST(QuantityTest, DurationAlgebra) {
  const Duration a = Duration::ms(3);
  const Duration b = Duration::ms(1);
  EXPECT_EQ((a + b).ns(), 4'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_EQ((-b).ns(), -1'000'000);
  EXPECT_EQ((a * 2.0).ns(), 6'000'000);
  EXPECT_EQ((2.0 * a).ns(), 6'000'000);
  EXPECT_EQ((a * SimTime{2}).ns(), 6'000'000);
  EXPECT_EQ((a / 2.0).ns(), 1'500'000);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_LT(b, a);
  Duration acc = a;
  acc += b;
  acc -= Duration::ms(2);
  EXPECT_EQ(acc, Duration::ms(2));
}

TEST(QuantityTest, TimePointAlgebra) {
  const TimePoint t0 = TimePoint::at(10 * kMillisecond);
  const TimePoint t1 = t0 + Duration::ms(5);
  EXPECT_EQ(t1.ns(), 15 * kMillisecond);
  EXPECT_EQ((t1 - t0), Duration::ms(5));
  EXPECT_EQ((t1 - Duration::ms(15)), TimePoint::origin());
  EXPECT_EQ((Duration::ms(5) + t0), t1);
  EXPECT_EQ(t0.since_origin(), Duration::ms(10));
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::infinity().ns(), kTimeInfinity);
  TimePoint cursor = t0;
  cursor += Duration::ms(1);
  cursor -= Duration::ms(11);
  EXPECT_EQ(cursor, TimePoint::origin());
}

TEST(QuantityTest, FreqAlgebra) {
  const Freq f = Freq::mhz(1600);
  EXPECT_DOUBLE_EQ(f.hz(), 1.6e9);
  EXPECT_DOUBLE_EQ(f.mhz(), 1600.0);
  EXPECT_DOUBLE_EQ(f.ghz(), 1.6);
  EXPECT_DOUBLE_EQ(Freq::mhz(3100) / f, 3100.0 / 1600.0);
  EXPECT_DOUBLE_EQ((f + Freq::mhz(100)).mhz(), 1700.0);
  EXPECT_DOUBLE_EQ((f - Freq::mhz(100)).mhz(), 1500.0);
  EXPECT_DOUBLE_EQ((f * 2.0).mhz(), 3200.0);
  EXPECT_DOUBLE_EQ((f / 2.0).mhz(), 800.0);
  // freq x time -> cycles (1.6 GHz for 1 ms = 1.6e6 cycles); commutes.
  EXPECT_DOUBLE_EQ(f * Duration::ms(1), 1.6e6);
  EXPECT_DOUBLE_EQ(Duration::ms(1) * f, 1.6e6);
}

TEST(QuantityTest, EnergyAlgebra) {
  const Energy e = Energy::joules(6.0);
  EXPECT_DOUBLE_EQ(e.joules(), 6.0);
  EXPECT_DOUBLE_EQ((e + Energy::joules(2.0)).joules(), 8.0);
  EXPECT_DOUBLE_EQ((e - Energy::joules(2.0)).joules(), 4.0);
  EXPECT_DOUBLE_EQ((e * 2.0).joules(), 12.0);
  EXPECT_DOUBLE_EQ((e / 2.0).joules(), 3.0);
  EXPECT_DOUBLE_EQ(e / Energy::joules(3.0), 2.0);
  // energy / time -> watts.
  EXPECT_DOUBLE_EQ(e / Duration::sec(2), 3.0);
  Energy acc = Energy::zero();
  acc += e;
  acc -= Energy::joules(1.0);
  EXPECT_EQ(acc, Energy::joules(5.0));
}

TEST(QuantityTest, FormatTimeOverloads) {
  EXPECT_EQ(format_time(Duration::us(2) - Duration::ns(500)), "1.50us");
  EXPECT_EQ(format_time(TimePoint::at(2'500'000)), "2.50ms");
}

}  // namespace
}  // namespace sg
