#include "common/time.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

using namespace sg::literals;

TEST(TimeTest, LiteralsScale) {
  EXPECT_EQ(1_ns, 1);
  EXPECT_EQ(1_us, 1'000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(2_s + 500_ms, 2'500'000'000);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(1_s), 1000.0);
  EXPECT_DOUBLE_EQ(to_micros(1_ms), 1000.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_seconds(to_seconds(123'456'789)), 123'456'789);
}

TEST(TimeTest, FromSecondsRounds) {
  // 0.1234567891 s = 123456789.1 ns -> rounds to nearest integer ns.
  EXPECT_EQ(from_seconds(0.0000000015), 2);
}

TEST(TimeTest, FormatPicksUnits) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1'500), "1.50us");
  EXPECT_EQ(format_time(2'500'000), "2.50ms");
  EXPECT_EQ(format_time(3'250'000'000), "3.250s");
}

TEST(TimeTest, FormatNegative) {
  EXPECT_EQ(format_time(-1'500), "-1.50us");
  EXPECT_EQ(format_time(-2'500'000), "-2.50ms");
}

TEST(TimeTest, InfinityIsMax) {
  EXPECT_EQ(kTimeInfinity, INT64_MAX);
  EXPECT_GT(kTimeInfinity, 1000000 * kSecond);
}

}  // namespace
}  // namespace sg
