// --fix fixture: suppressions whose spelling the directive parser silently
// ignores — `allow (D1)` with a space, and a lowercase rule id. Both lines
// below therefore report D1 before --fix; normalization makes the intended
// suppressions effective and the file scans clean.
#include <string>
#include <unordered_map>
#include <vector>

namespace fixable {

std::vector<int> keys(const std::unordered_map<int, std::string>& m) {
  std::vector<int> out;
  // sglint: allow (D1) caller sorts the result before any comparison
  for (const auto& [k, v] : m) out.push_back(k);
  return out;
}

std::vector<int> values_size(const std::unordered_map<int, std::string>& m) {
  std::vector<int> out;
  // sglint: allow(d1) accumulation is order-independent (count only)
  for (const auto& [k, v] : m) out.push_back(static_cast<int>(v.size()));
  return out;
}

}  // namespace fixable
