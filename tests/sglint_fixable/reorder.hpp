// Header half of the H1 --fix fixture.
#pragma once

namespace fixable {
int answer();
}  // namespace fixable
