// --fix fixture: the own header is not the first include (H1). `sglint
// --fix` must move it to the top of the include block, after which the file
// scans clean.
#include <vector>

#include "reorder.hpp"

namespace fixable {
int answer() { return static_cast<int>(std::vector<int>{42}.front()); }
}  // namespace fixable
