// The Table III catalog: structure, depths, threading models.
#include "app/workloads.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace sg {
namespace {

TEST(WorkloadsTest, CatalogHasFiveActions) {
  const auto cat = workload_catalog();
  ASSERT_EQ(cat.size(), 5u);
  EXPECT_EQ(cat[0].family, "CHAIN");
  EXPECT_EQ(cat[1].action, "readUserTimeline");
  EXPECT_EQ(cat[2].action, "composePost");
  EXPECT_EQ(cat[3].action, "searchHotel");
  EXPECT_EQ(cat[4].action, "recommendHotel");
}

TEST(WorkloadsTest, DepthsMatchTableIII) {
  EXPECT_EQ(make_chain().spec.depth(), 5);
  EXPECT_EQ(make_social_read_user_timeline().spec.depth(), 5);
  EXPECT_EQ(make_social_compose_post().spec.depth(), 8);
  EXPECT_EQ(make_hotel_search().spec.depth(), 11);
  EXPECT_EQ(make_hotel_recommend().spec.depth(), 5);
}

TEST(WorkloadsTest, PaperDepthsConsistent) {
  for (const auto& w : workload_catalog()) {
    EXPECT_EQ(w.spec.depth(), w.paper_depth) << w.spec.name;
  }
}

TEST(WorkloadsTest, ThreadingModelsMatchTableIII) {
  // Thrift workloads use fixed pools; gRPC hotel uses conn-per-request.
  EXPECT_EQ(make_chain().spec.threading, ThreadingModel::kFixedThreadPool);
  EXPECT_EQ(make_chain().spec.rpc, RpcStyle::kThrift);
  EXPECT_EQ(make_social_read_user_timeline().spec.threading,
            ThreadingModel::kFixedThreadPool);
  EXPECT_EQ(make_social_compose_post().spec.threading,
            ThreadingModel::kFixedThreadPool);
  EXPECT_EQ(make_hotel_search().spec.threading,
            ThreadingModel::kConnectionPerRequest);
  EXPECT_EQ(make_hotel_search().spec.rpc, RpcStyle::kGrpc);
  EXPECT_EQ(make_hotel_recommend().spec.threading,
            ThreadingModel::kConnectionPerRequest);
}

TEST(WorkloadsTest, HotelPoolsReportedUnbounded) {
  EXPECT_EQ(make_hotel_search().paper_threadpool_size, -1);
  EXPECT_EQ(make_hotel_recommend().paper_threadpool_size, -1);
  EXPECT_EQ(make_chain().paper_threadpool_size, 512);
}

TEST(WorkloadsTest, AllSpecsValidate) {
  for (const auto& w : workload_catalog()) {
    std::string err;
    EXPECT_TRUE(w.spec.validate(&err)) << w.spec.name << ": " << err;
  }
}

TEST(WorkloadsTest, InitialCoresPerService) {
  for (const auto& w : workload_catalog()) {
    EXPECT_EQ(w.initial_cores.size(), w.spec.services.size()) << w.spec.name;
    for (int c : w.initial_cores) EXPECT_GE(c, 1);
    EXPECT_EQ(w.total_initial_cores(),
              std::accumulate(w.initial_cores.begin(), w.initial_cores.end(), 0));
  }
}

TEST(WorkloadsTest, CalibratedNearKnee) {
  // Bottleneck utilization at base rate should sit in the "slightly below
  // the knee" band (paper artifact): between 0.5 and 0.85 for every service.
  for (const auto& w : workload_catalog()) {
    for (std::size_t i = 0; i < w.spec.services.size(); ++i) {
      const double demand =
          w.base_rate_rps *
          (w.spec.services[i].work_ns_mean + w.spec.services[i].post_work_ns_mean) /
          1e9;
      const double util = demand / w.initial_cores[i];
      EXPECT_LT(util, 0.85) << w.spec.name << "/" << w.spec.services[i].name;
      EXPECT_GT(util, 0.1) << w.spec.name << "/" << w.spec.services[i].name;
    }
  }
}

TEST(WorkloadsTest, LookupByNames) {
  EXPECT_EQ(workload_by_name("chain").family, "CHAIN");
  EXPECT_EQ(workload_by_name("readUserTimeline").action, "readUserTimeline");
  EXPECT_EQ(workload_by_name("socialNetwork.composePost").action,
            "composePost");
  EXPECT_EQ(workload_by_name("hotelReservation").family, "hotelReservation");
}

TEST(WorkloadsTest, ChainIsAPureChain) {
  const auto w = make_chain();
  ASSERT_EQ(w.spec.services.size(), 5u);
  for (std::size_t i = 0; i + 1 < w.spec.services.size(); ++i) {
    ASSERT_EQ(w.spec.services[i].children.size(), 1u);
    EXPECT_EQ(w.spec.services[i].children[0], static_cast<int>(i) + 1);
  }
  EXPECT_TRUE(w.spec.services.back().children.empty());
}

TEST(WorkloadsTest, SearchHotelHasParallelFanout) {
  const auto w = make_hotel_search();
  bool has_parallel = false;
  for (const auto& s : w.spec.services) {
    if (s.fanout == FanoutMode::kParallel && s.children.size() > 1) {
      has_parallel = true;
    }
  }
  EXPECT_TRUE(has_parallel);  // search -> {geo, rate} per DeathStarBench
}

}  // namespace
}  // namespace sg
