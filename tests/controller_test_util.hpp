// Shared harness for controller unit tests: a tiny two-service application
// (the paper's Fig. 5 c1->c2 setup) with direct access to the metrics bus,
// so tests can inject crafted snapshots and observe allocation decisions
// without running full workloads.
#pragma once

#include <memory>

#include "app/application.hpp"
#include "controllers/controller.hpp"
#include "workload/load_generator.hpp"

namespace sg::testutil {

struct ControllerTestbed {
  Simulator sim{3};
  Cluster cluster{sim};
  Network network{sim};
  MetricsPlane metrics{1};
  std::unique_ptr<Application> app;

  /// c1 -> c2 chain; pool_size < 0 for connection-per-request.
  explicit ControllerTestbed(int pool_size = 8, int initial_cores = 2,
                             int node_cores = 40) {
    cluster.add_node(node_cores, 19);
    AppSpec spec;
    spec.name = "fig5";
    ServiceSpec c1, c2;
    c1.name = "c1";
    c1.work_ns_mean = 100'000;
    c1.work_sigma = 0.0;
    c1.children = {1};
    c2.name = "c2";
    c2.work_ns_mean = 100'000;
    c2.work_sigma = 0.0;
    spec.services = {c1, c2};
    spec.threading = pool_size < 0 ? ThreadingModel::kConnectionPerRequest
                                   : ThreadingModel::kFixedThreadPool;
    spec.threadpool_size = pool_size < 0 ? 512 : pool_size;
    if (pool_size < 0) {
      spec.pool_sizes = {{-1}, {}};
    } else {
      spec.pool_sizes = {{pool_size}, {}};
    }
    Deployment dep = Deployment::single_node(spec, 0, initial_cores);
    app = std::make_unique<Application>(cluster, network, metrics,
                                        std::move(spec), dep);
  }

  Container& c1() { return app->service_container(0); }
  Container& c2() { return app->service_container(1); }

  ControllerEnv env(double expected_exec_us = 300.0) {
    ControllerEnv e;
    e.sim = &sim;
    e.cluster = &cluster;
    e.node = &cluster.node(0);
    e.bus = &metrics.node_bus(0);
    e.app = app.get();
    e.topology = app->topology();
    ContainerTargets t;
    t.expected_exec_metric_ns = expected_exec_us * 1000.0;
    t.expected_time_from_start = Duration::us(200);
    e.targets.per_container[c1().id()] = t;
    e.targets.per_container[c2().id()] = t;
    e.targets.expected_e2e_latency = Duration::us(500);
    return e;
  }

  /// Publishes a crafted snapshot for a container.
  void publish(Container& c, double exec_time_us, double exec_metric_us,
               bool hint = false, long visits = 100) {
    MetricsSnapshot s;
    s.container = c.id();
    s.window_end = sim.now();
    s.visits = visits;
    s.avg_exec_time_ns = exec_time_us * 1000.0;
    s.avg_exec_metric_ns = exec_metric_us * 1000.0;
    s.avg_conn_wait_ns = (exec_time_us - exec_metric_us) * 1000.0;
    s.queue_buildup = exec_metric_us > 0 ? exec_time_us / exec_metric_us : 1e6;
    s.upscale_hint_received = hint;
    metrics.node_bus(0).publish(s);
  }
};

}  // namespace sg::testutil
