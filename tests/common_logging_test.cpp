#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sg {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/sg_log_test.log";
    std::remove(path_.c_str());
    Logger::instance().set_file(path_);
    saved_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().set_file("");
    Logger::instance().set_level(saved_level_);
    std::remove(path_.c_str());
  }
  std::string path_;
  LogLevel saved_level_ = LogLevel::Warn;
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::Warn);
  SG_DEBUG << "hidden debug";
  SG_INFO << "hidden info";
  SG_WARN << "visible warn";
  SG_ERROR << "visible error";
  const std::string log = read_file(path_);
  EXPECT_EQ(log.find("hidden"), std::string::npos);
  EXPECT_NE(log.find("visible warn"), std::string::npos);
  EXPECT_NE(log.find("visible error"), std::string::npos);
}

TEST_F(LoggingTest, DebugLevelShowsEverything) {
  Logger::instance().set_level(LogLevel::Debug);
  SG_DEBUG << "dbg " << 42 << " " << 1.5;
  const std::string log = read_file(path_);
  EXPECT_NE(log.find("dbg 42 1.5"), std::string::npos);
  EXPECT_NE(log.find("[DEBUG]"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesAll) {
  Logger::instance().set_level(LogLevel::Off);
  SG_ERROR << "nope";
  EXPECT_EQ(read_file(path_).find("nope"), std::string::npos);
}

TEST_F(LoggingTest, LogEnabledGuardAvoidsFormatting) {
  Logger::instance().set_level(LogLevel::Error);
  EXPECT_FALSE(log_enabled(LogLevel::Debug));
  EXPECT_FALSE(log_enabled(LogLevel::Warn));
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  // The streaming payload must not be evaluated when filtered: the macro's
  // short-circuit guard skips the LogLine entirely.
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  SG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace sg
