// Shared memory-bandwidth interference domain (paper §VII extension).
#include "cluster/membw.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace sg {
namespace {

MemBwDomain::Params tight_bw() {
  MemBwDomain::Params p;
  p.node_bw_gbs = 12.0;              // 2 busy cores saturate
  p.demand_per_busy_core_gbs = 6.0;
  return p;
}

TEST(MemBwTest, NoContentionFactorIsOne) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  cluster.add_container("a", 0, 2);
  EXPECT_DOUBLE_EQ(cluster.node(0).membw()->interference_factor(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.node(0).membw()->current_demand_gbs(), 0.0);
}

TEST(MemBwTest, ContentionSlowsExecution) {
  // One busy core: no contention, job takes its nominal time. Four busy
  // cores against 2-core-worth of bandwidth: everything runs at half speed.
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  Container& a = cluster.add_container("a", 0, 4);

  SimTime solo_done = 0;
  a.submit(1000.0, [&]() { solo_done = sim.now(); });
  sim.run_to_completion();
  EXPECT_NEAR(static_cast<double>(solo_done), 1000.0, 2.0);

  // Now 4 concurrent jobs on 4 cores: demand 24 GB/s vs 12 -> factor 0.5.
  const SimTime start = sim.now();
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    a.submit(1000.0, [&]() { done.push_back(sim.now() - start); });
  }
  EXPECT_NEAR(cluster.node(0).membw()->interference_factor(), 0.5, 1e-9);
  sim.run_to_completion();
  ASSERT_EQ(done.size(), 4u);
  for (SimTime d : done) {
    EXPECT_NEAR(static_cast<double>(d), 2000.0, 5.0);
  }
}

TEST(MemBwTest, ContentionSpansContainers) {
  // Interference is a NODE property: a noisy neighbor slows its peers.
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  Container& victim = cluster.add_container("victim", 0, 1);
  Container& noisy = cluster.add_container("noisy", 0, 3);

  // Noisy neighbor keeps 3 cores busy for a long time: total busy 4 cores
  // -> demand 24 vs bw 12 -> factor 0.5 while they overlap.
  for (int i = 0; i < 3; ++i) noisy.submit(1e9, []() {});
  SimTime done = 0;
  victim.submit(1000.0, [&]() { done = sim.now(); });
  sim.run_until(10'000);
  EXPECT_NEAR(static_cast<double>(done), 2000.0, 5.0);
}

TEST(MemBwTest, FactorRecoversWhenLoadDrops) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  Container& a = cluster.add_container("a", 0, 4);
  for (int i = 0; i < 4; ++i) a.submit(1000.0, []() {});
  EXPECT_LT(cluster.node(0).membw()->interference_factor(), 1.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(cluster.node(0).membw()->interference_factor(), 1.0);
}

TEST(MemBwTest, ProgressBankedAtOldFactorBeforeChange) {
  // A job that runs 500ns uncontended then gets a noisy neighbor must keep
  // the full-speed progress it already made.
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  Container& a = cluster.add_container("a", 0, 1);
  Container& b = cluster.add_container("b", 0, 3);
  SimTime done = 0;
  a.submit(1000.0, [&]() { done = sim.now(); });
  sim.schedule_at(500, [&]() {
    for (int i = 0; i < 3; ++i) b.submit(1e9, []() {});
  });
  sim.run_until(5000);
  // 500 work at speed 1 + 500 work at speed 0.5 -> done at 500 + 1000.
  EXPECT_NEAR(static_cast<double>(done), 1500.0, 5.0);
}

TEST(MemBwTest, HysteresisSuppressesTinyChanges) {
  MemBwDomain::Params p;
  p.node_bw_gbs = 100.0;
  p.demand_per_busy_core_gbs = 1.0;  // essentially never contended
  p.hysteresis = 0.01;
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(p);
  Container& a = cluster.add_container("a", 0, 4);
  for (int i = 0; i < 4; ++i) a.submit(1000.0, []() {});
  EXPECT_DOUBLE_EQ(cluster.node(0).membw()->interference_factor(), 1.0);
  sim.run_to_completion();
}

TEST(MemBwTest, WorkConservationUnderContention) {
  // Busy-core-seconds still reflect wall-clock busy time (energy charges
  // stalled-on-memory cores), while delivered work reflects the slowdown.
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.node(0).enable_membw(tight_bw());
  Container& a = cluster.add_container("a", 0, 4);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    a.submit(1'000'000.0, [&]() { ++completed; });
  }
  sim.run_to_completion();
  a.sync();
  EXPECT_EQ(completed, 4);
  // Wall time 2ms (factor 0.5), 4 cores busy -> 8e-3 busy-core-seconds.
  EXPECT_NEAR(a.busy_core_seconds(), 0.008, 1e-4);
}

}  // namespace
}  // namespace sg
