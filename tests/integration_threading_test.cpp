// Integration: the paper's Fig. 5 — how the threading model shapes what a
// surge looks like to the metrics, end-to-end through the real application
// model (no crafted snapshots).
#include <gtest/gtest.h>

#include "app/application.hpp"
#include "workload/load_generator.hpp"

namespace sg {
namespace {

using namespace sg::literals;

struct Fig5Testbed {
  Simulator sim{21};
  Cluster cluster{sim};
  Network network{sim};
  MetricsPlane metrics{1};
  std::unique_ptr<Application> app;
  std::unique_ptr<LoadGenerator> gen;

  /// Two services c1 -> c2; pool_size < 0 = connection-per-request.
  Fig5Testbed(int pool_size, double surge_mult) {
    cluster.add_node(64, 19);
    AppSpec spec;
    spec.name = "fig5";
    ServiceSpec c1, c2;
    c1.name = "c1";
    c1.work_ns_mean = 100'000;
    c1.work_sigma = 0.1;
    c1.children = {1};
    c2.name = "c2";
    c2.work_ns_mean = 100'000;
    c2.work_sigma = 0.1;
    spec.services = {c1, c2};
    spec.threading = pool_size < 0 ? ThreadingModel::kConnectionPerRequest
                                   : ThreadingModel::kFixedThreadPool;
    spec.pool_sizes = {{pool_size}, {}};
    // Fig. 5's premise: c1 has CPU headroom (the surge reaches its pool),
    // c2 is the bottleneck. c1: 4 cores (0.33 util at base), c2: 2 cores
    // (0.65 util at base; 1.04 during a 1.6x surge).
    Deployment dep;
    dep.node_of_service = {0, 0};
    dep.initial_cores = {4, 2};
    app = std::make_unique<Application>(cluster, network, metrics,
                                        std::move(spec), dep);
    LoadGenOptions opts;
    // One long surge so window averages during the surge are unambiguous.
    opts.pattern = SpikePattern::surges(13000, surge_mult, 2_s, 60_s, 1_s);
    opts.qos = 5_ms;
    opts.warmup = 500_ms;
    opts.duration = 2_s;
    gen = std::make_unique<LoadGenerator>(sim, network, *app, opts);
  }

  /// Runs through the surge and returns per-container lifetime-window
  /// snapshots collected DURING the surge (1s..3s).
  std::pair<MetricsSnapshot, MetricsSnapshot> run_and_snapshot() {
    gen->start();
    sim.run_until(1_s);  // pre-surge
    // Reset windows so the snapshot covers surge time only.
    auto& m1 = const_cast<ContainerRuntimeMetrics&>(
        app->runtime_metrics(app->service_container(0).id()));
    auto& m2 = const_cast<ContainerRuntimeMetrics&>(
        app->runtime_metrics(app->service_container(1).id()));
    m1.flush(sim.now());
    m2.flush(sim.now());
    sim.run_until(2'800'000'000);  // most of the surge
    return {m1.flush(sim.now()), m2.flush(sim.now())};
  }
};

TEST(ThreadingModelTest, ConnectionPerRequestSurgeSlowsBothServices) {
  // Fig. 5(a): thread-per-request -> the higher request rate reaches c2,
  // raising execMetric at BOTH services.
  Fig5Testbed calm(-1, 1.0);
  auto [c1_calm, c2_calm] = calm.run_and_snapshot();
  Fig5Testbed surged(-1, 1.6);
  auto [c1_surge, c2_surge] = surged.run_and_snapshot();

  ASSERT_TRUE(c1_surge.valid() && c2_surge.valid());
  // execMetric (own + downstream, no conn wait) rises at both services.
  EXPECT_GT(c1_surge.avg_exec_metric_ns, 1.3 * c1_calm.avg_exec_metric_ns);
  EXPECT_GT(c2_surge.avg_exec_metric_ns, 1.3 * c2_calm.avg_exec_metric_ns);
  // No pools -> no implicit queue -> queueBuildup stays ~1 at both.
  EXPECT_LT(c1_surge.queue_buildup, 1.05);
  EXPECT_LT(c2_surge.queue_buildup, 1.05);
}

TEST(ThreadingModelTest, FixedPoolHidesSurgeFromDownstream) {
  // Fig. 5(b): the pool caps concurrency into c2. The surge piles up as
  // connection waiting at c1 (queueBuildup >> 1) while c2's own execution
  // time stays near its pre-surge value.
  Fig5Testbed calm(4, 1.0);
  auto [c1_calm, c2_calm] = calm.run_and_snapshot();
  Fig5Testbed surged(4, 1.6);
  auto [c1_surge, c2_surge] = surged.run_and_snapshot();

  ASSERT_TRUE(c1_surge.valid() && c2_surge.valid());
  // Implicit queue at c1: conn wait dominates.
  EXPECT_GT(c1_surge.queue_buildup, 1.5);
  EXPECT_GT(c1_surge.avg_conn_wait_ns, 0.0);
  // c2 sees bounded concurrency (at most pool-size jobs): its own execution
  // grows by at most the pool-limited sharing factor, while c1's total
  // latency blows up with the unbounded implicit queue.
  const double c2_growth =
      c2_surge.avg_exec_metric_ns / c2_calm.avg_exec_metric_ns;
  const double c1_growth = c1_surge.avg_exec_time_ns / c1_calm.avg_exec_time_ns;
  EXPECT_LT(c2_growth, 3.0);
  EXPECT_GT(c1_growth, 5.0 * c2_growth);
  // And c2 itself records no queue buildup (the queue is invisible
  // downstream — the "hidden dependency").
  EXPECT_LT(c2_surge.queue_buildup, 1.1);
}

TEST(ThreadingModelTest, ExecMetricDiscountsConnWait) {
  // Under pool pressure, execTime at c1 >> execMetric at c1 (eq. 2).
  Fig5Testbed surged(4, 1.6);
  auto [c1_surge, c2_surge] = surged.run_and_snapshot();
  ASSERT_TRUE(c1_surge.valid());
  EXPECT_GT(c1_surge.avg_exec_time_ns,
            1.5 * c1_surge.avg_exec_metric_ns);
  (void)c2_surge;
}

}  // namespace
}  // namespace sg
