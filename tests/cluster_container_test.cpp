// Processor-sharing container semantics: the heart of the CPU model.
#include "cluster/container.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace sg {
namespace {

std::unique_ptr<Container> make_container(Simulator& sim, int cores,
                                          DvfsModel dvfs = {}) {
  Container::Params p;
  p.name = "c";
  p.id = 0;
  p.node = 0;
  p.initial_cores = cores;
  p.dvfs = dvfs;
  return std::make_unique<Container>(sim, std::move(p));
}

TEST(ContainerTest, SingleJobTakesItsWork) {
  Simulator sim;
  auto c = make_container(sim, 1);
  SimTime done = kTimeInfinity;  // sentinel: callback never ran
  c->submit(1000.0, [&]() { done = sim.now(); });
  sim.run_to_completion();
  EXPECT_EQ(done, 1000);
}

TEST(ContainerTest, TwoJobsOnOneCoreShareProcessor) {
  // PS: two equal jobs on one core each progress at half speed; both finish
  // at 2x the solo time.
  Simulator sim;
  auto c = make_container(sim, 1);
  std::vector<SimTime> done;
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  sim.run_to_completion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), 2000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 2000.0, 2.0);
}

TEST(ContainerTest, TwoJobsOnTwoCoresRunFullSpeed) {
  Simulator sim;
  auto c = make_container(sim, 2);
  std::vector<SimTime> done;
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  sim.run_to_completion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 1000.0, 2.0);
}

TEST(ContainerTest, ShorterJobCompletesFirst) {
  Simulator sim;
  auto c = make_container(sim, 1);
  std::vector<int> order;
  c->submit(2000.0, [&]() { order.push_back(2); });
  c->submit(500.0, [&]() { order.push_back(1); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ContainerTest, StaggeredArrivalPs) {
  // Job A (1000ns) starts at t=0 alone; at t=500, job B (1000ns) arrives.
  // Shared core: A's remaining 500 work takes 1000 wall -> A done at 1500.
  // B received 500 work during [500,1500]; its remaining 500 then runs at
  // full speed -> B done at 2000.
  Simulator sim;
  auto c = make_container(sim, 1);
  SimTime done_a = 0, done_b = 0;
  c->submit(1000.0, [&]() { done_a = sim.now(); });
  sim.schedule_at(500, [&]() {
    c->submit(1000.0, [&]() { done_b = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_NEAR(static_cast<double>(done_a), 1500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done_b), 2000.0, 2.0);
}

TEST(ContainerTest, FrequencyScalesThroughput) {
  Simulator sim;
  DvfsModel dvfs;
  dvfs.scaling_efficiency = 1.0;  // exact 2x at 3200
  dvfs.max_mhz = 3200;
  auto c = make_container(sim, 1, dvfs);
  c->set_frequency(3200);
  SimTime done = kTimeInfinity;  // sentinel: callback never ran
  c->submit(1000.0, [&]() { done = sim.now(); });
  sim.run_to_completion();
  EXPECT_NEAR(static_cast<double>(done), 500.0, 2.0);
}

TEST(ContainerTest, FrequencyChangeMidJob) {
  Simulator sim;
  DvfsModel dvfs;
  dvfs.scaling_efficiency = 1.0;
  dvfs.max_mhz = 3200;
  auto c = make_container(sim, 1, dvfs);
  SimTime done = kTimeInfinity;  // sentinel: callback never ran
  c->submit(1000.0, [&]() { done = sim.now(); });
  // After 500ns (500 work done), double the speed: remaining 500 work takes
  // 250ns -> completes at 750.
  sim.schedule_at(500, [&]() { c->set_frequency(3200); });
  sim.run_to_completion();
  EXPECT_NEAR(static_cast<double>(done), 750.0, 2.0);
}

TEST(ContainerTest, CoreChangeMidJobRescales) {
  Simulator sim;
  auto c = make_container(sim, 1);
  std::vector<SimTime> done;
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  c->submit(1000.0, [&]() { done.push_back(sim.now()); });
  // At t=1000 each job has 500 work left (shared core). Granting a second
  // core lets both run at full speed: finish at 1500.
  sim.schedule_at(1000, [&]() { c->set_cores(2); });
  sim.run_to_completion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), 1500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 1500.0, 2.0);
}

TEST(ContainerTest, ZeroCoresStallsJobs) {
  Simulator sim;
  auto c = make_container(sim, 1);
  SimTime done = kTimeInfinity;  // sentinel: callback never ran
  c->submit(1000.0, [&]() { done = sim.now(); });
  sim.schedule_at(200, [&]() { c->set_cores(0); });
  sim.schedule_at(5000, [&]() { c->set_cores(1); });
  sim.run_to_completion();
  // 200 work done before the stall; 800 after cores return at t=5000.
  EXPECT_NEAR(static_cast<double>(done), 5800.0, 2.0);
}

TEST(ContainerTest, ZeroWorkJobCompletesImmediately) {
  Simulator sim;
  auto c = make_container(sim, 1);
  SimTime done = kTimeInfinity;  // sentinel: callback never ran
  c->submit(0.0, [&]() { done = sim.now(); });
  sim.run_to_completion();
  EXPECT_EQ(done, 0);
}

TEST(ContainerTest, CompletionCallbackCanResubmit) {
  Simulator sim;
  auto c = make_container(sim, 1);
  int completions = 0;
  std::function<void()> chain = [&]() {
    ++completions;
    if (completions < 3) c->submit(100.0, chain);
  };
  c->submit(100.0, chain);
  sim.run_to_completion();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(sim.now(), 300);
  EXPECT_EQ(c->jobs_completed(), 3u);
}

TEST(ContainerTest, BusyCoresCapped) {
  Simulator sim;
  auto c = make_container(sim, 2);
  for (int i = 0; i < 5; ++i) c->submit(1000.0, []() {});
  EXPECT_EQ(c->active_jobs(), 5);
  EXPECT_DOUBLE_EQ(c->busy_cores(), 2.0);
  sim.run_to_completion();
  EXPECT_EQ(c->active_jobs(), 0);
  EXPECT_DOUBLE_EQ(c->busy_cores(), 0.0);
}

TEST(ContainerTest, BusyCoreSecondsAccumulate) {
  Simulator sim;
  auto c = make_container(sim, 1);
  c->submit(1'000'000.0, []() {});  // 1ms of work on 1 core
  sim.run_to_completion();
  c->sync();
  EXPECT_NEAR(c->busy_core_seconds(), 0.001, 1e-6);
}

TEST(ContainerTest, EnergyChargedForBusyTime) {
  Simulator sim;
  auto c = make_container(sim, 1);
  c->submit(static_cast<double>(kSecond), []() {});
  sim.run_to_completion();
  c->sync();
  // 1 core-second busy at ref frequency.
  EnergyModel e;
  DvfsModel d;
  EXPECT_NEAR(c->energy_joules(), e.busy_core_watts(d.ref_mhz, d.ref_mhz),
              0.01);
}

TEST(ContainerTest, IdleAllocatedCoresDrawPower) {
  Simulator sim;
  auto c = make_container(sim, 4);
  sim.run_until(kSecond);
  c->sync();
  // 4 allocated, 0 busy for 1 second.
  EnergyModel e;
  EXPECT_NEAR(c->energy_joules(), 4.0 * e.allocated_idle_watts, 0.01);
}

TEST(ContainerTest, CoreTimelineTracksChanges) {
  Simulator sim;
  auto c = make_container(sim, 2);
  sim.schedule_at(100, [&]() { c->set_cores(4); });
  sim.schedule_at(200, [&]() { c->set_cores(1); });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(c->core_timeline().at(50), 2.0);
  EXPECT_DOUBLE_EQ(c->core_timeline().at(150), 4.0);
  EXPECT_DOUBLE_EQ(c->core_timeline().at(250), 1.0);
}

TEST(ContainerTest, FreqTimelineQuantized) {
  Simulator sim;
  auto c = make_container(sim, 1);
  sim.schedule_at(10, [&]() { c->set_frequency(2357); });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(c->freq_timeline().at(20), 2300.0);
  EXPECT_EQ(c->frequency(), 2300);
}

// Property sweep: N jobs, k cores -> total completion time of the batch is
// total_work / min(N, k) (all jobs equal, ignoring rounding).
class PsBatchTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PsBatchTest, BatchMakespanMatchesCapacity) {
  const int jobs = std::get<0>(GetParam());
  const int cores = std::get<1>(GetParam());
  Simulator sim;
  auto c = make_container(sim, cores);
  int done = 0;
  for (int i = 0; i < jobs; ++i) {
    c->submit(1000.0, [&]() { ++done; });
  }
  sim.run_to_completion();
  EXPECT_EQ(done, jobs);
  const double expected =
      1000.0 * jobs / std::min(jobs, cores);
  EXPECT_NEAR(static_cast<double>(sim.now()), expected, expected * 0.01 + 2);
}

INSTANTIATE_TEST_SUITE_P(
    JobCoreGrid, PsBatchTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 16),
                       ::testing::Values(1, 2, 3, 8)));

}  // namespace
}  // namespace sg
