#include "cluster/cpu.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(DvfsTest, QuantizeClampsToRange) {
  DvfsModel d;
  EXPECT_EQ(d.quantize(100), d.min_mhz);
  EXPECT_EQ(d.quantize(99999), d.max_mhz);
}

TEST(DvfsTest, QuantizeSnapsDown) {
  DvfsModel d;  // min 1600, step 100
  EXPECT_EQ(d.quantize(1600), 1600);
  EXPECT_EQ(d.quantize(1649), 1600);
  EXPECT_EQ(d.quantize(1650), 1600);
  EXPECT_EQ(d.quantize(1700), 1700);
  EXPECT_EQ(d.quantize(1799), 1700);
}

TEST(DvfsTest, SpeedIsOneAtReference) {
  DvfsModel d;
  EXPECT_DOUBLE_EQ(d.speed(d.ref_mhz), 1.0);
}

TEST(DvfsTest, SpeedSubLinearInFrequency) {
  DvfsModel d;  // scaling_efficiency 0.55
  const double full_ratio =
      static_cast<double>(d.max_mhz) / static_cast<double>(d.ref_mhz);
  const double speed = d.speed(d.max_mhz);
  EXPECT_GT(speed, 1.0);
  EXPECT_LT(speed, full_ratio);  // sub-linear
  EXPECT_NEAR(speed, 1.0 + 0.55 * (full_ratio - 1.0), 1e-12);
}

TEST(DvfsTest, SpeedMonotoneInFrequency) {
  DvfsModel d;
  double prev = 0.0;
  for (FreqMhz f : d.level_list()) {
    const double s = d.speed(f);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(DvfsTest, LevelsCoverRange) {
  DvfsModel d;
  EXPECT_EQ(d.levels(), (d.max_mhz - d.min_mhz) / d.step_mhz + 1);
  const auto levels = d.level_list();
  ASSERT_EQ(static_cast<int>(levels.size()), d.levels());
  EXPECT_EQ(levels.front(), d.min_mhz);
  EXPECT_EQ(levels.back(), d.max_mhz);
}

TEST(DvfsTest, FullLinearScalingWhenEfficiencyOne) {
  DvfsModel d;
  d.scaling_efficiency = 1.0;
  EXPECT_DOUBLE_EQ(d.speed(3200), 2.0);
}

}  // namespace
}  // namespace sg
