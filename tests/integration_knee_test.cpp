// Load-latency properties of the calibrated operating points: the artifact
// places base rates "slightly below the knee"; these parameterized sweeps
// pin that calibration for every Table III workload so a model or catalog
// change that moves the knee fails loudly.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sg {
namespace {

using namespace sg::literals;

ExperimentResult run_steady(const WorkloadInfo& w, double rate_frac,
                            const ProfileResult& profile) {
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.controller = ControllerKind::kStatic;
  cfg.pattern_override = SpikePattern::steady(w.base_rate_rps * rate_frac);
  cfg.warmup = 2_s;
  cfg.duration = 5_s;
  cfg.seed = 23;
  return run_experiment(cfg, profile);
}

class KneeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(KneeTest, LatencyMonotoneInLoad) {
  const WorkloadInfo w = workload_by_name(GetParam());
  const ProfileResult profile = profile_workload(w, 1);
  double prev_mean = 0.0;
  for (double frac : {0.3, 0.6, 1.0, 1.3}) {
    const ExperimentResult r = run_steady(w, frac, profile);
    EXPECT_GE(r.load.mean_latency_ns, prev_mean * 0.98)
        << w.spec.name << " at " << frac;  // 2% tolerance for noise
    prev_mean = r.load.mean_latency_ns;
  }
}

TEST_P(KneeTest, BaseRateIsBelowTheKnee) {
  // At the calibrated base rate the system is stable and its tail is close
  // to the low-load tail; at 1.7x base, some service saturates (util > 1)
  // and the tail blows past it. (With wrk2-style deterministic pacing the
  // knee sits close to the saturation point.)
  const WorkloadInfo w = workload_by_name(GetParam());
  const ProfileResult profile = profile_workload(w, 1);
  const ExperimentResult at_base = run_steady(w, 1.0, profile);
  const ExperimentResult past = run_steady(w, 1.7, profile);
  // Stable at base: throughput tracks the offered rate.
  EXPECT_GT(at_base.load.throughput_rps, 0.98 * w.base_rate_rps)
      << w.spec.name;
  // Tail at base within 3x of the low-load tail (comfortably under QoS)...
  EXPECT_LT(at_base.load.p98, 3 * profile.low_load_p98) << w.spec.name;
  // ...and 1.7x base pushes the tail at least 3x higher than at base.
  EXPECT_GT(past.load.p98, 3 * at_base.load.p98) << w.spec.name;
}

INSTANTIATE_TEST_SUITE_P(TableIII, KneeTest,
                         ::testing::Values("chain", "readUserTimeline",
                                           "composePost", "searchHotel",
                                           "recommendHotel"));

}  // namespace
}  // namespace sg
