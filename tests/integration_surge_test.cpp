// End-to-end controller behaviour on real workloads (slow-ish tests, each
// runs a full shortened experiment). These pin the qualitative claims of
// the paper's evaluation that every refactor must preserve.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sg {
namespace {

using namespace sg::literals;

ExperimentConfig surge_config(const WorkloadInfo& w, ControllerKind kind) {
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.controller = kind;
  cfg.warmup = 3_s;
  cfg.duration = 10_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 2_s;
  cfg.surge_period = 5_s;
  cfg.seed = 31;
  return cfg;
}

class SurgeOrderingTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SurgeOrderingTest, SurgeGuardBeatsPartiesOnViolationVolume) {
  const WorkloadInfo w = workload_by_name(GetParam());
  const ProfileResult profile = profile_workload(w, 1);
  const ExperimentResult parties =
      run_experiment(surge_config(w, ControllerKind::kParties), profile);
  const ExperimentResult sg_res =
      run_experiment(surge_config(w, ControllerKind::kSurgeGuard), profile);
  EXPECT_LT(sg_res.load.violation_volume_ms_s,
            parties.load.violation_volume_ms_s)
      << "workload " << w.spec.name;
}

TEST_P(SurgeOrderingTest, ThroughputPreservedByAllControllers) {
  const WorkloadInfo w = workload_by_name(GetParam());
  const ProfileResult profile = profile_workload(w, 1);
  for (ControllerKind kind :
       {ControllerKind::kParties, ControllerKind::kSurgeGuard}) {
    const ExperimentResult r = run_experiment(surge_config(w, kind), profile);
    // Offered load over the window is ~base*(1 + 0.75*0.4); controllers must
    // not collapse goodput. SurgeGuard is held to a tighter bound; Parties
    // legitimately carries un-drained backlog at the window edge under this
    // aggressive 40%-duty surge pattern.
    const double floor_frac =
        kind == ControllerKind::kSurgeGuard ? 0.9 : 0.8;
    EXPECT_GT(r.load.throughput_rps, floor_frac * w.base_rate_rps)
        << to_string(kind) << " on " << w.spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SurgeOrderingTest,
                         ::testing::Values("chain", "readUserTimeline",
                                           "recommendHotel"));

TEST(SurgeIntegrationTest, CaladanBlindOnConnectionPerRequest) {
  // The paper's hotelReservation result: CaladanAlgo's queue signal never
  // fires without pools, so it behaves like the static allocation while
  // SurgeGuard mitigates.
  const WorkloadInfo w = make_hotel_recommend();
  const ProfileResult profile = profile_workload(w, 1);
  const ExperimentResult caladan =
      run_experiment(surge_config(w, ControllerKind::kCaladan), profile);
  const ExperimentResult stat =
      run_experiment(surge_config(w, ControllerKind::kStatic), profile);
  const ExperimentResult sg_res =
      run_experiment(surge_config(w, ControllerKind::kSurgeGuard), profile);
  // Caladan roughly tracks static (no upscaling happened)...
  EXPECT_GT(caladan.load.violation_volume_ms_s,
            0.5 * stat.load.violation_volume_ms_s);
  // ...and is much worse than SurgeGuard.
  EXPECT_GT(caladan.load.violation_volume_ms_s,
            2.0 * sg_res.load.violation_volume_ms_s);
  // But it also spends no more energy than static.
  EXPECT_LE(caladan.energy_joules, stat.energy_joules * 1.05);
}

TEST(SurgeIntegrationTest, FirstResponderQuietAtSteadyState) {
  // No surge -> per-packet slack must never fire (paper: FirstResponder
  // does not change the steady-state load-latency curve).
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  ExperimentConfig cfg = surge_config(w, ControllerKind::kSurgeGuard);
  cfg.surge_len = 0;  // steady
  const ExperimentResult r = run_experiment(cfg, profile);
  EXPECT_EQ(r.fr_violations, 0u);
  EXPECT_EQ(r.fr_boosts, 0u);
  EXPECT_DOUBLE_EQ(r.load.violation_volume_ms_s, 0.0);
}

TEST(SurgeIntegrationTest, FirstResponderFiresDuringSurges) {
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  const ExperimentResult r =
      run_experiment(surge_config(w, ControllerKind::kSurgeGuard), profile);
  EXPECT_GT(r.fr_violations, 0u);
  EXPECT_GT(r.fr_boosts, 0u);
  EXPECT_GT(r.fr_packets, 100000u);  // every packet is inspected
}

TEST(SurgeIntegrationTest, EscalatorCloseToFullSurgeGuardOnLongSurges) {
  // Paper §VI-B: "<0.3% performance difference between Escalator and
  // SurgeGuard" for 2s surges. We allow a loose factor - the point is that
  // the fast path is NOT the main contributor for long surges.
  const WorkloadInfo w = make_chain();
  const ProfileResult profile = profile_workload(w, 1);
  const ExperimentResult esc =
      run_experiment(surge_config(w, ControllerKind::kEscalator), profile);
  const ExperimentResult sg_res =
      run_experiment(surge_config(w, ControllerKind::kSurgeGuard), profile);
  const ExperimentResult parties =
      run_experiment(surge_config(w, ControllerKind::kParties), profile);
  // Escalator alone already captures most of the benefit vs Parties.
  EXPECT_LT(esc.load.violation_volume_ms_s,
            0.5 * parties.load.violation_volume_ms_s);
  // And the full SurgeGuard is at least as good as Escalator alone.
  EXPECT_LE(sg_res.load.violation_volume_ms_s,
            esc.load.violation_volume_ms_s * 1.1);
}

TEST(SurgeIntegrationTest, CoreLedgerNeverOversubscribed) {
  // Failure-injection style sweep: run each controller and assert the node
  // ledger invariant held throughout (free >= 0 is asserted inside Node;
  // here we check the observable end state).
  const WorkloadInfo w = make_social_read_user_timeline();
  const ProfileResult profile = profile_workload(w, 1);
  for (ControllerKind kind :
       {ControllerKind::kParties, ControllerKind::kCaladan,
        ControllerKind::kSurgeGuard}) {
    ExperimentConfig cfg = surge_config(w, kind);
    cfg.record_alloc_timelines = true;
    const ExperimentResult r = run_experiment(cfg, profile);
    // Sum of allocations never exceeds the node's app cores at any sample.
    const int app_cores =
        static_cast<int>(std::ceil(w.total_initial_cores() * 1.5));
    const std::size_t samples = r.alloc_traces.front().cores.size();
    for (std::size_t i = 0; i < samples; ++i) {
      double total = 0;
      for (const auto& trace : r.alloc_traces) total += trace.cores[i].value;
      ASSERT_LE(total, app_cores + 1e-9) << to_string(kind);
      ASSERT_GE(total, w.spec.services.size());  // every container >= 1 core
    }
  }
}

}  // namespace
}  // namespace sg
