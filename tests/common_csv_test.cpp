#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sg {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/sg_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.write_row({"a", "b", "c"});
    w.write_row({"1", "2", "3"});
  }
  EXPECT_EQ(read_file(path_), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, StreamingCells) {
  {
    CsvWriter w(path_);
    w.cell("name").cell(2.5).cell(7LL).cell(3);
    w.end_row();
  }
  EXPECT_EQ(read_file(path_), "name,2.500000,7,3\n");
}

TEST_F(CsvTest, DestructorFlushesPendingRow) {
  {
    CsvWriter w(path_);
    w.cell("dangling");
    // no end_row(): the destructor must not lose the cell
  }
  EXPECT_EQ(read_file(path_), "dangling\n");
}

TEST(CsvEscapeTest, PlainPassThrough) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommasQuoted) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlinesQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(FmtDoubleTest, Precision) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace sg
