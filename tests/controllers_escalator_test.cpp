#include "controllers/escalator.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;

Escalator::Options fast_opts() {
  Escalator::Options o;
  o.interval = 100 * kMillisecond;
  return o;
}

TEST(EscalatorTest, ExecMetricViolationScoresContainer) {
  ControllerTestbed tb;
  Escalator esc(tb.env(300.0), fast_opts());
  tb.publish(tb.c1(), 600.0, 600.0);  // execMetric 2x the 300us target
  tb.publish(tb.c2(), 100.0, 100.0);
  esc.tick();
  EXPECT_EQ(esc.last_scores().at(tb.c1().id()), 1);
  EXPECT_EQ(esc.last_scores().count(tb.c2().id()), 0u);
  EXPECT_EQ(tb.c1().cores(), 4);
}

TEST(EscalatorTest, QueueBuildupScoresDownstreamNotSelf) {
  // Table II row 2: queueBuildup violation at c1 -> candidate is c2.
  ControllerTestbed tb;
  Escalator esc(tb.env(300.0), fast_opts());
  // execMetric at c1 healthy (200 < 300) but queueBuildup 3x.
  tb.publish(tb.c1(), 600.0, 200.0);
  tb.publish(tb.c2(), 150.0, 150.0);
  esc.tick();
  EXPECT_EQ(esc.last_scores().count(tb.c1().id()), 0u);
  EXPECT_EQ(esc.last_scores().at(tb.c2().id()), 1);
  EXPECT_EQ(tb.c2().cores(), 4);  // root cause upscaled
  EXPECT_EQ(tb.c1().cores(), 2);  // queue holder left alone
}

TEST(EscalatorTest, QueueBuildupSetsUpscaleStamp) {
  ControllerTestbed tb;
  Escalator esc(tb.env(300.0), fast_opts());
  tb.publish(tb.c1(), 600.0, 200.0);
  tb.publish(tb.c2(), 150.0, 150.0);
  esc.tick();
  // The stamp materializes on outgoing packets: run one request and check
  // c2 received the hint.
  tb.network.register_client_receiver([](const RpcPacket&) {});
  RpcPacket pkt;
  pkt.request_id = 1;
  pkt.dst_container = tb.app->entry_container();
  pkt.dst_node = tb.app->entry_node();
  pkt.start_time = tb.sim.now_point();
  tb.network.send(kClientNode, pkt);
  tb.sim.run_to_completion();
  ContainerRuntimeMetrics& m = const_cast<ContainerRuntimeMetrics&>(
      tb.app->runtime_metrics(tb.c2().id()));
  EXPECT_TRUE(m.flush(tb.sim.now()).upscale_hint_received);
}

TEST(EscalatorTest, HintReceivedScoresContainer) {
  // Table II row 1: pkt.upscale > 0 -> the receiving container.
  ControllerTestbed tb;
  Escalator esc(tb.env(300.0), fast_opts());
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 150.0, 150.0, /*hint=*/true);
  esc.tick();
  EXPECT_EQ(esc.last_scores().at(tb.c2().id()), 1);
  EXPECT_EQ(tb.c2().cores(), 4);
}

TEST(EscalatorTest, ScoresAccumulateAcrossChecks) {
  ControllerTestbed tb;
  Escalator esc(tb.env(300.0), fast_opts());
  tb.publish(tb.c1(), 900.0, 300.5);        // queue buildup ~3 (downstream c2)
  tb.publish(tb.c2(), 700.0, 700.0, true);  // hint + execMetric violation
  esc.tick();
  EXPECT_EQ(esc.last_scores().at(tb.c2().id()), 3);  // hint + queue + exec
}

TEST(EscalatorTest, HigherScoreWinsScarcePool) {
  ControllerTestbed tb(8, 2, 25);  // 2 free logical cores only
  Escalator esc(tb.env(300.0), fast_opts());
  tb.publish(tb.c1(), 600.0, 600.0);        // score 1
  tb.publish(tb.c2(), 700.0, 700.0, true);  // score 2
  esc.tick();
  EXPECT_EQ(tb.c2().cores(), 4);
  EXPECT_EQ(tb.c1().cores(), 2);
}

TEST(EscalatorTest, SensitivityBreaksScoreTies) {
  ControllerTestbed tb(8, 2, 25);
  Escalator::Options opts = fast_opts();
  Escalator esc(tb.env(300.0), opts);
  // Teach the tracker: c1 insensitive (same exec at 2 vs 3 cores), c2
  // sensitive (halves).
  for (int i = 0; i < 3; ++i) {
    tb.c1().set_cores(2);
    tb.publish(tb.c1(), 100.0, 100.0);
    tb.publish(tb.c2(), 100.0, 100.0);
    esc.tick();
    // Feed the alternative allocations directly via observe-through-tick:
  }
  // Manually shape execAvg: exploit that observe() runs each tick at the
  // CURRENT core count.
  tb.c1().set_cores(3);
  tb.publish(tb.c1(), 100.0, 99.0);  // flat at 3 cores
  tb.publish(tb.c2(), 100.0, 100.0);
  esc.tick();
  tb.c2().set_cores(3);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 100.0, 50.0);  // steep at 3 cores
  esc.tick();
  tb.c1().set_cores(2);
  tb.c2().set_cores(2);
  // Both violate equally (score 1 each); pool has 2 logical cores.
  tb.publish(tb.c1(), 600.0, 600.0);
  tb.publish(tb.c2(), 600.0, 600.0);
  esc.tick();
  // c2 has higher observed sensitivity at its current allocation.
  EXPECT_EQ(tb.c2().cores(), 4);
  EXPECT_EQ(tb.c1().cores(), 2);
}

TEST(EscalatorTest, AblationMetricsOffUsesExecTime) {
  // With use_new_metrics=false, the controller regresses to Parties'
  // signal: the queue holder gets the cores.
  ControllerTestbed tb;
  Escalator::Options opts = fast_opts();
  opts.use_new_metrics = false;
  Escalator esc(tb.env(300.0), opts);
  tb.publish(tb.c1(), 900.0, 150.0);  // all conn wait
  tb.publish(tb.c2(), 150.0, 150.0);
  esc.tick();
  EXPECT_EQ(tb.c1().cores(), 4);  // mis-attributed, as Parties would
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(EscalatorTest, AblationSensitivityOffIgnoresTracker) {
  ControllerTestbed tb;
  Escalator::Options opts = fast_opts();
  opts.use_sensitivity = false;
  Escalator esc(tb.env(300.0), opts);
  tb.publish(tb.c1(), 600.0, 600.0);
  esc.tick();
  EXPECT_EQ(esc.sensitivity().cells(), 0u);  // tracker never fed
}

TEST(EscalatorTest, PartiesDownscaleOnScoreZero) {
  ControllerTestbed tb;
  Escalator::Options opts = fast_opts();
  opts.downscale_hold = 2;
  Escalator esc(tb.env(300.0), opts);
  tb.c1().set_cores(6);
  for (int i = 0; i < 2; ++i) {
    tb.sim.run_until(tb.sim.now() + 100 * kMillisecond);
    tb.publish(tb.c1(), 100.0, 100.0);  // deep slack (ratio 0.33)
    tb.publish(tb.c2(), 200.0, 200.0);
    esc.tick();
  }
  EXPECT_EQ(tb.c1().cores(), 4);
}

TEST(EscalatorTest, NoCoreSlackJudgementWhileBoosted) {
  ControllerTestbed tb;
  Escalator::Options opts = fast_opts();
  opts.downscale_hold = 1;
  Escalator esc(tb.env(300.0), opts);
  tb.c1().set_cores(6);
  tb.c1().set_frequency(3100);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 200.0, 200.0);
  esc.tick();
  // Frequency stepped down, cores untouched (low exec bought by the boost).
  EXPECT_EQ(tb.c1().cores(), 6);
  EXPECT_LT(tb.c1().frequency(), 3100);
}

TEST(EscalatorTest, SensRevocationOnlyWhenAllCandidates) {
  ControllerTestbed tb;
  Escalator::Options opts = fast_opts();
  opts.sens_revoke_period_ticks = 1;
  Escalator esc(tb.env(300.0), opts);
  auto advance = [&]() { tb.sim.run_until(tb.sim.now() + 100 * kMillisecond); };
  // Teach flat sensitivity for c1 around 4 cores (calm rows: exec below the
  // 300us target so no tick upscales during teaching).
  tb.c1().set_cores(3);
  advance();
  tb.publish(tb.c1(), 250.0, 250.0);
  tb.publish(tb.c2(), 200.0, 200.0);
  esc.tick();
  tb.c1().set_cores(4);
  advance();
  tb.publish(tb.c1(), 250.0, 249.0);
  tb.publish(tb.c2(), 200.0, 200.0);
  esc.tick();
  ASSERT_EQ(tb.c1().cores(), 4);
  // Case 1: c2 calm (score 0 exists) -> sens revocation must NOT fire.
  advance();
  tb.publish(tb.c1(), 700.0, 650.0);  // violating and flat
  tb.publish(tb.c2(), 100.0, 100.0);  // calm
  esc.tick();
  EXPECT_GE(tb.c1().cores(), 4);
  // Case 2: both candidates -> sens revocation fires on flat c1. Start c1
  // at 2 so the in-tick grant lands it on 4, where sens[3] is known-flat:
  // the revocation takes the step straight back.
  tb.c1().set_cores(2);
  advance();
  tb.publish(tb.c1(), 700.0, 400.0);  // candidate, flat curve at 3->4
  tb.publish(tb.c2(), 700.0, 700.0);  // candidate
  esc.tick();
  EXPECT_EQ(tb.c1().cores(), 2);  // granted to 4, then sens-revoked to 2
}

TEST(EscalatorTest, FrequencyFallbackWhenPoolDry) {
  ControllerTestbed tb(8, 3, 25);  // app 6, 3+3 allocated -> free 0
  Escalator esc(tb.env(300.0), fast_opts());
  const FreqMhz f0 = tb.c1().frequency();
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.publish(tb.c2(), 200.0, 200.0);
  esc.tick();
  EXPECT_EQ(tb.c1().cores(), 3);      // nothing to grant
  EXPECT_GT(tb.c1().frequency(), f0); // boosted instead
}

}  // namespace
}  // namespace sg
