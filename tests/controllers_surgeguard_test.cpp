#include "controllers/surgeguard.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"
#include "controllers/ideal.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;

TEST(SurgeGuardTest, ComposesEscalatorAndFirstResponder) {
  ControllerTestbed tb;
  SurgeGuard sg_ctrl(tb.env(), tb.network);
  EXPECT_NE(sg_ctrl.first_responder(), nullptr);
  sg_ctrl.start();
  // Escalator ticks must act on bus snapshots.
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.sim.run_until(150 * kMillisecond);
  EXPECT_GT(tb.c1().cores(), 2);
}

TEST(SurgeGuardTest, EscalatorOnlyConfiguration) {
  ControllerTestbed tb;
  SurgeGuard::Options opts;
  opts.enable_first_responder = false;
  SurgeGuard sg_ctrl(tb.env(), tb.network, opts);
  EXPECT_EQ(sg_ctrl.first_responder(), nullptr);
  sg_ctrl.start();  // must not crash without the fast path
}

TEST(SurgeGuardTest, FastPathBoostsWithinMicroseconds) {
  ControllerTestbed tb;
  SurgeGuard::Options opts;
  opts.first_responder.slack_margin = 1.0;
  SurgeGuard sg_ctrl(tb.env(), tb.network, opts);
  sg_ctrl.start();
  tb.network.register_client_receiver([](const RpcPacket&) {});
  tb.sim.run_until(1 * kMillisecond);
  RpcPacket p;
  p.request_id = 1;
  p.dst_container = tb.c1().id();
  p.dst_node = 0;
  p.start_time = TimePoint::origin();  // 1ms late vs 200us expectation
  tb.network.send(kClientNode, p);
  // Well before the first Escalator tick (100ms), frequency is boosted.
  tb.sim.run_until(tb.sim.now() + 100 * kMicrosecond);
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().max_mhz);
}

TEST(SurgeGuardTest, NameIdentifiesComposite) {
  ControllerTestbed tb;
  SurgeGuard sg_ctrl(tb.env(), tb.network);
  EXPECT_EQ(sg_ctrl.name(), "surgeguard");
}

TEST(IdealOracleTest, AllocatesAtDetectionTime) {
  ControllerTestbed tb(8, 2, 64);
  IdealOracleController::Options opts;
  // 30k rps x 100us work = 3 cores of demand > the initial 2.
  opts.pattern = SpikePattern::surges(15000, 2.0, 1 * kSecond, 10 * kSecond,
                                      1 * kSecond);
  opts.detection_delay = 100 * kMillisecond;
  opts.drain_window = 200 * kMillisecond;
  opts.horizon = 5 * kSecond;
  IdealOracleController oracle(tb.env(), opts);
  oracle.start();
  tb.sim.run_until(1 * kSecond + 50 * kMillisecond);
  EXPECT_EQ(tb.c1().cores(), 2);  // before detection
  tb.sim.run_until(1 * kSecond + 150 * kMillisecond);
  EXPECT_GT(tb.c1().cores(), 2);  // after detection: sized for the surge
}

TEST(IdealOracleTest, RestoresAfterDrain) {
  ControllerTestbed tb(8, 2, 64);
  IdealOracleController::Options opts;
  opts.pattern = SpikePattern::surges(5000, 2.0, 1 * kSecond, 10 * kSecond,
                                      1 * kSecond);
  opts.detection_delay = 100 * kMillisecond;
  opts.drain_window = 200 * kMillisecond;
  opts.horizon = 5 * kSecond;
  IdealOracleController oracle(tb.env(), opts);
  oracle.start();
  tb.sim.run_until(2 * kSecond + 300 * kMillisecond);  // surge end + drain
  EXPECT_EQ(tb.c1().cores(), 2);
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(IdealOracleTest, LongerDelayNeedsMoreCores) {
  // The Fig. 4 relationship: a slower detection accumulates more backlog
  // and therefore requires more cores to drain in the same window.
  auto peak_cores = [](SimTime delay) {
    ControllerTestbed tb(8, 2, 64);
    IdealOracleController::Options opts;
    opts.pattern = SpikePattern::surges(15000, 2.0, 1 * kSecond,
                                        10 * kSecond, 1 * kSecond);
    opts.detection_delay = delay;
    opts.drain_window = 200 * kMillisecond;
    opts.horizon = 3 * kSecond;
    IdealOracleController oracle(tb.env(), opts);
    oracle.start();
    tb.sim.run_until(1 * kSecond + delay + 10 * kMillisecond);
    return tb.c1().cores();
  };
  EXPECT_GE(peak_cores(500 * kMillisecond), peak_cores(1 * kMillisecond));
}

}  // namespace
}  // namespace sg
