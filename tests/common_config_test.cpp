#include "common/config.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(ConfigTest, ParsesKeyValues) {
  auto cfg = Config::parse("a = 1\nb = hello\nc=2.5\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("a"), 1);
  EXPECT_EQ(cfg->get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(cfg->get_double("c"), 2.5);
}

TEST(ConfigTest, SectionsPrefixKeys) {
  auto cfg = Config::parse(
      "[service.nginx]\ncores = 2\n[service.redis]\ncores = 1\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("service.nginx.cores"), 2);
  EXPECT_EQ(cfg->get_int("service.redis.cores"), 1);
}

TEST(ConfigTest, CommentsAndBlankLines) {
  auto cfg = Config::parse(
      "# full-line comment\n\na = 1  # trailing comment\n   \n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("a"), 1);
  EXPECT_EQ(cfg->size(), 1u);
}

TEST(ConfigTest, WhitespaceTrimmed) {
  auto cfg = Config::parse("   key   =    value with spaces   \n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_string("key"), "value with spaces");
}

TEST(ConfigTest, MalformedLineFails) {
  std::string err;
  EXPECT_FALSE(Config::parse("just a line without equals\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(ConfigTest, UnterminatedSectionFails) {
  std::string err;
  EXPECT_FALSE(Config::parse("[broken\n", &err).has_value());
}

TEST(ConfigTest, EmptyKeyFails) {
  EXPECT_FALSE(Config::parse(" = value\n").has_value());
}

TEST(ConfigTest, DefaultsWhenMissing) {
  auto cfg = Config::parse("");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("nope", 42), 42);
  EXPECT_DOUBLE_EQ(cfg->get_double("nope", 1.5), 1.5);
  EXPECT_EQ(cfg->get_string("nope", "d"), "d");
  EXPECT_TRUE(cfg->get_bool("nope", true));
}

TEST(ConfigTest, BoolParsing) {
  auto cfg = Config::parse(
      "t1 = true\nt2 = 1\nt3 = yes\nt4 = on\nf1 = false\nf2 = 0\nf3 = no\n"
      "junk = maybe\n");
  ASSERT_TRUE(cfg.has_value());
  for (const char* k : {"t1", "t2", "t3", "t4"}) EXPECT_TRUE(cfg->get_bool(k));
  for (const char* k : {"f1", "f2", "f3"}) EXPECT_FALSE(cfg->get_bool(k, true));
  EXPECT_TRUE(cfg->get_bool("junk", true));  // unparsable -> default
}

TEST(ConfigTest, TypeMismatchFallsBack) {
  auto cfg = Config::parse("s = notanumber\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("s", -1), -1);
  EXPECT_FALSE(cfg->try_get_int("s").has_value());
  EXPECT_FALSE(cfg->try_get_double("s").has_value());
}

TEST(ConfigTest, TryGetParsesStrictly) {
  auto cfg = Config::parse("x = 12\ny = 3.5\nz = 12abc\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->try_get_int("x").value(), 12);
  EXPECT_DOUBLE_EQ(cfg->try_get_double("y").value(), 3.5);
  EXPECT_FALSE(cfg->try_get_int("z").has_value());  // trailing junk
}

TEST(ConfigTest, KeysWithPrefix) {
  auto cfg = Config::parse(
      "service.a.x = 1\nservice.b.x = 2\nother = 3\nservice.c = 4\n");
  ASSERT_TRUE(cfg.has_value());
  const auto keys = cfg->keys_with_prefix("service.");
  EXPECT_EQ(keys.size(), 3u);
}

TEST(ConfigTest, SetAndRoundTrip) {
  Config cfg;
  cfg.set("b", "2");
  cfg.set("a", "1");
  const std::string text = cfg.to_string();
  auto reparsed = Config::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->get_int("a"), 1);
  EXPECT_EQ(reparsed->get_int("b"), 2);
}

TEST(ConfigTest, LastWriterWins) {
  auto cfg = Config::parse("a = 1\na = 2\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("a"), 2);
}

TEST(ConfigTest, LoadMissingFileFails) {
  std::string err;
  EXPECT_FALSE(Config::load("/nonexistent/path/config", &err).has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace sg
