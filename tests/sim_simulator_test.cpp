#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sg {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, ScheduleAfterAdvancesClock) {
  Simulator sim;
  SimTime seen = kTimeInfinity;  // sentinel: callback never ran
  sim.schedule_after(100, [&]() { seen = sim.now(); });
  sim.run_to_completion();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, ScheduleAtAbsolute) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(50, [&]() { seen.push_back(sim.now()); });
  sim.schedule_at(25, [&]() { seen.push_back(sim.now()); });
  sim.run_to_completion();
  EXPECT_EQ(seen, (std::vector<SimTime>{25, 50}));
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(100, []() {});
  sim.run_to_completion();
  SimTime seen = kTimeInfinity;  // sentinel: callback never ran
  sim.schedule_at(10, [&]() { seen = sim.now(); });  // in the past
  sim.run_to_completion();
  EXPECT_EQ(seen, 100);

  sim.schedule_after(-5, [&]() { seen = sim.now(); });  // negative delay
  sim.run_to_completion();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&]() { ++fired; });
  sim.schedule_at(20, [&]() { ++fired; });
  sim.schedule_at(30, [&]() { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);          // events at t<=20 fire
  EXPECT_EQ(sim.now(), 20);     // clock lands exactly on the boundary
  sim.run_until(35);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 35);     // clock reaches end even after queue drains
}

TEST(SimulatorTest, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(1, []() {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, HandlersCanScheduleMore) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_after(10, [&]() {
    seen.push_back(sim.now());
    sim.schedule_after(5, [&]() { seen.push_back(sim.now()); });
  });
  sim.run_to_completion();
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(10, [&]() { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(i, []() {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, PeriodicRunsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_periodic(100, 50, [&]() {
    ++ticks;
    return ticks < 4;
  });
  sim.run_to_completion();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(sim.now(), 100 + 3 * 50);
}

TEST(SimulatorTest, PeriodicFirstFiringAtStart) {
  Simulator sim;
  std::vector<SimTime> at;
  sim.schedule_periodic(30, 10, [&]() {
    at.push_back(sim.now());
    return at.size() < 3;
  });
  sim.run_to_completion();
  EXPECT_EQ(at, (std::vector<SimTime>{30, 40, 50}));
}

TEST(SimulatorTest, PeriodicStopsWithPendingQueueDestruction) {
  // A periodic that never returns false must not leak or crash when the
  // simulator is destroyed with its next event pending.
  auto sim = std::make_unique<Simulator>();
  int ticks = 0;
  sim->schedule_periodic(0, 10, [&]() {
    ++ticks;
    return true;
  });
  sim->run_until(100);
  EXPECT_EQ(ticks, 11);
  sim.reset();  // destruction with a live periodic event
}

TEST(SimulatorTest, RngIsSeedDeterministic) {
  Simulator a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

}  // namespace
}  // namespace sg
