#include "controllers/caladan.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;

TEST(CaladanTest, UpscalesOnQueueBuildup) {
  ControllerTestbed tb;
  CaladanAlgo caladan(tb.env());
  // queueBuildup = 600/200 = 3.0 at c1.
  tb.publish(tb.c1(), 600.0, 200.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  caladan.tick();
  EXPECT_GT(tb.c1().cores(), 2);
}

TEST(CaladanTest, TargetsQueueHolderNotRootCause) {
  // The paper's point: Caladan feeds the container HOLDING the queue (c1),
  // not the downstream container causing it (c2).
  ControllerTestbed tb;
  CaladanAlgo caladan(tb.env());
  tb.publish(tb.c1(), 600.0, 200.0);  // implicit queue at c1
  tb.publish(tb.c2(), 150.0, 150.0);  // c2 looks fine (fixed pool hides it)
  caladan.tick();
  EXPECT_GT(tb.c1().cores(), 2);
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(CaladanTest, BlindToConnectionPerRequestOverload) {
  // With queueBuildup ~ 1 (no pools), Caladan never upscales, no matter how
  // slow the containers are — the paper's hotelReservation failure.
  ControllerTestbed tb(-1);
  CaladanAlgo caladan(tb.env());
  tb.publish(tb.c1(), 5000.0, 5000.0);  // 16x over target but qb = 1.0
  tb.publish(tb.c2(), 5000.0, 5000.0);
  caladan.tick();
  EXPECT_EQ(tb.c1().cores(), 2);
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(CaladanTest, HyperthreadGranularityGrants) {
  ControllerTestbed tb;
  CaladanAlgo::Options opts;
  opts.grant_step = 1;  // single-hyperthread mode
  CaladanAlgo caladan(tb.env(), opts);
  tb.publish(tb.c1(), 600.0, 200.0);
  caladan.tick();
  EXPECT_EQ(tb.c1().cores(), 3);  // odd allocation allowed
}

TEST(CaladanTest, ReclaimsIdleCores) {
  ControllerTestbed tb;
  CaladanAlgo::Options opts;
  opts.interval = 50 * kMillisecond;
  CaladanAlgo caladan(tb.env(), opts);
  tb.c1().set_cores(6);
  // First tick establishes the busy baseline (conservative: assumes busy).
  tb.sim.run_until(50 * kMillisecond);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  caladan.tick();
  const int after_first = tb.c1().cores();
  // Advance sim time with the container fully idle, then tick again.
  tb.sim.run_until(tb.sim.now() + 100 * kMillisecond);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  caladan.tick();
  EXPECT_LT(tb.c1().cores(), after_first);
}

TEST(CaladanTest, DoesNotReclaimBusyCores) {
  ControllerTestbed tb;
  CaladanAlgo caladan(tb.env());
  // Keep c1 busy: one long-running job per core.
  tb.c1().submit(1e12, []() {});
  tb.c1().submit(1e12, []() {});
  tb.publish(tb.c1(), 100.0, 100.0);
  caladan.tick();
  tb.sim.run_until(tb.sim.now() + 100 * kMillisecond);
  tb.publish(tb.c1(), 100.0, 100.0);
  caladan.tick();
  EXPECT_EQ(tb.c1().cores(), 2);
}

TEST(CaladanTest, WorstQueueServedFirstUnderScarcity) {
  // node 25 -> app 6 cores, 2+2 allocated, 2 free; grant_step=2 means only
  // one container can be served.
  ControllerTestbed tb(8, 2, 25);
  CaladanAlgo caladan(tb.env());
  tb.publish(tb.c1(), 600.0, 200.0);  // qb 3.0
  tb.publish(tb.c2(), 900.0, 100.0);  // qb 9.0 -> served first
  caladan.tick();
  EXPECT_EQ(tb.c2().cores(), 4);
  EXPECT_EQ(tb.c1().cores(), 2);
}

TEST(CaladanTest, StartSchedulesTicks) {
  ControllerTestbed tb;
  CaladanAlgo::Options opts;
  opts.interval = 50 * kMillisecond;
  CaladanAlgo caladan(tb.env(), opts);
  caladan.start();
  tb.publish(tb.c1(), 600.0, 200.0);
  tb.sim.run_until(60 * kMillisecond);
  EXPECT_GT(tb.c1().cores(), 2);
}

}  // namespace
}  // namespace sg
