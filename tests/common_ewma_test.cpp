#include "common/ewma.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, PaperAlphaConvention) {
  // Paper III-C: execAvg = alpha*old + (1-alpha)*new with alpha = 0.5.
  Ewma e(0.5);
  e.add(10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, AlphaOneFreezesValue) {
  Ewma e(1.0);
  e.add(10.0);
  e.add(999.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, AlphaZeroTracksLast) {
  Ewma e(0.0);
  e.add(10.0);
  e.add(999.0);
  EXPECT_DOUBLE_EQ(e.value(), 999.0);
}

TEST(EwmaTest, CountsSamples) {
  Ewma e;
  for (int i = 0; i < 7; ++i) e.add(1.0);
  EXPECT_EQ(e.count(), 7);
}

TEST(EwmaTest, ResetClears) {
  Ewma e;
  e.add(5.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.count(), 0);
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 60; ++i) e.add(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-9);
}

TEST(WindowedMeanTest, EmptyWindow) {
  WindowedMean w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.peek(), 0.0);
  EXPECT_DOUBLE_EQ(w.take(), 0.0);
}

TEST(WindowedMeanTest, MeanOfWindow) {
  WindowedMean w;
  w.add(1.0);
  w.add(2.0);
  w.add(6.0);
  EXPECT_EQ(w.count(), 3);
  EXPECT_DOUBLE_EQ(w.peek(), 3.0);
}

TEST(WindowedMeanTest, TakeResets) {
  WindowedMean w;
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.take(), 4.0);
  EXPECT_TRUE(w.empty());
  w.add(10.0);
  EXPECT_DOUBLE_EQ(w.take(), 10.0);
}

TEST(WindowedMeanTest, PeekDoesNotReset) {
  WindowedMean w;
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.peek(), 4.0);
  EXPECT_FALSE(w.empty());
}

}  // namespace
}  // namespace sg
