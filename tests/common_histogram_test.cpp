#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sg {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.record(1'000'000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1'000'000);
  EXPECT_EQ(h.max(), 1'000'000);
  // Bucketed value within the relative error bound.
  EXPECT_NEAR(static_cast<double>(h.p50()), 1e6, 1e6 * 0.04);
}

TEST(HistogramTest, MeanIsExact) {
  // The mean is tracked outside the buckets, so it has no bucketing error.
  LatencyHistogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(HistogramTest, RecordNWeights) {
  LatencyHistogram h;
  h.record_n(1000, 99);
  h.record_n(100000, 1);
  EXPECT_EQ(h.count(), 100u);
  // p50 in the 1000 bucket, p99.5 near 100000.
  EXPECT_NEAR(static_cast<double>(h.p50()), 1000, 1000 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.percentile(99.9)), 100000, 100000 * 0.05);
}

TEST(HistogramTest, PercentileMonotone) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.record(static_cast<SimTime>(rng.uniform(100.0, 1e7)));
  }
  SimTime prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 98.0, 99.0, 99.9}) {
    const SimTime v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileRelativeErrorBounded) {
  // Uniform known distribution: p50 of U[0, 10ms] ~ 5ms within bucket error.
  LatencyHistogram h;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) {
    h.record(static_cast<SimTime>(rng.uniform(0.0, 1e7)));
  }
  EXPECT_NEAR(static_cast<double>(h.p50()), 5e6, 5e6 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p90()), 9e6, 9e6 * 0.05);
}

TEST(HistogramTest, ClampsTinyValues) {
  LatencyHistogram h;
  h.record(0);
  h.record(-5);  // degenerate inputs clamp to the first bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.min(), 1);
}

TEST(HistogramTest, ExtremePercentilesReturnEdges) {
  LatencyHistogram h;
  for (SimTime v : {100, 200, 400, 800}) h.record(v);
  EXPECT_LE(h.percentile(0.0), h.percentile(100.0));
  EXPECT_LE(h.percentile(100.0), h.max());
  EXPECT_GE(h.percentile(0.0), h.min());
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record_n(1000, 50);
  b.record_n(100000, 50);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.max(), 100000);
  EXPECT_EQ(a.min(), 1000);
  EXPECT_NEAR(a.mean(), (1000.0 * 50 + 100000.0 * 50) / 100.0, 1.0);
}

TEST(HistogramTest, MergeMismatchedGeometryIsNoop) {
  LatencyHistogram a(32), b(16);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record_n(5000, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p99(), 0);
}

TEST(HistogramTest, CountAtOrAbove) {
  LatencyHistogram h;
  h.record_n(1000, 90);
  h.record_n(1'000'000, 10);
  EXPECT_EQ(h.count_at_or_above(500'000), 10u);
  EXPECT_EQ(h.count_at_or_above(1), 100u);
  EXPECT_EQ(h.count_at_or_above(100'000'000), 0u);
}

TEST(HistogramTest, NonzeroBucketsSumToCount) {
  LatencyHistogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    h.record(static_cast<SimTime>(rng.exponential(1e6)));
  }
  std::uint64_t total = 0;
  for (const auto& b : h.nonzero_buckets()) total += b.count;
  EXPECT_EQ(total, h.count());
}

// Property sweep: percentile(100) == max bucket and ordering holds for
// several distributions.
class HistogramPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramPropertyTest, OrderAndBounds) {
  LatencyHistogram h;
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  for (int i = 0; i < 20000; ++i) {
    h.record(static_cast<SimTime>(rng.exponential(GetParam())));
  }
  EXPECT_LE(h.p50(), h.p98());
  EXPECT_LE(h.p98(), h.p99());
  EXPECT_LE(h.p99(), h.max());
  EXPECT_GE(h.p50(), h.min());
}

INSTANTIATE_TEST_SUITE_P(Means, HistogramPropertyTest,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6, 1e7, 1e8));

}  // namespace
}  // namespace sg
