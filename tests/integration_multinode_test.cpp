// Multi-node decentralization: per-node controllers, per-node pools, and
// cross-node upscale hints riding on data packets (the paper's Fig. 1 / §IV
// claims).
#include <gtest/gtest.h>

#include "controllers/escalator.hpp"
#include "core/experiment.hpp"
#include "workload/load_generator.hpp"

namespace sg {
namespace {

using namespace sg::literals;

TEST(MultiNodeTest, RoundRobinPlacementSpansNodes) {
  const WorkloadInfo w = make_hotel_search();  // 12 services
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.nodes = 4;
  cfg.controller = ControllerKind::kStatic;
  cfg.warmup = 1_s;
  cfg.duration = 2_s;
  cfg.record_alloc_timelines = true;
  const ProfileResult profile = profile_workload(w, 4);
  const ExperimentResult r = run_experiment(cfg, profile);
  EXPECT_EQ(r.alloc_traces.size(), 12u);
  EXPECT_GT(r.load.completed, 0u);
}

TEST(MultiNodeTest, CrossNodeHintPropagation) {
  // Build a two-node, two-service app directly: c1 on node 0, c2 on node 1.
  // An Escalator on node 0 detects queueBuildup at c1; the hint must reach
  // c2 on node 1 via pkt.upscale, and node 1's Escalator must act on it —
  // with no shared state between the two controllers.
  Simulator sim(5);
  Cluster cluster(sim);
  cluster.add_node(40, 19);
  cluster.add_node(40, 19);
  Network network(sim);
  MetricsPlane metrics(2);

  AppSpec spec;
  spec.name = "xnode";
  ServiceSpec s1, s2;
  s1.name = "c1";
  s1.work_ns_mean = 100'000;
  s1.work_sigma = 0;
  s1.children = {1};
  s2.name = "c2";
  s2.work_ns_mean = 100'000;
  s2.work_sigma = 0;
  spec.services = {s1, s2};
  spec.pool_sizes = {{4}, {}};
  Deployment dep;
  dep.node_of_service = {0, 1};
  dep.initial_cores = {2, 2};
  Application app(cluster, network, metrics, spec, dep);

  TargetMap targets;
  ContainerTargets t;
  t.expected_exec_metric_ns = 300'000.0;
  t.expected_time_from_start = Duration::ns(200'000);
  targets.per_container[0] = t;
  targets.per_container[1] = t;
  targets.expected_e2e_latency = Duration::ns(500'000);

  auto env_for = [&](int node) {
    ControllerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    env.node = &cluster.node(node);
    env.bus = &metrics.node_bus(node);
    env.app = &app;
    env.topology = app.topology();
    env.targets = targets;
    return env;
  };
  Escalator esc0(env_for(0));
  Escalator esc1(env_for(1));

  // Node 0's bus reports a queueBuildup violation at c1.
  MetricsSnapshot snap;
  snap.container = 0;
  snap.window_end = sim.now();
  snap.visits = 50;
  snap.avg_exec_time_ns = 900'000;
  snap.avg_exec_metric_ns = 200'000;
  snap.queue_buildup = 4.5;
  metrics.node_bus(0).publish(snap);
  esc0.tick();
  // c1 must NOT be upscaled by its own node (Table II row 2: the candidates
  // are downstream), and c2 lives on another node — nothing local to do.
  EXPECT_EQ(cluster.container(0).cores(), 2);
  EXPECT_EQ(cluster.container(1).cores(), 2);

  // Run traffic so the hint piggybacks on real packets to node 1.
  network.register_client_receiver([](const RpcPacket&) {});
  for (int i = 0; i < 20; ++i) {
    RpcPacket pkt;
    pkt.request_id = static_cast<RequestId>(i + 1);
    pkt.dst_container = app.entry_container();
    pkt.dst_node = app.entry_node();
    pkt.start_time = sim.now_point();
    network.send(kClientNode, pkt);
  }
  sim.run_to_completion();

  // Node 1's runtime observed the hint; after it publishes, node 1's own
  // Escalator upscales c2 — purely from local state.
  ContainerRuntimeMetrics& m2 =
      const_cast<ContainerRuntimeMetrics&>(app.runtime_metrics(1));
  metrics.node_bus(1).publish(m2.flush(sim.now()));
  esc1.tick();
  EXPECT_GT(cluster.container(1).cores(), 2);
}

TEST(MultiNodeTest, PerNodePoolsAreIsolated) {
  // A violation on node 0 must never draw cores from node 1's pool.
  const WorkloadInfo w = make_chain();
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.nodes = 2;
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 3_s;
  cfg.duration = 8_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 2_s;
  cfg.record_alloc_timelines = true;
  const ProfileResult profile = profile_workload(w, 2);
  const ExperimentResult r = run_experiment(cfg, profile);

  // Per-node allocation never exceeds that node's app cores. Node sizing:
  // ceil(init_on_node * 1.5); services round-robin (0,2,4 -> node 0).
  int init_node0 = 0, init_node1 = 0;
  for (std::size_t i = 0; i < w.initial_cores.size(); ++i) {
    (i % 2 == 0 ? init_node0 : init_node1) += w.initial_cores[i];
  }
  const double cap0 = std::ceil(init_node0 * 1.5);
  const double cap1 = std::ceil(init_node1 * 1.5);
  const std::size_t samples = r.alloc_traces.front().cores.size();
  for (std::size_t s = 0; s < samples; ++s) {
    double total0 = 0, total1 = 0;
    for (std::size_t i = 0; i < r.alloc_traces.size(); ++i) {
      (i % 2 == 0 ? total0 : total1) += r.alloc_traces[i].cores[s].value;
    }
    ASSERT_LE(total0, cap0 + 1e-9);
    ASSERT_LE(total1, cap1 + 1e-9);
  }
}

TEST(MultiNodeTest, SurgeGuardStillWinsAcrossNodes) {
  const WorkloadInfo w = make_social_read_user_timeline();
  ExperimentConfig cfg;
  cfg.workload = w;
  cfg.nodes = 2;
  cfg.warmup = 3_s;
  cfg.duration = 10_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 2_s;
  cfg.surge_period = 5_s;
  const ProfileResult profile = profile_workload(w, 2);
  cfg.controller = ControllerKind::kParties;
  const ExperimentResult parties = run_experiment(cfg, profile);
  cfg.controller = ControllerKind::kSurgeGuard;
  const ExperimentResult sg_res = run_experiment(cfg, profile);
  EXPECT_LT(sg_res.load.violation_volume_ms_s,
            parties.load.violation_volume_ms_s);
}

}  // namespace
}  // namespace sg
