// Experiment harness: profiling, end-to-end runs, determinism, sweeps.
// These are the slowest tests in the suite (~seconds): each runs a real,
// if shortened, simulation.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/sweep.hpp"

namespace sg {
namespace {

using namespace sg::literals;

ExperimentConfig short_config(ControllerKind kind, std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = kind;
  cfg.warmup = 2_s;
  cfg.duration = 8_s;
  cfg.surge_mult = 1.75;
  cfg.surge_len = 1_s;
  cfg.surge_period = 4_s;
  cfg.seed = seed;
  return cfg;
}

TEST(ProfileTest, TargetsAreTwiceLowLoadValues) {
  const WorkloadInfo w = make_chain();
  const ProfileResult p2 = profile_workload(w, 1, 2.0);
  const ProfileResult p4 = profile_workload(w, 1, 4.0);
  ASSERT_EQ(p2.targets.per_container.size(), w.spec.services.size());
  for (const auto& [id, t] : p2.targets.per_container) {
    const auto& t4 = p4.targets.of(id);
    EXPECT_NEAR(t4.expected_exec_metric_ns, 2.0 * t.expected_exec_metric_ns,
                t.expected_exec_metric_ns * 0.01);
  }
  EXPECT_GT(p2.low_load_mean_latency, 0);
  EXPECT_GE(p2.low_load_p98, p2.low_load_mean_latency);
}

TEST(ProfileTest, DeeperContainersExpectLaterArrival) {
  // expectedTimeFromStart must grow along the chain.
  const ProfileResult p = profile_workload(make_chain(), 1);
  Duration prev = Duration::ns(-1);
  for (int i = 0; i < 5; ++i) {
    const Duration tfs = p.targets.of(i).expected_time_from_start;
    EXPECT_GT(tfs, prev) << "service " << i;
    prev = tfs;
  }
}

TEST(ExperimentTest, StaticRunProducesSaneResults) {
  const ExperimentResult r = run_experiment(short_config(ControllerKind::kStatic));
  EXPECT_GT(r.load.completed, 0u);
  EXPECT_GT(r.load.p98, 0);
  EXPECT_GT(r.avg_cores, 0.0);
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_EQ(r.fr_boosts, 0u);  // no FirstResponder in a static run
  EXPECT_EQ(r.measure_start, 2_s);
  EXPECT_EQ(r.measure_end, 10_s);
}

TEST(ExperimentTest, StaticAllocationNeverChanges) {
  ExperimentConfig cfg = short_config(ControllerKind::kStatic);
  cfg.record_alloc_timelines = true;
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.alloc_traces.size(), 5u);
  for (const auto& trace : r.alloc_traces) {
    for (const auto& pt : trace.cores) {
      EXPECT_DOUBLE_EQ(pt.value, 2.0) << trace.name;
    }
  }
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentConfig cfg = short_config(ControllerKind::kSurgeGuard, 13);
  const ExperimentResult a = run_experiment(cfg, profile);
  const ExperimentResult b = run_experiment(cfg, profile);
  EXPECT_EQ(a.load.completed, b.load.completed);
  EXPECT_DOUBLE_EQ(a.load.violation_volume_ms_s, b.load.violation_volume_ms_s);
  EXPECT_DOUBLE_EQ(a.avg_cores, b.avg_cores);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.fr_boosts, b.fr_boosts);
}

TEST(ExperimentTest, SeedsChangeOutcomes) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult a =
      run_experiment(short_config(ControllerKind::kStatic, 1), profile);
  const ExperimentResult b =
      run_experiment(short_config(ControllerKind::kStatic, 2), profile);
  // Different seeds -> different service-time draws -> different results.
  EXPECT_NE(a.load.violation_volume_ms_s, b.load.violation_volume_ms_s);
}

TEST(ExperimentTest, SurgeGuardBeatsStaticOnSurges) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult stat =
      run_experiment(short_config(ControllerKind::kStatic), profile);
  const ExperimentResult sg_res =
      run_experiment(short_config(ControllerKind::kSurgeGuard), profile);
  EXPECT_LT(sg_res.load.violation_volume_ms_s,
            stat.load.violation_volume_ms_s);
  EXPECT_GT(sg_res.fr_packets, 0u);
}

TEST(ExperimentTest, MultiNodeRunWorks) {
  ExperimentConfig cfg = short_config(ControllerKind::kSurgeGuard);
  cfg.nodes = 2;
  const ProfileResult profile = profile_workload(cfg.workload, 2);
  const ExperimentResult r = run_experiment(cfg, profile);
  EXPECT_GT(r.load.completed, 0u);
  // Surges must still be contained reasonably with per-node controllers.
  EXPECT_GT(r.load.throughput_rps, 0.9 * cfg.workload.base_rate_rps);
}

TEST(ExperimentTest, PatternOverrideUsed) {
  ExperimentConfig cfg = short_config(ControllerKind::kStatic);
  cfg.pattern_override = SpikePattern::steady(cfg.workload.base_rate_rps * 0.5);
  const ProfileResult profile = profile_workload(cfg.workload, 1);
  const ExperimentResult r = run_experiment(cfg, profile);
  // Half rate, no surges -> zero violations under the generous QoS.
  EXPECT_DOUBLE_EQ(r.load.violation_volume_ms_s, 0.0);
  EXPECT_NEAR(r.load.throughput_rps, cfg.workload.base_rate_rps * 0.5,
              cfg.workload.base_rate_rps * 0.02);
}

TEST(ExperimentTest, LatencySeriesRecorded) {
  ExperimentConfig cfg = short_config(ControllerKind::kStatic);
  cfg.record_latency_series = true;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_FALSE(r.latency_series.empty());
}

TEST(ExperimentTest, MakePatternDerivesSurges) {
  ExperimentConfig cfg = short_config(ControllerKind::kStatic);
  const SpikePattern p = cfg.make_pattern();
  EXPECT_TRUE(p.has_spikes());
  EXPECT_DOUBLE_EQ(p.spike_rate_rps, cfg.workload.base_rate_rps * 1.75);
  EXPECT_EQ(p.first_spike_at, cfg.warmup + cfg.first_surge_offset);
  cfg.surge_len = 0;
  EXPECT_FALSE(cfg.make_pattern().has_spikes());
}

TEST(SweepTest, TrimmedAggregation) {
  ExperimentConfig cfg = short_config(ControllerKind::kStatic);
  cfg.duration = 4_s;
  const ProfileResult profile = profile_workload(cfg.workload, 1);
  SweepOptions opts;
  opts.replications = 5;
  opts.trim = 1;
  opts.threads = 1;
  const RepStats stats = run_replicated(cfg, profile, opts);
  EXPECT_EQ(stats.replications(), 5u);
  EXPECT_DOUBLE_EQ(stats.vv, trimmed_mean(stats.violation_volume, 1));
  EXPECT_DOUBLE_EQ(stats.cores, trimmed_mean(stats.avg_cores, 1));
}

TEST(SweepTest, ParallelMatchesSerial) {
  // Replications are independent simulations; the thread count must not
  // change any number.
  ExperimentConfig cfg = short_config(ControllerKind::kParties);
  cfg.duration = 3_s;
  const ProfileResult profile = profile_workload(cfg.workload, 1);
  SweepOptions serial;
  serial.replications = 3;
  serial.threads = 1;
  SweepOptions parallel = serial;
  parallel.threads = 3;
  const RepStats a = run_replicated(cfg, profile, serial);
  const RepStats b = run_replicated(cfg, profile, parallel);
  ASSERT_EQ(a.violation_volume.size(), b.violation_volume.size());
  for (std::size_t i = 0; i < a.violation_volume.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.violation_volume[i], b.violation_volume[i]);
    EXPECT_DOUBLE_EQ(a.energy_joules[i], b.energy_joules[i]);
  }
}

TEST(ControllerKindTest, Names) {
  EXPECT_STREQ(to_string(ControllerKind::kParties), "Parties");
  EXPECT_STREQ(to_string(ControllerKind::kCaladan), "CaladanAlgo");
  EXPECT_STREQ(to_string(ControllerKind::kSurgeGuard), "SurgeGuard");
  EXPECT_STREQ(to_string(ControllerKind::kEscalator), "Escalator");
  EXPECT_STREQ(to_string(ControllerKind::kIdealOracle), "IdealOracle");
}

}  // namespace
}  // namespace sg
