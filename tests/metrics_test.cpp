// execMetric (eq. 2), queueBuildup (eq. 3), the metrics bus, and the
// sensitivity tracker (Design Feature #3).
#include <gtest/gtest.h>

#include "metrics/container_metrics.hpp"
#include "metrics/metrics_bus.hpp"
#include "metrics/sensitivity.hpp"

namespace sg {
namespace {

VisitRecord visit(SimTime arrive, SimTime depart, SimTime conn_wait,
                  bool hint = false) {
  VisitRecord r;
  r.container = 1;
  r.arrive = TimePoint::at(arrive);
  r.depart = TimePoint::at(depart);
  r.conn_wait = Duration{conn_wait};
  r.time_from_start = Duration{arrive};
  r.upscale_hint = hint;
  return r;
}

TEST(VisitRecordTest, DerivedMetrics) {
  const VisitRecord r = visit(100, 600, 200);
  EXPECT_EQ(r.exec_time(), Duration::ns(500));
  EXPECT_EQ(r.exec_metric(), Duration::ns(300));  // eq. 2: execTime - connWait
}

TEST(ContainerMetricsTest, WindowAverages) {
  ContainerRuntimeMetrics m(1);
  m.record_visit(visit(0, 1000, 0));
  m.record_visit(visit(0, 3000, 0));
  const MetricsSnapshot s = m.flush(5000);
  EXPECT_EQ(s.visits, 2);
  EXPECT_DOUBLE_EQ(s.avg_exec_time_ns, 2000.0);
  EXPECT_DOUBLE_EQ(s.avg_exec_metric_ns, 2000.0);
  EXPECT_DOUBLE_EQ(s.queue_buildup, 1.0);  // no conn wait
  EXPECT_EQ(s.window_end, 5000);
  EXPECT_TRUE(s.valid());
}

TEST(ContainerMetricsTest, QueueBuildupFromConnWait) {
  ContainerRuntimeMetrics m(1);
  // execTime 1000, of which 600 waiting for a connection.
  m.record_visit(visit(0, 1000, 600));
  const MetricsSnapshot s = m.flush(1);
  EXPECT_DOUBLE_EQ(s.avg_exec_metric_ns, 400.0);
  EXPECT_DOUBLE_EQ(s.queue_buildup, 2.5);  // eq. 3: 1000/400
}

TEST(ContainerMetricsTest, FlushResetsWindow) {
  ContainerRuntimeMetrics m(1);
  m.record_visit(visit(0, 1000, 0));
  m.flush(1);
  const MetricsSnapshot s2 = m.flush(2);
  EXPECT_EQ(s2.visits, 0);
  EXPECT_FALSE(s2.valid());
  EXPECT_DOUBLE_EQ(s2.queue_buildup, 1.0);
}

TEST(ContainerMetricsTest, HintLatchesWithinWindow) {
  ContainerRuntimeMetrics m(1);
  m.record_visit(visit(0, 10, 0, true));
  m.record_visit(visit(0, 10, 0, false));
  EXPECT_TRUE(m.flush(1).upscale_hint_received);
  m.record_visit(visit(0, 10, 0, false));
  EXPECT_FALSE(m.flush(2).upscale_hint_received);  // cleared by flush
}

TEST(ContainerMetricsTest, DegenerateExecMetricClamped) {
  ContainerRuntimeMetrics m(1);
  // All time spent waiting: execMetric ~ 0 -> queueBuildup clamps large.
  m.record_visit(visit(0, 1000, 1000));
  const MetricsSnapshot s = m.flush(1);
  EXPECT_GE(s.queue_buildup, 1e5);
}

TEST(ContainerMetricsTest, LifetimeAveragesSurviveFlush) {
  ContainerRuntimeMetrics m(1);
  m.record_visit(visit(0, 1000, 0));
  m.flush(1);
  m.record_visit(visit(0, 3000, 0));
  m.flush(2);
  EXPECT_EQ(m.total_visits(), 2u);
  EXPECT_DOUBLE_EQ(m.lifetime_avg_exec_metric_ns(), 2000.0);
}

TEST(MetricsBusTest, PublishAndRead) {
  MetricsBus bus;
  EXPECT_FALSE(bus.latest(1).has_value());
  MetricsSnapshot s;
  s.container = 1;
  s.window_end = 100;
  s.visits = 5;
  bus.publish(s);
  const auto got = bus.latest(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->visits, 5);
}

TEST(MetricsBusTest, LatestOverwrites) {
  MetricsBus bus;
  MetricsSnapshot s;
  s.container = 1;
  s.window_end = 100;
  bus.publish(s);
  s.window_end = 200;
  bus.publish(s);
  EXPECT_EQ(bus.latest(1)->window_end, 200);
}

TEST(MetricsBusTest, StalenessDetection) {
  MetricsBus bus;
  EXPECT_TRUE(bus.is_stale(1, 0, 100));  // never published
  MetricsSnapshot s;
  s.container = 1;
  s.window_end = 1000;
  bus.publish(s);
  EXPECT_FALSE(bus.is_stale(1, 1050, 100));
  EXPECT_TRUE(bus.is_stale(1, 1200, 100));
}

TEST(MetricsBusTest, KnownContainers) {
  MetricsBus bus;
  for (int id : {3, 1, 2}) {
    MetricsSnapshot s;
    s.container = id;
    bus.publish(s);
  }
  EXPECT_EQ(bus.known_containers().size(), 3u);
}

TEST(MetricsPlaneTest, PerNodeBuses) {
  MetricsPlane plane(2);
  MetricsSnapshot s;
  s.container = 9;
  plane.node_bus(0).publish(s);
  EXPECT_TRUE(plane.node_bus(0).latest(9).has_value());
  EXPECT_FALSE(plane.node_bus(1).latest(9).has_value());
  EXPECT_EQ(plane.node_count(), 2u);
}

TEST(SensitivityTest, UnobservedCellsReturnNullopt) {
  SensitivityTracker t;
  EXPECT_FALSE(t.exec_avg(1, 2).has_value());
  EXPECT_FALSE(t.sensitivity(1, 2).has_value());
  EXPECT_EQ(t.cells(), 0u);
}

TEST(SensitivityTest, EwmaWithPaperAlpha) {
  SensitivityTracker t(0.5);
  t.observe(1, 2, 100.0);
  t.observe(1, 2, 200.0);
  EXPECT_DOUBLE_EQ(t.exec_avg(1, 2).value(), 150.0);
}

TEST(SensitivityTest, SensitivityFormula) {
  // sens[c][n] = 1 - execAvg[n+1]/execAvg[n] (paper III-C).
  SensitivityTracker t;
  t.observe(1, 2, 1000.0);
  t.observe(1, 3, 600.0);
  EXPECT_DOUBLE_EQ(t.sensitivity(1, 2).value(), 0.4);
}

TEST(SensitivityTest, FlatCurveSensitivityNearZero) {
  SensitivityTracker t;
  t.observe(1, 4, 500.0);
  t.observe(1, 5, 498.0);
  EXPECT_NEAR(t.sensitivity(1, 4).value(), 0.004, 1e-9);
  EXPECT_TRUE(t.revocation_candidate(1, 5, 0.02));
}

TEST(SensitivityTest, SteepCurveNotRevoked) {
  SensitivityTracker t;
  t.observe(1, 1, 2000.0);
  t.observe(1, 2, 1000.0);
  EXPECT_FALSE(t.revocation_candidate(1, 2, 0.02));
}

TEST(SensitivityTest, NeverRevokeLastCore) {
  SensitivityTracker t;
  t.observe(1, 0, 100.0);
  t.observe(1, 1, 100.0);
  EXPECT_FALSE(t.revocation_candidate(1, 1, 0.02));
}

TEST(SensitivityTest, RevocationNeedsObservedCells) {
  SensitivityTracker t;
  t.observe(1, 4, 500.0);  // execAvg[3] unknown
  EXPECT_FALSE(t.revocation_candidate(1, 4, 0.02));
}

TEST(SensitivityTest, UnknownDefaultsToOptimistic) {
  SensitivityTracker t;
  EXPECT_DOUBLE_EQ(t.sensitivity_or(1, 3, 0.5), 0.5);
  t.observe(1, 3, 1000.0);
  t.observe(1, 4, 900.0);
  EXPECT_NEAR(t.sensitivity_or(1, 3, 0.5), 0.1, 1e-9);
}

TEST(SensitivityTest, IgnoresDegenerateObservations) {
  SensitivityTracker t;
  t.observe(1, 2, 0.0);    // non-positive exec ignored
  t.observe(1, -1, 5.0);   // negative cores ignored
  EXPECT_EQ(t.cells(), 0u);
}

TEST(SensitivityTest, PerContainerIsolation) {
  SensitivityTracker t;
  t.observe(1, 2, 1000.0);
  t.observe(2, 2, 5000.0);
  EXPECT_DOUBLE_EQ(t.exec_avg(1, 2).value(), 1000.0);
  EXPECT_DOUBLE_EQ(t.exec_avg(2, 2).value(), 5000.0);
}

}  // namespace
}  // namespace sg
