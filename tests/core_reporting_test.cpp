#include "core/reporting.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  // Header, underline, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "value" starts at the same offset in header as "22" row.
  const std::size_t header_col = out.find("value");
  const std::size_t row_line = out.find("longer-name");
  const std::size_t row_col = out.find("22", row_line) - row_line;
  EXPECT_EQ(header_col, row_col);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows().at(0).size(), 3u);
}

TEST(TablePrinterTest, NoTrailingSpaces) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  std::size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    if (pos > 0) EXPECT_NE(out[pos - 1], ' ');
    ++pos;
  }
}

TEST(ReportingTest, FmtRatio) {
  EXPECT_EQ(fmt_ratio(0.5), "0.50x");
  EXPECT_EQ(fmt_ratio(1.0, 1), "1.0x");
  EXPECT_EQ(fmt_ratio(12.345, 2), "12.35x");
}

}  // namespace
}  // namespace sg
