#include "core/reporting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace sg {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  // Header, underline, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "value" starts at the same offset in header as "22" row.
  const std::size_t header_col = out.find("value");
  const std::size_t row_line = out.find("longer-name");
  const std::size_t row_col = out.find("22", row_line) - row_line;
  EXPECT_EQ(header_col, row_col);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows().at(0).size(), 3u);
}

TEST(TablePrinterTest, NoTrailingSpaces) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  std::size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    if (pos > 0) {
      EXPECT_NE(out[pos - 1], ' ');
    }
    ++pos;
  }
}

TEST(TablePrinterTest, EmptyCellsRenderWithoutShiftingColumns) {
  TablePrinter t({"name", "mid", "value"});
  t.add_row({"a", "", "1"});
  t.add_row({"bb", "x", "22"});
  const std::string out = t.render();
  // The row with the empty middle cell keeps the third column aligned with
  // the header's.
  const std::size_t header_col = out.find("value");
  const std::size_t row_line = out.find("bb");
  EXPECT_EQ(out.find("22", row_line) - row_line, header_col);
  const std::size_t empty_line = out.find("a ");
  EXPECT_EQ(out.find("1", empty_line) - empty_line, header_col);
  // An all-empty row renders as a blank (possibly whitespace-free) line, not
  // a crash and not a missing line.
  TablePrinter t2({"a", "b"});
  t2.add_row({"", ""});
  const std::string out2 = t2.render();
  EXPECT_EQ(std::count(out2.begin(), out2.end(), '\n'), 3);
}

TEST(TablePrinterTest, WideUtf8HeadersAlignByDisplayWidth) {
  // "µs" and "Δt" are 3 bytes but 2 display columns wide; alignment must
  // use display_width, not byte length.
  TablePrinter t({"metric", "µs", "Δt"});
  t.add_row({"alloc", "12", "3"});
  t.add_row({"free", "345", "67"});
  const std::string out = t.render();
  const std::size_t header_end = out.find('\n');
  const std::string header = out.substr(0, header_end);
  const std::size_t col2 = header.find("µs");
  const std::size_t row_line = out.find("alloc");
  // Column offsets in display columns: bytes up to "µs" are ASCII, so the
  // byte offset equals the display offset there.
  EXPECT_EQ(out.find("12", row_line) - row_line, col2);
  EXPECT_EQ(display_width("µs"), 2u);
  EXPECT_EQ(display_width("Δt"), 2u);
  EXPECT_EQ(display_width("ascii"), 5u);
  EXPECT_EQ(display_width(""), 0u);
}

TEST(ReportingTest, FmtRatio) {
  EXPECT_EQ(fmt_ratio(0.5), "0.50x");
  EXPECT_EQ(fmt_ratio(1.0, 1), "1.0x");
  EXPECT_EQ(fmt_ratio(12.345, 2), "12.35x");
}

TEST(ReportingTest, FmtRatioEdgeValues) {
  EXPECT_EQ(fmt_ratio(0.0), "0.00x");
  EXPECT_EQ(fmt_ratio(-1.5), "-1.50x");
  EXPECT_EQ(fmt_ratio(std::numeric_limits<double>::infinity()), "infx");
  EXPECT_EQ(fmt_ratio(-std::numeric_limits<double>::infinity()), "-infx");
  EXPECT_EQ(fmt_ratio(1e9, 0), "1000000000x");
}

}  // namespace
}  // namespace sg
