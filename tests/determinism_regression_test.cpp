// Determinism regression gate (DESIGN.md §7): for a pinned config and seed,
// repeated runs must be BIT-identical — same violation volume, same latency
// percentiles, same event count, byte-identical Chrome-trace export. This is
// the runtime half of the determinism firewall: sg-lint and the poison
// header keep order-unstable constructs out of the tree, and this test
// catches anything they cannot see (logic that is order-stable in syntax
// but stateful across runs).
//
// The config pins a surge run with tracing, faults disabled, and the full
// controller stack, so the comparison covers the controller decision loops,
// the metrics bus, the network, and the trace exporter end to end.
#include <gtest/gtest.h>

#include <string>

#include "common/assert.hpp"
#include "core/experiment.hpp"
#include "trace/export.hpp"

namespace sg {
namespace {

ExperimentConfig pinned_config() {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;
  cfg.seed = 20240814;
  cfg.surge_mult = 2.0;
  cfg.surge_len = 500 * kMillisecond;
  cfg.surge_period = 2 * kSecond;
  cfg.trace_enabled = true;
  cfg.trace_sample = 0.5;
  cfg.trace_capacity = 1u << 15;
  return cfg;
}

TEST(DeterminismRegressionTest, ThreeRunsBitIdenticalVVAndTrace) {
  const ExperimentResult first = run_experiment(pinned_config());
  ASSERT_TRUE(first.trace.has_value());
  const std::string first_json = chrome_trace_json(*first.trace);
  ASSERT_GT(first_json.size(), 1000u);
  ASSERT_GT(first.load.completed, 0u);

  for (int run = 2; run <= 3; ++run) {
    const ExperimentResult r = run_experiment(pinned_config());
    SCOPED_TRACE("repetition " + std::to_string(run));

    // VV and every load-side number: exact, not approximate.
    EXPECT_EQ(r.load.violation_volume_ms_s, first.load.violation_volume_ms_s);
    EXPECT_EQ(r.load.issued, first.load.issued);
    EXPECT_EQ(r.load.completed, first.load.completed);
    EXPECT_EQ(r.load.p50, first.load.p50);
    EXPECT_EQ(r.load.p98, first.load.p98);
    EXPECT_EQ(r.load.p99, first.load.p99);
    EXPECT_EQ(r.load.max_latency, first.load.max_latency);

    // Simulation-wide counters: one diverging event shifts these.
    EXPECT_EQ(r.events_processed, first.events_processed);
    EXPECT_EQ(r.fr_packets, first.fr_packets);
    EXPECT_EQ(r.fr_violations, first.fr_violations);
    EXPECT_EQ(r.fr_boosts, first.fr_boosts);

    // Exact FP equality on accumulated metrics: any hash-order accumulation
    // shows up here even when the totals agree to many digits.
    EXPECT_EQ(r.avg_cores, first.avg_cores);
    EXPECT_EQ(r.energy_joules, first.energy_joules);

    // Byte-identical trace export: spans, decisions, and ordering.
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_EQ(chrome_trace_json(*r.trace), first_json);
  }
}

// The profile step (low-load calibration) feeds every controller's targets;
// if it drifts between runs, everything downstream drifts with it.
TEST(DeterminismRegressionTest, ProfilingIsRunToRunStable) {
  const ExperimentConfig cfg = pinned_config();
  const ProfileResult a = profile_workload(cfg.workload, cfg.nodes);
  const ProfileResult b = profile_workload(cfg.workload, cfg.nodes);
  EXPECT_EQ(a.low_load_mean_latency, b.low_load_mean_latency);
  EXPECT_EQ(a.low_load_p98, b.low_load_p98);
}

// --- cross-shard equivalence (DESIGN.md §8) ---
//
// The sharded event loop must be an implementation detail: for a pinned
// 4-node surge config, shards = 1 (the classic serial path), 2, and 4 must
// agree EXACTLY — same VV, same percentiles, same event count, exact FP
// equality on energy, byte-identical trace export. One misrouted mailbox
// entry, one same-timestamp rank collision, or one cross-shard RNG draw
// breaks at least one of these.

ExperimentConfig sharded_config(int shards) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.nodes = 4;
  cfg.shards = shards;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;
  cfg.seed = 20250807;
  cfg.surge_mult = 2.0;
  cfg.surge_len = 500 * kMillisecond;
  cfg.surge_period = 2 * kSecond;
  cfg.trace_enabled = true;
  cfg.trace_sample = 0.5;
  cfg.trace_capacity = 1u << 15;
  return cfg;
}

void expect_identical(const ExperimentResult& r, const ExperimentResult& ref,
                      const std::string& ref_json) {
  // Load-side results: exact.
  EXPECT_EQ(r.load.violation_volume_ms_s, ref.load.violation_volume_ms_s);
  EXPECT_EQ(r.load.violation_duration_frac, ref.load.violation_duration_frac);
  EXPECT_EQ(r.load.issued, ref.load.issued);
  EXPECT_EQ(r.load.completed, ref.load.completed);
  EXPECT_EQ(r.load.p50, ref.load.p50);
  EXPECT_EQ(r.load.p98, ref.load.p98);
  EXPECT_EQ(r.load.p99, ref.load.p99);
  EXPECT_EQ(r.load.max_latency, ref.load.max_latency);
  EXPECT_EQ(r.load.mean_latency_ns, ref.load.mean_latency_ns);

  // Event count: every shard split must schedule the same events.
  EXPECT_EQ(r.events_processed, ref.events_processed);
  EXPECT_EQ(r.fr_packets, ref.fr_packets);
  EXPECT_EQ(r.fr_violations, ref.fr_violations);
  EXPECT_EQ(r.fr_boosts, ref.fr_boosts);

  // Accumulated FP metrics: exact equality, so summation order matters.
  EXPECT_EQ(r.avg_cores, ref.avg_cores);
  EXPECT_EQ(r.energy_joules, ref.energy_joules);

  // Byte-identical trace export (spans, decisions, ordering).
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(chrome_trace_json(*r.trace), ref_json);
}

TEST(CrossShardEquivalenceTest, Shards124BitIdentical) {
  const ExperimentResult serial = run_experiment(sharded_config(1));
  ASSERT_TRUE(serial.trace.has_value());
  const std::string serial_json = chrome_trace_json(*serial.trace);
  ASSERT_GT(serial_json.size(), 1000u);
  ASSERT_GT(serial.load.completed, 0u);

  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards = " + std::to_string(shards));
    const ExperimentResult r = run_experiment(sharded_config(shards));
    expect_identical(r, serial, serial_json);
  }
}

// Same gate under chaos: faults, retries, and a controller stall exercise
// the per-node fault streams, the retry timers, and the tick gate across
// shard boundaries.
TEST(CrossShardEquivalenceTest, ChaosRunBitIdentical) {
  const auto chaos = [](int shards) {
    ExperimentConfig cfg = sharded_config(shards);
    cfg.trace_enabled = false;
    std::string err;
    const auto plan = FaultPlan::parse(
        "drop:start_ms=1500,len_ms=800,rate=0.05;"
        "dup:start_ms=2000,len_ms=600,rate=0.05;"
        "slow:node=1,start_ms=2500,len_ms=400,factor=0.3;"
        "freeze:node=2,start_ms=3200,len_ms=200;"
        "stall:start_ms=1800,len_ms=500",
        &err);
    SG_ASSERT_MSG(plan.has_value(), err.c_str());
    cfg.fault_plan = *plan;
    cfg.rpc_retry.enabled = true;
    cfg.drain = 2 * kSecond;
    return cfg;
  };
  const ExperimentResult serial = run_experiment(chaos(1));
  ASSERT_GT(serial.load.completed, 0u);
  const std::string serial_faults = serial.faults.digest();
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards = " + std::to_string(shards));
    const ExperimentResult r = run_experiment(chaos(shards));
    EXPECT_EQ(r.load.violation_volume_ms_s, serial.load.violation_volume_ms_s);
    EXPECT_EQ(r.load.issued, serial.load.issued);
    EXPECT_EQ(r.load.completed, serial.load.completed);
    EXPECT_EQ(r.load.p50, serial.load.p50);
    EXPECT_EQ(r.load.p99, serial.load.p99);
    EXPECT_EQ(r.events_processed, serial.events_processed);
    EXPECT_EQ(r.faults.digest(), serial_faults);
    EXPECT_EQ(r.app_rpc_retries, serial.app_rpc_retries);
    EXPECT_EQ(r.app_rpc_failures, serial.app_rpc_failures);
    EXPECT_EQ(r.controller_ticks_stalled, serial.controller_ticks_stalled);
    EXPECT_EQ(r.avg_cores, serial.avg_cores);
    EXPECT_EQ(r.energy_joules, serial.energy_joules);
  }
}

}  // namespace
}  // namespace sg
