// Determinism regression gate (DESIGN.md §7): for a pinned config and seed,
// repeated runs must be BIT-identical — same violation volume, same latency
// percentiles, same event count, byte-identical Chrome-trace export. This is
// the runtime half of the determinism firewall: sg-lint and the poison
// header keep order-unstable constructs out of the tree, and this test
// catches anything they cannot see (logic that is order-stable in syntax
// but stateful across runs).
//
// The config pins a surge run with tracing, faults disabled, and the full
// controller stack, so the comparison covers the controller decision loops,
// the metrics bus, the network, and the trace exporter end to end.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "trace/export.hpp"

namespace sg {
namespace {

ExperimentConfig pinned_config() {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;
  cfg.seed = 20240814;
  cfg.surge_mult = 2.0;
  cfg.surge_len = 500 * kMillisecond;
  cfg.surge_period = 2 * kSecond;
  cfg.trace_enabled = true;
  cfg.trace_sample = 0.5;
  cfg.trace_capacity = 1u << 15;
  return cfg;
}

TEST(DeterminismRegressionTest, ThreeRunsBitIdenticalVVAndTrace) {
  const ExperimentResult first = run_experiment(pinned_config());
  ASSERT_TRUE(first.trace.has_value());
  const std::string first_json = chrome_trace_json(*first.trace);
  ASSERT_GT(first_json.size(), 1000u);
  ASSERT_GT(first.load.completed, 0u);

  for (int run = 2; run <= 3; ++run) {
    const ExperimentResult r = run_experiment(pinned_config());
    SCOPED_TRACE("repetition " + std::to_string(run));

    // VV and every load-side number: exact, not approximate.
    EXPECT_EQ(r.load.violation_volume_ms_s, first.load.violation_volume_ms_s);
    EXPECT_EQ(r.load.issued, first.load.issued);
    EXPECT_EQ(r.load.completed, first.load.completed);
    EXPECT_EQ(r.load.p50, first.load.p50);
    EXPECT_EQ(r.load.p98, first.load.p98);
    EXPECT_EQ(r.load.p99, first.load.p99);
    EXPECT_EQ(r.load.max_latency, first.load.max_latency);

    // Simulation-wide counters: one diverging event shifts these.
    EXPECT_EQ(r.events_processed, first.events_processed);
    EXPECT_EQ(r.fr_packets, first.fr_packets);
    EXPECT_EQ(r.fr_violations, first.fr_violations);
    EXPECT_EQ(r.fr_boosts, first.fr_boosts);

    // Exact FP equality on accumulated metrics: any hash-order accumulation
    // shows up here even when the totals agree to many digits.
    EXPECT_EQ(r.avg_cores, first.avg_cores);
    EXPECT_EQ(r.energy_joules, first.energy_joules);

    // Byte-identical trace export: spans, decisions, and ordering.
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_EQ(chrome_trace_json(*r.trace), first_json);
  }
}

// The profile step (low-load calibration) feeds every controller's targets;
// if it drifts between runs, everything downstream drifts with it.
TEST(DeterminismRegressionTest, ProfilingIsRunToRunStable) {
  const ExperimentConfig cfg = pinned_config();
  const ProfileResult a = profile_workload(cfg.workload, cfg.nodes);
  const ProfileResult b = profile_workload(cfg.workload, cfg.nodes);
  EXPECT_EQ(a.low_load_mean_latency, b.low_load_mean_latency);
  EXPECT_EQ(a.low_load_p98, b.low_load_p98);
}

}  // namespace
}  // namespace sg
