#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "trace/export.hpp"

namespace sg {
namespace {

TraceSpan span(RequestId id, SpanKind kind, int container, SimTime begin,
               SimTime end) {
  TraceSpan s;
  s.request_id = id;
  s.kind = kind;
  s.container = container;
  s.begin = TimePoint::at(begin);
  s.end = TimePoint::at(end);
  return s;
}

TEST(TraceSinkTest, HeadSamplingIsDeterministicAndRateMonotone) {
  TraceOptions a, b;
  a.head_sample_rate = 0.3;
  b.head_sample_rate = 0.3;
  TraceSink s1(a), s2(b);
  int sampled = 0;
  for (RequestId id = 1; id <= 2000; ++id) {
    EXPECT_EQ(s1.head_sampled(id), s2.head_sampled(id));
    if (s1.head_sampled(id)) ++sampled;
  }
  // SplitMix64 hash: the hit rate lands near 30% for any id set.
  EXPECT_GT(sampled, 2000 * 0.2);
  EXPECT_LT(sampled, 2000 * 0.4);

  // Raising the rate never un-samples a request (threshold comparison on
  // the same hash).
  TraceOptions hi = a;
  hi.head_sample_rate = 0.8;
  TraceSink s3(hi);
  for (RequestId id = 1; id <= 2000; ++id) {
    if (s1.head_sampled(id)) {
      EXPECT_TRUE(s3.head_sampled(id));
    }
  }
}

TEST(TraceSinkTest, RateZeroAndOneAreExact) {
  TraceOptions none, all;
  none.head_sample_rate = 0.0;
  all.head_sample_rate = 1.0;
  TraceSink s_none(none), s_all(all);
  for (RequestId id = 1; id <= 500; ++id) {
    EXPECT_FALSE(s_none.head_sampled(id));
    EXPECT_TRUE(s_all.head_sampled(id));
  }
}

TEST(TraceSinkTest, RingEvictsOldestBeyondCapacity) {
  TraceOptions opts;
  opts.capacity = 4;
  TraceSink sink(opts);
  for (RequestId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(sink.begin_request(id, TimePoint::at(static_cast<SimTime>(id))));
    sink.end_request(id, TimePoint::at(static_cast<SimTime>(id) + 5),
                     Duration::ns(5));
  }
  EXPECT_EQ(sink.kept_count(), 4u);
  EXPECT_EQ(sink.stats().traces_evicted, 6u);
  const TraceReport report = sink.report();
  ASSERT_EQ(report.traces.size(), 4u);
  EXPECT_EQ(report.traces.front().id, 7u);  // 1..6 evicted
  EXPECT_EQ(report.traces.back().id, 10u);
}

TEST(TraceSinkTest, TailSamplingKeepsOnlySloViolators) {
  TraceOptions opts;
  opts.head_sample_rate = 0.0;  // nothing head-sampled
  opts.keep_slo_violators = true;
  TraceSink sink(opts);
  sink.set_slo_threshold(Duration::ns(100));
  for (RequestId id = 1; id <= 20; ++id) {
    EXPECT_TRUE(sink.should_record(id));
    ASSERT_TRUE(sink.begin_request(id, TimePoint::at(0)));
    // Odd ids violate (latency 150 > 100), even ids do not.
    sink.end_request(id, TimePoint::at(200),
                     Duration::ns(id % 2 == 1 ? 150 : 50));
  }
  EXPECT_EQ(sink.kept_count(), 10u);
  EXPECT_EQ(sink.stats().slo_violators_kept, 10u);
  EXPECT_EQ(sink.stats().requests_discarded, 10u);
  for (const RequestTrace& t : sink.report().traces) {
    EXPECT_TRUE(t.slo_violation);
    EXPECT_FALSE(t.head_sampled);
    EXPECT_EQ(t.id % 2, 1u);
  }
}

TEST(TraceSinkTest, SpansForUnknownRequestsAreIgnored) {
  TraceSink sink(TraceOptions{});
  sink.add_span(span(42, SpanKind::kExec, 0, 0, 10));
  EXPECT_EQ(sink.stats().spans_recorded, 0u);
  ASSERT_TRUE(sink.begin_request(1, TimePoint::at(0)));
  sink.add_span(span(1, SpanKind::kExec, 0, 0, 10));
  EXPECT_EQ(sink.stats().spans_recorded, 1u);
}

TEST(TraceSinkTest, AbandonDropsPendingBuffer) {
  TraceSink sink(TraceOptions{});
  ASSERT_TRUE(sink.begin_request(1, TimePoint::at(0)));
  sink.add_span(span(1, SpanKind::kExec, 0, 0, 10));
  sink.abandon_request(1);
  EXPECT_EQ(sink.pending_count(), 0u);
  EXPECT_EQ(sink.kept_count(), 0u);
  EXPECT_EQ(sink.stats().requests_abandoned, 1u);
}

TEST(TraceSinkTest, PendingOverflowRefusesNewRequests) {
  TraceOptions opts;
  opts.max_pending = 2;
  TraceSink sink(opts);
  EXPECT_TRUE(sink.begin_request(1, TimePoint::at(0)));
  EXPECT_TRUE(sink.begin_request(2, TimePoint::at(0)));
  EXPECT_FALSE(sink.begin_request(3, TimePoint::at(0)));
  EXPECT_EQ(sink.stats().pending_overflow, 1u);
  sink.end_request(1, TimePoint::at(10), Duration::ns(10));
  EXPECT_TRUE(sink.begin_request(4, TimePoint::at(10)));
}

TEST(TraceSinkTest, DecisionCapCountsDrops) {
  TraceOptions opts;
  opts.max_decisions = 3;
  TraceSink sink(opts);
  for (int i = 0; i < 5; ++i) {
    sink.add_decision({TimePoint::at(i), DecisionKind::kCoreGrant,
                       "escalator", 0, 1, 2});
  }
  EXPECT_EQ(sink.stats().decisions_recorded, 3u);
  EXPECT_EQ(sink.stats().decisions_dropped, 2u);
  EXPECT_EQ(sink.report().decisions.size(), 3u);
}

// Hand-built report: client -> svc0 -> reply, with exec + conn-wait +
// hops, plus one decision event.
TraceReport tiny_report() {
  TraceOptions opts;
  TraceSink sink(opts);
  sink.set_slo_threshold(Duration::ns(1000));
  EXPECT_TRUE(sink.begin_request(7, TimePoint::at(0)));
  sink.add_span(span(7, SpanKind::kNetHop, 0, 0, 100));        // client -> 0
  sink.add_span(span(7, SpanKind::kExec, 0, 100, 400));        // exec
  sink.add_span(span(7, SpanKind::kConnWait, 0, 400, 450));    // pool wait
  auto visit = span(7, SpanKind::kVisit, 0, 100, 500);
  visit.boost_active_ns = 200.0;
  sink.add_span(visit);
  auto back = span(7, SpanKind::kNetHop, -1, 500, 600);        // 0 -> client
  back.src_container = 0;
  back.is_response = true;
  sink.add_span(back);
  sink.end_request(7, TimePoint::at(600), Duration::ns(600));
  sink.add_decision({TimePoint::at(250), DecisionKind::kFreqBoost,
                     "first-responder", 0, 0,
                     3200});
  sink.set_container_info({{0, 0, "app/frontend"}});
  return sink.report();
}

TEST(ChromeTraceTest, EmitsStructurallyValidJson) {
  const std::string json = chrome_trace_json(tiny_report());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("app/frontend"), std::string::npos);
  EXPECT_NE(json.find("first-responder"), std::string::npos);

  // Structural sanity without a JSON library: braces/brackets balance and
  // quotes pair up (the exporter escapes embedded quotes).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTraceTest, DeterministicForSameReport) {
  EXPECT_EQ(chrome_trace_json(tiny_report()), chrome_trace_json(tiny_report()));
}

TEST(BreakdownTest, FractionsComputedFromSpans) {
  const auto rows = latency_breakdown(tiny_report());
  ASSERT_EQ(rows.size(), 1u);
  const BreakdownRow& r = rows[0];
  EXPECT_EQ(r.service, "app/frontend");
  EXPECT_EQ(r.visits, 1u);
  EXPECT_DOUBLE_EQ(r.avg_visit_us, 0.4);          // 400 ns visit
  EXPECT_DOUBLE_EQ(r.conn_wait_frac, 50.0 / 400.0);
  EXPECT_DOUBLE_EQ(r.boost_frac, 200.0 / 400.0);
  EXPECT_DOUBLE_EQ(r.avg_net_in_us, 0.1);         // 100 ns inbound hop
}

TEST(CriticalPathTest, GreedyCoverAccountsGaps) {
  TraceSink sink(TraceOptions{});
  ASSERT_TRUE(sink.begin_request(1, TimePoint::at(0)));
  sink.add_span(span(1, SpanKind::kNetHop, 0, 0, 100));
  auto e = span(1, SpanKind::kExec, 0, 100, 300);
  e.cpu_served_ns = 150.0;  // 50 ns cpu-queue inside the exec segment
  sink.add_span(e);
  // Uncovered [300, 400): a structural gap.
  sink.add_span(span(1, SpanKind::kNetHop, -1, 400, 500));
  sink.end_request(1, TimePoint::at(500), Duration::ns(500));
  const auto paths = critical_paths(sink.report(), 1);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& p = paths[0];
  EXPECT_EQ(p.latency, Duration::ns(500));
  EXPECT_EQ(p.net_ns, Duration::ns(200));
  EXPECT_EQ(p.exec_ns, Duration::ns(150));
  EXPECT_EQ(p.queue_ns, Duration::ns(50));
  EXPECT_EQ(p.gap_ns, Duration::ns(100));
  EXPECT_EQ(p.exec_ns + p.queue_ns + p.net_ns + p.gap_ns, p.latency);
}

TEST(CriticalPathTest, SlowestRequestsFirst) {
  TraceSink sink(TraceOptions{});
  for (RequestId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(sink.begin_request(id, TimePoint::at(0)));
    const SimTime latency = static_cast<SimTime>(100 * id);
    sink.add_span(span(id, SpanKind::kNetHop, 0, 0, latency));
    sink.end_request(id, TimePoint::at(latency), Duration{latency});
  }
  const auto paths = critical_paths(sink.report(), 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].id, 3u);
  EXPECT_EQ(paths[1].id, 2u);
}

TEST(TraceEnumsTest, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(SpanKind::kVisit), "visit");
  EXPECT_STREQ(to_string(SpanKind::kExec), "exec");
  EXPECT_STREQ(to_string(SpanKind::kConnWait), "conn-wait");
  EXPECT_STREQ(to_string(SpanKind::kNetHop), "net-hop");
  EXPECT_STREQ(to_string(DecisionKind::kCoreGrant), "core-grant");
  EXPECT_STREQ(to_string(DecisionKind::kCoreRevoke), "core-revoke");
  EXPECT_STREQ(to_string(DecisionKind::kFreqBoost), "freq-boost");
  EXPECT_STREQ(to_string(DecisionKind::kFreqLower), "freq-lower");
  EXPECT_STREQ(to_string(DecisionKind::kUpscaleStamp), "upscale-stamp");
  EXPECT_STREQ(to_string(DecisionKind::kAllocSet), "alloc-set");
}

}  // namespace
}  // namespace sg
