#include "workload/spike.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

using namespace sg::literals;

TEST(SpikeTest, SteadyPatternHasNoSpikes) {
  const SpikePattern p = SpikePattern::steady(1000);
  EXPECT_FALSE(p.has_spikes());
  EXPECT_DOUBLE_EQ(p.rate_at(0), 1000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(100 * kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 1000.0);
  EXPECT_EQ(p.next_rate_change(0), kTimeInfinity);
  EXPECT_TRUE(p.spikes_in(0, 100 * kSecond).empty());
}

TEST(SpikeTest, SurgeFactoryFields) {
  const SpikePattern p = SpikePattern::surges(1000, 1.75, 2_s, 10_s, 5_s);
  EXPECT_TRUE(p.has_spikes());
  EXPECT_DOUBLE_EQ(p.spike_rate_rps, 1750.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 1750.0);
}

TEST(SpikeTest, RateDuringAndOutsideSpike) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  EXPECT_DOUBLE_EQ(p.rate_at(4_s), 1000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(5_s), 2000.0);   // spike start inclusive
  EXPECT_DOUBLE_EQ(p.rate_at(6'999'999'999), 2000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(7_s), 1000.0);   // spike end exclusive
  EXPECT_DOUBLE_EQ(p.rate_at(15_s), 2000.0);  // next period
}

TEST(SpikeTest, InSpikeBeforeFirst) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  EXPECT_FALSE(p.in_spike(0));
  EXPECT_FALSE(p.in_spike(4'999'999'999));
}

TEST(SpikeTest, NextRateChangeBoundaries) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  EXPECT_EQ(p.next_rate_change(0), 5_s);
  EXPECT_EQ(p.next_rate_change(5_s), 7_s);       // inside spike -> its end
  EXPECT_EQ(p.next_rate_change(6_s), 7_s);
  EXPECT_EQ(p.next_rate_change(7_s), 15_s);      // after spike -> next start
  EXPECT_EQ(p.next_rate_change(14'999'999'999), 15_s);
}

TEST(SpikeTest, NextRateChangeStrictlyAfter) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    const SimTime next = p.next_rate_change(t);
    ASSERT_GT(next, t);
    t = next;
  }
}

TEST(SpikeTest, SpikesInWindow) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  const auto windows = p.spikes_in(0, 30_s);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, 5_s);
  EXPECT_EQ(windows[0].end, 7_s);
  EXPECT_EQ(windows[1].start, 15_s);
  EXPECT_EQ(windows[2].start, 25_s);
}

TEST(SpikeTest, SpikesInPartialOverlap) {
  const SpikePattern p = SpikePattern::surges(1000, 2.0, 2_s, 10_s, 5_s);
  // Window [6s, 16s): catches the tail of spike 1 and the head of spike 2.
  const auto windows = p.spikes_in(6_s, 16_s);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, 5_s);
  EXPECT_EQ(windows[1].start, 15_s);
}

TEST(SpikeTest, MicrosecondSpikes) {
  // Fig. 10 scale: 100us spikes at 20x.
  using namespace sg::literals;
  const SpikePattern p =
      SpikePattern::surges(10000, 20.0, 100_us, 1_s, 1_s);
  EXPECT_DOUBLE_EQ(p.rate_at(1_s + 50_us), 200000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(1_s + 150_us), 10000.0);
  EXPECT_EQ(p.next_rate_change(1_s), 1_s + 100_us);
}

TEST(SpikeTest, EqualRatesMeansNoSpikes) {
  SpikePattern p = SpikePattern::surges(1000, 1.0, 2_s, 10_s, 5_s);
  EXPECT_FALSE(p.has_spikes());
  EXPECT_DOUBLE_EQ(p.rate_at(6_s), 1000.0);
}

}  // namespace
}  // namespace sg
