#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

TEST(TimelineTest, InitialValueHoldsEverywhere) {
  StepTimeline t(5.0);
  EXPECT_DOUBLE_EQ(t.at(0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(1'000'000), 5.0);
  EXPECT_DOUBLE_EQ(t.current(), 5.0);
}

TEST(TimelineTest, StepChangesValueFromTime) {
  StepTimeline t(1.0);
  t.set(100, 3.0);
  EXPECT_DOUBLE_EQ(t.at(99), 1.0);
  EXPECT_DOUBLE_EQ(t.at(100), 3.0);
  EXPECT_DOUBLE_EQ(t.at(500), 3.0);
  EXPECT_DOUBLE_EQ(t.current(), 3.0);
}

TEST(TimelineTest, SameTimeOverwrites) {
  StepTimeline t(0.0);
  t.set(100, 1.0);
  t.set(100, 2.0);
  EXPECT_DOUBLE_EQ(t.at(100), 2.0);
  EXPECT_EQ(t.points().size(), 2u);
}

TEST(TimelineTest, RedundantTransitionsCollapse) {
  StepTimeline t(2.0);
  t.set(50, 2.0);  // no-op transition
  EXPECT_EQ(t.points().size(), 1u);
}

TEST(TimelineTest, IntegrateConstant) {
  StepTimeline t(4.0);
  EXPECT_DOUBLE_EQ(t.integrate(0, 100), 400.0);
  EXPECT_DOUBLE_EQ(t.integrate(50, 150), 400.0);
}

TEST(TimelineTest, IntegratePiecewise) {
  StepTimeline t(1.0);
  t.set(10, 3.0);
  t.set(20, 0.0);
  // [0,10): 1.0, [10,20): 3.0, [20,..): 0
  EXPECT_DOUBLE_EQ(t.integrate(0, 30), 10.0 + 30.0 + 0.0);
  EXPECT_DOUBLE_EQ(t.integrate(5, 15), 5.0 + 15.0);
  EXPECT_DOUBLE_EQ(t.integrate(25, 30), 0.0);
}

TEST(TimelineTest, IntegrateEmptyRange) {
  StepTimeline t(9.0);
  EXPECT_DOUBLE_EQ(t.integrate(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(t.integrate(10, 5), 0.0);
}

TEST(TimelineTest, AverageIsTimeWeighted) {
  StepTimeline t(0.0);
  t.set(50, 10.0);
  // [0,50) value 0, [50,100) value 10 -> average 5 over [0,100)
  EXPECT_DOUBLE_EQ(t.average(0, 100), 5.0);
}

TEST(TimelineTest, AverageDegenerateRange) {
  StepTimeline t(3.0);
  t.set(10, 7.0);
  EXPECT_DOUBLE_EQ(t.average(20, 20), 7.0);
}

TEST(TimelineTest, IntegrateAboveThreshold) {
  // The violation-volume primitive: area above the QoS line only.
  StepTimeline t(1.0);
  t.set(10, 5.0);
  t.set(20, 2.0);
  // threshold 2: [0,10) contributes 0 (1<2), [10,20) contributes (5-2)*10,
  // [20,30) contributes 0 (2 == threshold).
  EXPECT_DOUBLE_EQ(t.integrate_above(0, 30, 2.0), 30.0);
}

TEST(TimelineTest, IntegrateAboveAllBelow) {
  StepTimeline t(1.0);
  EXPECT_DOUBLE_EQ(t.integrate_above(0, 1000, 5.0), 0.0);
}

TEST(TimelineTest, IntegrateAbovePartialSegments) {
  StepTimeline t(10.0);
  t.set(100, 0.0);
  // Query window cuts into the first segment only.
  EXPECT_DOUBLE_EQ(t.integrate_above(50, 150, 4.0), 6.0 * 50);
}

TEST(TimelineTest, SampleProducesRegularGrid) {
  StepTimeline t(1.0);
  t.set(15, 2.0);
  const auto pts = t.sample(0, 30, 10);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);   // t=0
  EXPECT_DOUBLE_EQ(pts[1].value, 1.0);   // t=10
  EXPECT_DOUBLE_EQ(pts[2].value, 2.0);   // t=20
  EXPECT_DOUBLE_EQ(pts[3].value, 2.0);   // t=30
}

TEST(TimelineTest, SampleInvalidStep) {
  StepTimeline t(1.0);
  EXPECT_TRUE(t.sample(0, 10, 0).empty());
}

TEST(TimelineTest, TimeAboveCountsOnlyStrictlyAboveSegments) {
  StepTimeline t(1600.0);          // base frequency
  t.set(100, 3200.0);              // boost on
  t.set(300, 1600.0);              // back to base
  t.set(450, 2000.0);              // second, smaller boost
  // Strictly above base: [100, 300) and [450, ...).
  EXPECT_EQ(t.time_above(0, 500, 1600.0), 250);
  // Window clipping on both sides.
  EXPECT_EQ(t.time_above(150, 250, 1600.0), 100);
  EXPECT_EQ(t.time_above(200, 460, 1600.0), 110);
  // Threshold above every value: nothing counts; at-threshold is not above.
  EXPECT_EQ(t.time_above(0, 500, 3200.0), 0);
  // Degenerate/empty windows.
  EXPECT_EQ(t.time_above(200, 200, 1600.0), 0);
  EXPECT_EQ(t.time_above(400, 300, 1600.0), 0);
}

TEST(TimelineTest, TimeAboveIsAdditiveAcrossSplits) {
  StepTimeline t(1.0);
  t.set(100, 7.0);
  t.set(250, 1.0);
  t.set(400, 9.0);
  for (const SimTime split : {0, 1, 100, 101, 250, 399, 400, 500}) {
    EXPECT_EQ(t.time_above(0, split, 3.0) + t.time_above(split, 500, 3.0),
              t.time_above(0, 500, 3.0))
        << "split " << split;
  }
}

// Property: integrate(a,b) + integrate(b,c) == integrate(a,c) for any split.
class TimelineSplitTest : public ::testing::TestWithParam<SimTime> {};

TEST_P(TimelineSplitTest, IntegralIsAdditive) {
  StepTimeline t(2.0);
  t.set(100, 7.0);
  t.set(250, 1.0);
  t.set(400, 9.0);
  const SimTime split = GetParam();
  EXPECT_DOUBLE_EQ(t.integrate(0, split) + t.integrate(split, 500),
                   t.integrate(0, 500));
  EXPECT_DOUBLE_EQ(
      t.integrate_above(0, split, 3.0) + t.integrate_above(split, 500, 3.0),
      t.integrate_above(0, 500, 3.0));
}

INSTANTIATE_TEST_SUITE_P(Splits, TimelineSplitTest,
                         ::testing::Values(0, 1, 99, 100, 101, 250, 399, 400,
                                           499, 500));

}  // namespace
}  // namespace sg
