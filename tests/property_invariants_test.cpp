// Randomized property tests: invariants that must hold under arbitrary
// (seeded, reproducible) operation sequences.
#include <gtest/gtest.h>

#include <cstdio>

#include "app/threadpool.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "sim/timeline.hpp"

namespace sg {
namespace {

// ---------------------------------------------------------------------------
// Processor-sharing container: work conservation. Whatever work is
// submitted, the integral of busy-core time equals the total work delivered
// (at reference frequency), regardless of interleavings and core changes.
class PsConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsConservationTest, BusyTimeEqualsWorkDelivered) {
  Simulator sim(GetParam());
  Rng rng(GetParam() * 77 + 1);
  Container::Params params;
  params.name = "prop";
  params.initial_cores = 2;
  Container c(sim, std::move(params));

  double total_work_ns = 0.0;
  int completed = 0;
  const int jobs = 200;
  SimTime t = 0;
  for (int i = 0; i < jobs; ++i) {
    t += static_cast<SimTime>(rng.exponential(50'000.0));
    const double work = rng.uniform(1'000.0, 200'000.0);
    total_work_ns += work;
    sim.schedule_at(t, [&c, work, &completed]() {
      c.submit(work, [&completed]() { ++completed; });
    });
  }
  // Random core reconfigurations along the way (never to zero so the run
  // terminates).
  for (int i = 0; i < 20; ++i) {
    const SimTime when = static_cast<SimTime>(rng.uniform(0.0, static_cast<double>(t)));
    const int cores = static_cast<int>(rng.uniform_int(1, 4));
    sim.schedule_at(when, [&c, cores]() { c.set_cores(cores); });
  }
  sim.run_to_completion();
  c.sync();
  EXPECT_EQ(completed, jobs);
  // busy_core_seconds (at ref frequency, speed 1.0) * 1e9 == work delivered.
  EXPECT_NEAR(c.busy_core_seconds() * 1e9, total_work_ns,
              total_work_ns * 0.001 + 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsConservationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// With frequency changes, the busy-time integral scales by 1/speed — check
// conservation of work via a frequency-weighted integral is preserved in the
// simple all-max case.
TEST(PsConservationTest, FrequencyScalesDeliveredWork) {
  Simulator sim(9);
  DvfsModel dvfs;
  Container::Params params;
  params.name = "freq";
  params.initial_cores = 1;
  params.dvfs = dvfs;
  Container c(sim, std::move(params));
  c.set_frequency(dvfs.max_mhz);
  const double speed = dvfs.speed(dvfs.max_mhz);
  c.submit(1'000'000.0, []() {});
  sim.run_to_completion();
  c.sync();
  // Wall time = work/speed; busy cores = 1.
  EXPECT_NEAR(c.busy_core_seconds() * 1e9, 1'000'000.0 / speed, 1000.0);
}

// ---------------------------------------------------------------------------
// Connection pool: under random acquire/release sequences, in_use <=
// capacity, FIFO grant order, and every granted acquire eventually pairs
// with exactly one release.
class PoolPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolPropertyTest, LedgerInvariants) {
  Rng rng(GetParam());
  const int capacity = static_cast<int>(rng.uniform_int(1, 5));
  ConnectionPool pool(capacity);
  int grants = 0;
  int outstanding = 0;
  std::vector<int> grant_order;
  int next_id = 0;

  for (int step = 0; step < 2000; ++step) {
    if (rng.bernoulli(0.55) || outstanding == 0) {
      const int id = next_id++;
      pool.acquire([&grants, &outstanding, &grant_order, id]() {
        ++grants;
        ++outstanding;
        grant_order.push_back(id);
      });
    } else {
      pool.release();
      --outstanding;
    }
    ASSERT_LE(pool.in_use(), capacity);
    ASSERT_GE(pool.in_use(), 0);
    ASSERT_EQ(pool.in_use(), outstanding);
  }
  // FIFO: grants happen in acquire order.
  for (std::size_t i = 1; i < grant_order.size(); ++i) {
    ASSERT_GT(grant_order[i], grant_order[i - 1]);
  }
  // Drain the waiters.
  while (pool.waiting() > 0) {
    pool.release();
    --outstanding;
  }
  ASSERT_EQ(static_cast<std::uint64_t>(grants), pool.total_acquisitions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ---------------------------------------------------------------------------
// Node ledger under random grant/revoke storms.
TEST(NodeLedgerPropertyTest, RandomStormConserves) {
  Simulator sim(21);
  Rng rng(22);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  std::vector<Container*> cs;
  for (int i = 0; i < 6; ++i) {
    cs.push_back(&cluster.add_container("c" + std::to_string(i), 0, 3));
  }
  Node& node = cluster.node(0);
  const int total = node.app_cores();
  for (int step = 0; step < 5000; ++step) {
    Container* c = cs[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    if (rng.bernoulli(0.5)) {
      node.grant(c, static_cast<int>(rng.uniform_int(1, 3)));
    } else {
      node.revoke(c, static_cast<int>(rng.uniform_int(1, 3)), 1);
    }
    ASSERT_GE(node.free_cores(), 0);
    ASSERT_EQ(node.allocated_cores() + node.free_cores(), total);
    for (Container* cc : cs) ASSERT_GE(cc->cores(), 1);
  }
}

// ---------------------------------------------------------------------------
// StepTimeline: at() is consistent with integrate() for random series.
class TimelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelinePropertyTest, PointwiseMatchesIntegral) {
  Rng rng(GetParam());
  StepTimeline tl(rng.uniform(0.0, 5.0));
  SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    t += static_cast<SimTime>(rng.uniform_int(1, 1000));
    tl.set(t, rng.uniform(0.0, 10.0));
  }
  // Riemann sum over unit steps equals integrate() (piecewise-constant, so
  // the unit-step sum is exact when steps land on integers).
  const SimTime end = t + 100;
  double riemann = 0.0;
  for (SimTime x = 0; x < end; ++x) riemann += tl.at(x);
  EXPECT_NEAR(riemann, tl.integrate(0, end), 1e-6 * riemann + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Values(31, 32, 33));

// ---------------------------------------------------------------------------
// Request conservation under packet loss: at drain, every issued request is
// accounted for exactly once — completed, abandoned, or still in flight —
// at every loss rate, including the armed-but-never-firing rate 0.
class FaultConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultConservationTest, IssuedEqualsCompletedPlusDroppedPlusInFlight) {
  const double rate = GetParam();
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 2 * kSecond;
  cfg.duration = 4 * kSecond;
  cfg.surge_len = 0;
  cfg.seed = 5;
  cfg.rpc_retry.enabled = true;
  cfg.drain = 5 * kSecond;
  char spec[96];
  std::snprintf(spec, sizeof(spec),
                "drop:start_ms=2500,len_ms=1500,rate=%g", rate);
  std::string error;
  const auto plan = FaultPlan::parse(spec, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  cfg.fault_plan = *plan;

  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.load.issued,
            r.load.completed_total + r.load.dropped + r.load.outstanding);
  // The drain outlives the recovery for this plan: nothing stays in flight.
  EXPECT_EQ(r.load.outstanding, 0u);
  if (rate == 0.0) {
    // An armed hook at rate 0 must behave exactly like no faults.
    EXPECT_EQ(r.faults.packets_dropped, 0u);
    EXPECT_EQ(r.load.retries, 0u);
    EXPECT_EQ(r.app_rpc_retries, 0u);
  } else {
    EXPECT_GT(r.faults.packets_dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, FaultConservationTest,
                         ::testing::Values(0.0, 0.01, 0.1));

// ---------------------------------------------------------------------------
// Node freeze/restart: through random grant/revoke storms interleaved with
// freeze/restart cycles, the core ledger stays within [0, app_cores], the
// frozen node rejects reallocation, and restart restores the pre-freeze
// allocation exactly.
TEST(NodeFreezePropertyTest, LedgerBoundedThroughFreezeRestartStorm) {
  Simulator sim(23);
  Rng rng(24);
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  std::vector<Container*> cs;
  for (int i = 0; i < 6; ++i) {
    cs.push_back(&cluster.add_container("f" + std::to_string(i), 0, 3));
  }
  Node& node = cluster.node(0);
  const int total = node.app_cores();

  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int step = 0; step < 50; ++step) {
      Container* c = cs[static_cast<std::size_t>(rng.uniform_int(0, 5))];
      if (rng.bernoulli(0.5)) {
        node.grant(c, static_cast<int>(rng.uniform_int(1, 3)));
      } else {
        node.revoke(c, static_cast<int>(rng.uniform_int(1, 3)), 1);
      }
      ASSERT_GE(node.free_cores(), 0);
      ASSERT_EQ(node.allocated_cores() + node.free_cores(), total);
      for (Container* cc : cs) {
        ASSERT_GE(cc->cores(), 1);
        ASSERT_LE(cc->cores(), total);
      }
    }

    std::vector<int> before;
    for (Container* cc : cs) before.push_back(cc->cores());
    node.freeze();
    ASSERT_TRUE(node.frozen());
    for (Container* cc : cs) ASSERT_EQ(cc->cores(), 0);
    ASSERT_EQ(node.allocated_cores(), 0);
    // Grant/revoke are rejected while frozen; allocations stay untouched.
    ASSERT_EQ(node.grant(cs[0], 2), 0);
    ASSERT_EQ(node.revoke(cs[1], 1, 0), 0);
    for (Container* cc : cs) ASSERT_EQ(cc->cores(), 0);

    node.restart();
    ASSERT_FALSE(node.frozen());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      ASSERT_EQ(cs[i]->cores(), before[i]) << "container " << i
                                           << " not restored exactly";
    }
    ASSERT_EQ(node.allocated_cores() + node.free_cores(), total);
  }
}

// ---------------------------------------------------------------------------
// Speed-scale faults on the processor-sharing container: a freeze window
// stalls progress exactly (no work lost, no work invented), and jobs never
// disappear from the queue while stalled.
TEST(PsConservationTest, SpeedScaleFreezeStallsAndResumesExactly) {
  Simulator sim(41);
  Container::Params params;
  params.name = "frozen";
  params.initial_cores = 1;
  Container c(sim, std::move(params));

  SimTime done_at = 0;
  // 1ms of work at 1 core, reference frequency: finishes at t=1ms unfrozen.
  c.submit(1'000'000.0, [&]() { done_at = sim.now(); });
  // Freeze after 0.1ms of progress, thaw at 10ms.
  sim.schedule_at(100'000, [&c]() { c.set_speed_scale(0.0); });
  sim.schedule_at(5'000'000, [&c]() {
    // Mid-freeze: the job is stalled but still queued.
    EXPECT_EQ(c.active_jobs(), 1);
  });
  sim.schedule_at(10'000'000, [&c]() { c.set_speed_scale(1.0); });
  sim.run_to_completion();
  c.sync();
  // 0.1ms ran, 9.9ms frozen, then the remaining 0.9ms: exact resume point.
  EXPECT_EQ(done_at, 10'900'000);
  EXPECT_EQ(c.active_jobs(), 0);
  EXPECT_EQ(c.jobs_completed(), 1u);
}

}  // namespace
}  // namespace sg
