#include "workload/violation_volume.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

using namespace sg::literals;

TEST(ViolationVolumeTest, NoCompletionsNoVolume) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  vv.finalize(10_ms);
  EXPECT_DOUBLE_EQ(vv.violation_volume_ns2(0, 10_ms), 0.0);
  EXPECT_DOUBLE_EQ(vv.violation_duration_fraction(0, 10_ms), 0.0);
}

TEST(ViolationVolumeTest, AllBelowQosIsZero) {
  ViolationVolumeTracker vv(10_ms, 1_ms);
  for (int i = 0; i < 20; ++i) {
    vv.record_completion(i * 1_ms, 2_ms);
  }
  vv.finalize(20_ms);
  EXPECT_DOUBLE_EQ(vv.violation_volume_ns2(0, 20_ms), 0.0);
}

TEST(ViolationVolumeTest, ConstantViolationArea) {
  // Latency 3ms vs QoS 1ms over 10ms -> area = 2ms * 10ms.
  ViolationVolumeTracker vv(1_ms, 1_ms);
  for (int i = 0; i < 10; ++i) {
    vv.record_completion(i * 1_ms + 1, 3_ms);
  }
  vv.finalize(10_ms);
  const double expected = static_cast<double>(2_ms) * static_cast<double>(10_ms);
  EXPECT_NEAR(vv.violation_volume_ns2(0, 10_ms), expected, expected * 0.01);
}

TEST(ViolationVolumeTest, MsSecondsUnits) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  for (int i = 0; i < 1000; ++i) {
    vv.record_completion(i * 1_ms + 1, 2_ms);
  }
  vv.finalize(1_s);
  // 1ms excess for 1s = 1 ms*s.
  EXPECT_NEAR(vv.violation_volume_ms_s(0, 1_s), 1.0, 0.01);
}

TEST(ViolationVolumeTest, WindowMeansUsed) {
  // Two completions in one window: 0 and 4ms (mean 2ms) vs QoS 1ms.
  ViolationVolumeTracker vv(1_ms, 10_ms);
  vv.record_completion(1_ms, 0);
  vv.record_completion(2_ms, 4_ms);
  vv.finalize(10_ms);
  const double expected = static_cast<double>(1_ms) * static_cast<double>(10_ms);
  EXPECT_NEAR(vv.violation_volume_ns2(0, 10_ms), expected, expected * 0.01);
}

TEST(ViolationVolumeTest, EmptyWindowHoldsPreviousValue) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  vv.record_completion(500'000, 5_ms);  // window [0,1ms): value 5ms
  // silence until 10ms, then a fast completion
  vv.record_completion(10_ms + 1, 0);
  vv.finalize(11_ms);
  // The 5ms value holds through the silent stretch [0,10ms) -> 4ms excess.
  const double expected = static_cast<double>(4_ms) * static_cast<double>(10_ms);
  EXPECT_NEAR(vv.violation_volume_ns2(0, 11_ms), expected, expected * 0.02);
}

TEST(ViolationVolumeTest, DurationFraction) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  // Violating for the first 5 windows, fine for the next 5.
  for (int i = 0; i < 5; ++i) vv.record_completion(i * 1_ms + 1, 3_ms);
  for (int i = 5; i < 10; ++i) vv.record_completion(i * 1_ms + 1, 100'000);
  vv.finalize(10_ms);
  EXPECT_NEAR(vv.violation_duration_fraction(0, 10_ms), 0.5, 0.05);
}

TEST(ViolationVolumeTest, SubRangeQuery) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  for (int i = 0; i < 10; ++i) vv.record_completion(i * 1_ms + 1, 3_ms);
  vv.finalize(10_ms);
  const double whole = vv.violation_volume_ns2(0, 10_ms);
  const double first = vv.violation_volume_ns2(0, 5_ms);
  const double second = vv.violation_volume_ns2(5_ms, 10_ms);
  EXPECT_NEAR(first + second, whole, whole * 1e-9);
}

TEST(ViolationVolumeTest, FigThreeShape) {
  // Paper Fig. 3: a short tall excursion (red) can have LOWER violation
  // volume than a long shallow one (blue) despite higher tail latency.
  ViolationVolumeTracker red(1_ms, 1_ms), blue(1_ms, 1_ms);
  // red: 10ms latency for 2ms of time, then fine.
  for (int i = 0; i < 2; ++i) red.record_completion(i * 1_ms + 1, 10_ms);
  for (int i = 2; i < 20; ++i) red.record_completion(i * 1_ms + 1, 500'000);
  // blue: 3ms latency for 18ms of time.
  for (int i = 0; i < 18; ++i) blue.record_completion(i * 1_ms + 1, 3_ms);
  for (int i = 18; i < 20; ++i) blue.record_completion(i * 1_ms + 1, 500'000);
  red.finalize(20_ms);
  blue.finalize(20_ms);
  const double vv_red = red.violation_volume_ns2(0, 20_ms);
  const double vv_blue = blue.violation_volume_ns2(0, 20_ms);
  EXPECT_LT(vv_red, vv_blue);  // VV red < VV blue...
  // ...even though red's peak latency is higher (the tail-latency metric
  // would rank them the other way).
}

TEST(ViolationVolumeTest, CompletionOrderEnforced) {
  ViolationVolumeTracker vv(1_ms, 1_ms);
  vv.record_completion(5_ms, 1_ms);
  EXPECT_DEATH(vv.record_completion(1_ms, 1_ms), "time-ordered");
}

}  // namespace
}  // namespace sg
