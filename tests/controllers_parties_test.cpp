#include "controllers/parties.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;

TEST(PartiesTest, UpscalesViolatorFromPool) {
  ControllerTestbed tb;
  PartiesController parties(tb.env(/*expected_exec_us=*/300.0));
  tb.publish(tb.c1(), /*exec_time_us=*/500.0, /*exec_metric_us=*/500.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  const int before = tb.c1().cores();
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), before + 2);  // one physical core (2 logical)
  EXPECT_EQ(tb.c2().cores(), 2);           // calm container untouched
}

TEST(PartiesTest, NoActionWithoutSnapshots) {
  ControllerTestbed tb;
  PartiesController parties(tb.env());
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), 2);
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(PartiesTest, ViolationSignalIsTotalExecTime) {
  // Parties cannot tell conn-wait from real slowdown: a container whose
  // latency is pure queue wait still gets the cores (the paper's §III-B
  // mis-attribution).
  ControllerTestbed tb;
  PartiesController parties(tb.env(300.0));
  tb.publish(tb.c1(), /*exec_time_us=*/900.0, /*exec_metric_us=*/150.0);
  tb.publish(tb.c2(), 150.0, 150.0);
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), 4);  // upscaled despite healthy execMetric
  EXPECT_EQ(tb.c2().cores(), 2);  // root cause starved
}

TEST(PartiesTest, AllViolatorsServedWhilePoolLasts) {
  ControllerTestbed tb;
  PartiesController parties(tb.env(300.0));
  tb.publish(tb.c1(), 600.0, 600.0);
  tb.publish(tb.c2(), 500.0, 500.0);
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), 4);
  EXPECT_EQ(tb.c2().cores(), 4);
}

TEST(PartiesTest, StealsFromCalmWhenPoolDry) {
  // node_cores=25 -> app 6, both containers at 2 -> free 2.
  ControllerTestbed tb(8, 2, 25);
  PartiesController parties(tb.env(300.0));
  // First tick drains the pool to c1. (Time advances between ticks so the
  // donor-side busy guard observes c2 idle.)
  tb.sim.run_until(tb.sim.now() + 500 * kMillisecond);
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), 4);
  EXPECT_EQ(tb.cluster.node(0).free_cores(), 0);
  // Second tick: pool dry -> steal from the calm, idle c2.
  tb.sim.run_until(tb.sim.now() + 500 * kMillisecond);
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  parties.tick();
  EXPECT_GT(tb.c1().cores(), 4);
  EXPECT_LT(tb.c2().cores(), 2);
}

TEST(PartiesTest, NeverStealsFromBusyContainer) {
  ControllerTestbed tb(8, 2, 25);
  PartiesController parties(tb.env(300.0));
  // Keep c2's cores measurably busy.
  tb.c2().submit(1e12, []() {});
  tb.c2().submit(1e12, []() {});
  tb.sim.run_until(500 * kMillisecond);
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.publish(tb.c2(), 100.0, 100.0);  // low latency but fully busy
  parties.tick();  // drains pool
  tb.sim.run_until(tb.sim.now() + 500 * kMillisecond);
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  parties.tick();  // would steal — but c2's cores are in use
  EXPECT_EQ(tb.c2().cores(), 2);
}

TEST(PartiesTest, FrequencyRampsOnViolators) {
  ControllerTestbed tb;
  PartiesController::Options opts;
  PartiesController parties(tb.env(300.0), opts);
  const FreqMhz f0 = tb.c1().frequency();
  tb.publish(tb.c1(), 600.0, 600.0);
  tb.publish(tb.c2(), 100.0, 100.0);
  parties.tick();
  EXPECT_GT(tb.c1().frequency(), f0);
  EXPECT_EQ(tb.c2().frequency(), f0);
}

TEST(PartiesTest, FrequencyStepsDownWhenCalm) {
  ControllerTestbed tb;
  PartiesController parties(tb.env(300.0));
  tb.c1().set_frequency(3100);
  tb.publish(tb.c1(), 100.0, 100.0);
  parties.tick();
  EXPECT_LT(tb.c1().frequency(), 3100);
}

TEST(PartiesTest, DownscaleNeedsSustainedSlack) {
  ControllerTestbed tb;
  PartiesController::Options opts;
  opts.downscale_hold = 3;
  PartiesController parties(tb.env(300.0), opts);
  tb.c1().set_cores(6);
  // Two slack intervals: not enough. (Simulated time advances between
  // ticks so the busy-window revocation guard sees the container idle.)
  for (int i = 0; i < 2; ++i) {
    tb.sim.run_until(tb.sim.now() + 500 * kMillisecond);
    tb.publish(tb.c1(), 100.0, 100.0);
    tb.publish(tb.c2(), 200.0, 200.0);
    parties.tick();
  }
  EXPECT_EQ(tb.c1().cores(), 6);
  // Third interval crosses the hold.
  tb.sim.run_until(tb.sim.now() + 500 * kMillisecond);
  tb.publish(tb.c1(), 100.0, 100.0);
  tb.publish(tb.c2(), 200.0, 200.0);
  parties.tick();
  EXPECT_EQ(tb.c1().cores(), 4);
}

TEST(PartiesTest, SlackStreakResetsOnViolation) {
  ControllerTestbed tb;
  PartiesController::Options opts;
  opts.downscale_hold = 2;
  PartiesController parties(tb.env(300.0), opts);
  tb.c1().set_cores(6);
  tb.publish(tb.c1(), 100.0, 100.0);
  parties.tick();
  tb.publish(tb.c1(), 600.0, 600.0);  // violation resets the streak
  parties.tick();
  tb.publish(tb.c1(), 100.0, 100.0);
  parties.tick();
  EXPECT_GE(tb.c1().cores(), 6);  // no downscale yet (streak broken)
}

TEST(PartiesTest, StartSchedulesPeriodicTicks) {
  ControllerTestbed tb;
  PartiesController::Options opts;
  opts.interval = 500 * kMillisecond;
  PartiesController parties(tb.env(300.0), opts);
  parties.start();
  tb.publish(tb.c1(), 900.0, 900.0);
  tb.sim.run_until(600 * kMillisecond);
  EXPECT_EQ(tb.c1().cores(), 4);  // first tick at 500ms acted
}

}  // namespace
}  // namespace sg
