// Determinism golden tests for the fault-injection subsystem: the fault
// timeline is a pure function of (plan, seed). Same seed => bit-identical
// runs (event counts, fault footprint, client-visible results); different
// seeds => different fault timelines. Plus FaultPlan spec-grammar unit
// tests (parse/round-trip/validation/window composition).
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sg {
namespace {

using namespace sg::literals;

// Every fault kind fires once inside the measurement window.
constexpr const char* kAllKindsPlan =
    "drop:start_ms=3000,len_ms=1500,rate=0.05;"
    "dup:start_ms=3500,len_ms=1000,rate=0.05;"
    "delay:start_ms=4500,len_ms=1000,extra_us=200;"
    "slow:node=0,start_ms=5500,len_ms=400,factor=0.5;"
    "freeze:node=0,start_ms=6100,len_ms=200;"
    "stall:start_ms=6500,len_ms=500";

ExperimentConfig chaos_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.workload = make_chain();
  cfg.controller = ControllerKind::kSurgeGuard;
  cfg.warmup = 2_s;
  cfg.duration = 6_s;
  cfg.seed = seed;
  std::string error;
  const auto plan = FaultPlan::parse(kAllKindsPlan, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  cfg.fault_plan = *plan;
  cfg.rpc_retry.enabled = true;
  cfg.drain = 4_s;
  return cfg;
}

// The run's observable footprint, compared field-by-field across replays.
struct RunDigest {
  std::uint64_t events = 0;
  std::string faults;
  std::uint64_t issued = 0;
  std::uint64_t completed_total = 0;
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t app_retries = 0;
  std::uint64_t ticks_stalled = 0;
  double vv = 0.0;
  SimTime p99 = 0;

  bool operator==(const RunDigest& o) const {
    return events == o.events && faults == o.faults && issued == o.issued &&
           completed_total == o.completed_total && retries == o.retries &&
           dropped == o.dropped && app_retries == o.app_retries &&
           ticks_stalled == o.ticks_stalled && vv == o.vv && p99 == o.p99;
  }
};

RunDigest digest_of(const ExperimentResult& r) {
  RunDigest d;
  d.events = r.events_processed;
  d.faults = r.faults.digest();
  d.issued = r.load.issued;
  d.completed_total = r.load.completed_total;
  d.retries = r.load.retries;
  d.dropped = r.load.dropped;
  d.app_retries = r.app_rpc_retries;
  d.ticks_stalled = r.controller_ticks_stalled;
  d.vv = r.load.violation_volume_ms_s;
  d.p99 = r.load.p99;
  return d;
}

TEST(FaultDeterminismTest, SameSeedReplaysBitIdentically) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const RunDigest a = digest_of(run_experiment(chaos_config(31), profile));
  const RunDigest b = digest_of(run_experiment(chaos_config(31), profile));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed_total, b.completed_total);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.app_retries, b.app_retries);
  EXPECT_EQ(a.ticks_stalled, b.ticks_stalled);
  EXPECT_EQ(a.vv, b.vv);  // exact: bit-identical event sequences
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_TRUE(a == b);
}

TEST(FaultDeterminismTest, DifferentSeedsProduceDifferentFaultTimelines) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const RunDigest a = digest_of(run_experiment(chaos_config(31), profile));
  const RunDigest b = digest_of(run_experiment(chaos_config(32), profile));
  // Thousands of independent coin flips: the per-kind fault counts (and
  // hence the digests) diverge with overwhelming probability.
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.faults, b.faults);
}

TEST(FaultDeterminismTest, EveryFaultKindFires) {
  const ProfileResult profile = profile_workload(make_chain(), 1);
  const ExperimentResult r = run_experiment(chaos_config(31), profile);
  EXPECT_GT(r.faults.packets_dropped, 0u);
  EXPECT_GT(r.faults.packets_duplicated, 0u);
  EXPECT_GT(r.faults.packets_delayed, 0u);
  EXPECT_EQ(r.faults.node_slowdowns, 1u);
  EXPECT_EQ(r.faults.node_freezes, 1u);
  EXPECT_EQ(r.faults.node_restarts, 1u);
  EXPECT_GT(r.controller_ticks_stalled, 0u);
  // The chaos run still drains: conservation and zero stranded requests.
  EXPECT_EQ(r.load.issued,
            r.load.completed_total + r.load.dropped + r.load.outstanding);
  EXPECT_EQ(r.load.outstanding, 0u);
}

// ---------------------------------------------------------------------------
// FaultPlan spec grammar.

TEST(FaultPlanTest, ToStringRoundTrips) {
  std::string error;
  const auto plan = FaultPlan::parse(kAllKindsPlan, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const std::string rendered = plan->to_string();
  const auto reparsed = FaultPlan::parse(rendered, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_string(), rendered);
  EXPECT_EQ(reparsed->windows().size(), plan->windows().size());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("explode:start_ms=0,len_ms=1", &error));
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
  EXPECT_FALSE(
      FaultPlan::parse("drop:start_ms=0,len_ms=1,rate=1.5", &error));
  EXPECT_FALSE(FaultPlan::parse("drop:start_ms=0,rate=0.1", &error))
      << "a window without len_ms must be rejected";
  EXPECT_FALSE(FaultPlan::parse("drop:start_ms=zero,len_ms=1", &error));
  EXPECT_FALSE(FaultPlan::parse("drop start_ms=0", &error));
  EXPECT_FALSE(
      FaultPlan::parse("slow:start_ms=0,len_ms=1,factor=0", &error));
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  std::string error;
  const auto plan = FaultPlan::parse("", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->horizon(), 0);
}

TEST(FaultPlanTest, OverlappingDropWindowsCompose) {
  std::string error;
  const auto plan = FaultPlan::parse(
      "drop:start_ms=0,len_ms=10,rate=0.5;drop:start_ms=5,len_ms=10,rate=0.5",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  // Independent losses compose as 1 - prod(1 - rate_i).
  EXPECT_DOUBLE_EQ(plan->drop_rate_at(2 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(plan->drop_rate_at(7 * kMillisecond), 0.75);
  EXPECT_DOUBLE_EQ(plan->drop_rate_at(12 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(plan->drop_rate_at(20 * kMillisecond), 0.0);
  EXPECT_EQ(plan->horizon(), 15 * kMillisecond);
}

TEST(FaultPlanTest, DelayWindowsAdd) {
  std::string error;
  const auto plan = FaultPlan::parse(
      "delay:start_ms=0,len_ms=10,extra_us=100;"
      "delay:start_ms=5,len_ms=10,extra_us=50",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->extra_delay_at(2 * kMillisecond), 100 * kMicrosecond);
  EXPECT_EQ(plan->extra_delay_at(7 * kMillisecond), 150 * kMicrosecond);
  EXPECT_EQ(plan->extra_delay_at(12 * kMillisecond), 50 * kMicrosecond);
}

TEST(FaultPlanTest, StallWindowHalfOpen) {
  std::string error;
  const auto plan =
      FaultPlan::parse("stall:start_ms=10,len_ms=5", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->controller_stalled_at(10 * kMillisecond - 1));
  EXPECT_TRUE(plan->controller_stalled_at(10 * kMillisecond));
  EXPECT_TRUE(plan->controller_stalled_at(15 * kMillisecond - 1));
  EXPECT_FALSE(plan->controller_stalled_at(15 * kMillisecond));
}

}  // namespace
}  // namespace sg
