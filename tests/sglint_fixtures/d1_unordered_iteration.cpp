// sg-lint fixture: D1 — iteration over unordered containers.
//
// Never compiled; linted by the sglint_selftest ctest, which demands that
// findings match the expect() annotations exactly (rule id + line).
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

int range_for_over_unordered() {
  std::unordered_map<int, int> scores;
  scores[1] = 2;
  int total = 0;
  // sglint: expect(D1)
  for (const auto& [id, s] : scores) total += s;
  return total;
}

int iterator_loop_over_unordered() {
  std::unordered_set<int> ids;
  int total = 0;
  // sglint: expect(D1)
  for (auto it = ids.begin(); it != ids.end(); ++it) total += *it;
  return total;
}

using Index = std::unordered_map<int, double>;  // sglint: expect(D3)

std::vector<int> bulk_copy_is_still_hash_order(const Index& idx) {
  Index local = idx;
  std::vector<int> keys;
  // sglint: expect(D1)
  for (const auto& [k, v] : local) keys.push_back(k);
  return keys;
}

// Lookups never depend on bucket order: no finding.
int lookups_are_fine(const std::unordered_map<int, int>& m) {
  const auto it = m.find(3);
  return it == m.end() ? 0 : it->second;
}

// Ordered containers iterate deterministically: no finding. (Distinct name
// on purpose: D1's name tracking is file-wide, not scope-aware.)
int ordered_iteration_is_fine(const std::map<int, int>& ordered) {
  int total = 0;
  for (const auto& [k, v] : ordered) total += v;
  return total;
}

}  // namespace fixture
