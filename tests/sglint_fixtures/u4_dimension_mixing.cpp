// sg-lint fixture: U4 — arithmetic between dimensions outside the allowed
// table. Legal: quantity x scalar, freq x time (-> cycles), time / time,
// energy / time (-> watts), energy / energy, freq / freq.
#include "common/time.hpp"

namespace fixture {

void violations() {
  sg::SimTime t = 0;
  sg::Duration d = sg::Duration::ms(1);
  sg::Freq f = sg::Freq::ghz(1.5);
  sg::Energy e = sg::Energy::joules(4.0);

  // sglint: expect(U4)
  auto tt = t * t;
  // sglint: expect(U4)
  auto dd = d * d;
  // sglint: expect(U4)
  auto ff = f * f;
  // sglint: expect(U4)
  auto ed = e * d;
  // sglint: expect(U4)
  auto fe = f / e;
  // sglint: expect(U4)
  auto df = d / f;
  // sglint: expect(U4)
  t *= t;
  (void)tt;
  (void)dd;
  (void)ff;
  (void)ed;
  (void)fe;
  (void)df;
}

void allowed() {
  sg::SimTime t = sg::kMillisecond;
  sg::Duration d = sg::Duration::ms(1);
  sg::Freq f = sg::Freq::ghz(1.5);
  sg::Energy e = sg::Energy::joules(4.0);

  auto scaled = d * 2.0;    // quantity x scalar preserves the dimension
  auto halved = d / 2.0;
  auto cycles = f * d;      // freq x time -> cycles (dimensionless)
  auto cycles2 = d * f;     // ... commutes
  auto ratio = d / d;       // time / time -> scalar
  auto tratio = t / sg::kMillisecond;
  auto watts = e / d;       // energy / time -> power
  auto eratio = e / e;
  auto fratio = f / f;
  (void)scaled;
  (void)halved;
  (void)cycles;
  (void)cycles2;
  (void)ratio;
  (void)tratio;
  (void)watts;
  (void)eratio;
  (void)fratio;
}

}  // namespace fixture
