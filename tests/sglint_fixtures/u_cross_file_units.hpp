// sg-lint fixture: header half of the cross-file unit case. The time-typed
// members and the signature of record() are declared here; the misuse lives
// in the .cpp — proving the unit analyzer sees across the paired-header
// boundary exactly like D1/D3 do.
#pragma once

#include "common/time.hpp"

namespace fixture {

class Tracker {
 public:
  void record(sg::TimePoint stamp, sg::Duration cost);
  sg::Duration total() const { return total_; }

 private:
  sg::TimePoint last_;
  sg::Duration total_;
};

}  // namespace fixture
