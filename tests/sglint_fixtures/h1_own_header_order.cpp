// sg-lint fixture: H1 — a .cpp must include its own header before anything
// else, so a header that is not self-contained fails to compile here rather
// than in whichever unlucky TU includes it first.
#include <vector>

// sglint: expect(H1)
#include "h1_own_header_order.hpp"

namespace fixture {
int answer() { return static_cast<int>(std::vector<int>{42}.back()); }
}  // namespace fixture
