// sg-lint fixture: the header half of the cross-file D1 case. The unordered
// member is declared here; the hash-order iteration lives in the .cpp. The
// header itself is clean (declaring an unordered container is fine — only
// traversal is a finding).
#pragma once

#include <unordered_map>
#include <vector>

namespace fixture {

class Registry {
 public:
  std::vector<int> all_ids() const;

 private:
  std::unordered_map<int, int> entries_;
};

}  // namespace fixture
