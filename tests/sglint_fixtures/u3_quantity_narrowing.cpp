// sg-lint fixture: U3 — time/energy quantities implicitly squeezed into
// narrow arithmetic types. Explicit unwraps (static_cast, .ns()) and wide
// targets (int64_t, double) are fine.
#include "common/time.hpp"

namespace fixture {

void violations() {
  sg::SimTime t = 0;
  sg::Duration d = sg::Duration::ms(3);
  sg::TimePoint p = sg::TimePoint::origin();
  sg::Energy e = sg::Energy::joules(2.0);

  // sglint: expect(U3)
  int ti = t;
  // sglint: expect(U3)
  float df = d;
  // sglint: expect(U3)
  unsigned pu = p;
  // sglint: expect(U3)
  int32_t ej = e;
  (void)ti;
  (void)df;
  (void)pu;
  (void)ej;
}

void allowed() {
  sg::SimTime t = 0;
  sg::Duration d = sg::Duration::ms(3);
  sg::Energy e = sg::Energy::joules(2.0);

  int64_t wide = t;                  // int64 holds the full range
  double secs = sg::to_seconds(t);   // conversion helpers return scalars
  int explicit_ns = static_cast<int>(t);  // explicit = intentional
  int64_t unwrapped = d.ns();        // accessor is the sanctioned unwrap
  double watts = e.joules();
  (void)wide;
  (void)secs;
  (void)explicit_ns;
  (void)unwrapped;
  (void)watts;
}

}  // namespace fixture
