// sg-lint fixture: H1 — `using namespace` in a header leaks into every
// translation unit that includes it.
#pragma once

#include <vector>

// sglint: expect(H1)
using namespace std;

namespace fixture {
using Ints = vector<int>;
}  // namespace fixture
