// sg-lint fixture: D1 across the header/.cpp boundary — the member is
// declared in cross_file_member.hpp, the iteration happens here.
#include "cross_file_member.hpp"

namespace fixture {

std::vector<int> Registry::all_ids() const {
  std::vector<int> out;
  // sglint: expect(D1)
  for (const auto& [id, v] : entries_) out.push_back(id);
  return out;
}

}  // namespace fixture
