// sg-lint fixture: a clean file full of near-misses. Must produce zero
// findings — every pattern here is the deterministic twin of a violation.
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Lookup-only unordered use is fine (no traversal, no hash-order exposure).
int lookup(const std::unordered_map<int, int>& m, int k) {
  const auto it = m.find(k);
  return it == m.end() ? 0 : it->second;
}

// Banned words as identifier fragments are not findings.
int randomize_nothing(int operand) { return operand + 0; }
int timer_slack(int time_budget) { return time_budget; }

// Banned words inside strings and comments are invisible to the rules:
// new, delete, rand(), std::chrono::steady_clock::now().
std::string comment_and_string_trap() {
  return "new delete rand() srand system_clock steady_clock";
}

// Ordered iteration — including FP accumulation — is deterministic. (The
// container uses a name of its own: D1 tracks names file-wide, so reusing
// the name of an unordered container elsewhere in the file would flag this
// loop too — sg-lint errs toward over-reporting.)
double ordered_sum(const std::map<std::string, double>& ordered) {
  double total = 0.0;
  for (const auto& [k, v] : ordered) total += v;
  return total;
}

// Ownership through the standard machinery.
std::unique_ptr<int> owned() { return std::make_unique<int>(7); }

}  // namespace fixture
