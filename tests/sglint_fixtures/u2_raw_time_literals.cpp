// sg-lint fixture: U2 — raw integer literals flowing into time-typed
// variables and parameters. Zero is always permitted (a natural origin /
// empty duration), as are unit literals and named constants.
#include "common/time.hpp"

namespace fixture {

void wait_for(sg::SimTime timeout);

void wait_for(sg::SimTime timeout) { (void)timeout; }

void violations() {
  // sglint: expect(U2)
  sg::SimTime deadline = 5000;
  sg::SimTime t = 0;
  // sglint: expect(U2)
  t = 250;
  // sglint: expect(U2)
  if (t < 1000) return;
  // sglint: expect(U2)
  if (5000 > deadline) return;
  // sglint: expect(U2)
  t += 77;
  // sglint: expect(U2)
  wait_for(1500);
  sg::Duration d = sg::Duration::zero();
  // sglint: expect(U2)
  if (d == 40) return;
  (void)deadline;
}

void allowed() {
  using namespace sg::literals;
  sg::SimTime t = 0;             // zero is the origin, always fine
  t = 5_ms;                      // unit literal
  t = 3 * sg::kMillisecond;      // named constant scaling
  if (t == 0) return;
  if (t < 2_s) return;
  wait_for(0);
  wait_for(5_us);
  wait_for(sg::kSecond);
  int plain = 42;                // untyped ints are none of U2's business
  plain = 7;
  (void)plain;
}

}  // namespace fixture
