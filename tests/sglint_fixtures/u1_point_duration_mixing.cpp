// sg-lint fixture: U1 — TimePoint/Duration algebra violations, plus the
// full allowed-operation set (which must stay silent).
#include "common/time.hpp"

namespace fixture {

void violations() {
  sg::TimePoint a = sg::TimePoint::at(1000);
  sg::TimePoint b = sg::TimePoint::at(2000);
  sg::Duration d = sg::Duration::ms(1);

  // sglint: expect(U1)
  auto bad_sum = a + b;
  // sglint: expect(U1)
  auto bad_diff = d - a;
  // sglint: expect(U1)
  if (a < d) return;
  // sglint: expect(U1)
  a = d;
  // sglint: expect(U1)
  d = b;
  // sglint: expect(U1)
  a += b;
  // sglint: expect(U1)
  d -= b;
  // sglint: expect(U1)
  sg::Duration from_point = a;
  // sglint: expect(U1)
  sg::TimePoint from_dur = d;
  (void)bad_sum;
  (void)bad_diff;
  (void)from_point;
  (void)from_dur;
}

void allowed() {
  sg::TimePoint a = sg::TimePoint::at(1000);
  sg::TimePoint b = sg::TimePoint::at(2000);
  sg::Duration d = sg::Duration::ms(1);
  sg::SimTime raw = 0;

  sg::Duration elapsed = b - a;   // point - point -> duration
  sg::TimePoint later = a + d;    // point + duration -> point
  sg::TimePoint also = d + a;     // duration + point -> point
  sg::TimePoint earlier = a - d;  // point - duration -> point
  a += d;
  a -= d;
  if (a < b) return;              // point vs point is ordered
  if (d > sg::Duration::zero()) return;
  raw = a.ns();                   // explicit unwrap bridges to SimTime
  (void)elapsed;
  (void)later;
  (void)also;
  (void)earlier;
  (void)raw;
}

}  // namespace fixture
