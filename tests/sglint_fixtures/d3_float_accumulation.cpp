// sg-lint fixture: D3 — float/double in unordered containers. Accumulating
// FP values in hash order makes the total depend on bucket layout even when
// no explicit iteration is visible at the declaration site.
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Accumulators {
  // sglint: expect(D3)
  std::unordered_map<int, double> totals;
  // sglint: expect(D3)
  std::unordered_map<float, int> by_measurement;
  // sglint: expect(D3)
  std::unordered_set<double> seen_values;

  // Ordered FP accumulation and integer hash maps are both fine.
  std::map<int, double> ordered_totals;
  std::unordered_map<int, long> counts;
};

}  // namespace fixture
