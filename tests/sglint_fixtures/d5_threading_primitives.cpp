// sg-lint fixture: D5 — threading primitives outside src/sim/shard* and
// src/common/. The sharded event loop owns all cross-thread
// synchronization; ad-hoc threads/locks/atomics anywhere else bypass the
// conservative-sync protocol.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

namespace fixture {

struct Racy {
  // sglint: expect(D5)
  std::mutex lock;
  // sglint: expect(D5)
  std::atomic<int> counter{0};
  // sglint: expect(D5)
  std::condition_variable cv;
  // sglint: expect(D5)
  std::shared_mutex rw;
};

void spawn_worker() {
  // sglint: expect(D5)
  std::thread t([] {});
  t.join();
  // sglint: expect(D5)
  std::jthread j([] {});
}

// One token, two findings: the type and the flag variant both match.
// sglint: expect(D5)
std::atomic_flag busy = ATOMIC_FLAG_INIT;

// Suppressed with a justification: replication-level parallelism driving
// independent simulations is legitimate (the pattern src/core/sweep.cpp
// uses).
// sglint: allow(D5) independent replications, no shared simulator state
std::atomic<int> replication_cursor{0};

// Bare identifiers are not findings — only the std::-qualified names are.
struct NearMiss {
  int mutex = 0;
  int atomic = 0;
  int thread = 0;
};
int use_near_miss(const NearMiss& n) { return n.mutex + n.atomic + n.thread; }

// Banned names inside strings and comments are invisible to the rule:
// std::mutex, std::thread, std::atomic.
const char* trap() { return "std::mutex std::thread std::atomic"; }

}  // namespace fixture
