// sg-lint fixture: D2 — ambient clock reads and non-seeded randomness.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

long wall_clock_read() {
  // sglint: expect(D2)
  const auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

long monotonic_clock_read() {
  // sglint: expect(D2)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long benchmark_clock_read() {
  // sglint: expect(D2)
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

int ambient_rng() {
  // sglint: expect(D2)
  std::random_device rd;
  return static_cast<int>(rd());
}

int c_library_rng() {
  // sglint: expect(D2)
  std::srand(42);
  // sglint: expect(D2)
  return std::rand();
}

long c_library_time() {
  // sglint: expect(D2)
  return std::time(nullptr);
}

// Identifiers merely containing the banned words are not findings.
int randomize_nothing(int operand) { return operand; }
int timed_out(int timeout) { return timeout; }

}  // namespace fixture
