// sg-lint fixture: suppression semantics. A justified allow() silences the
// finding on its target line; an allow() without a reason is itself a
// finding (A0) and suppresses nothing.
#include <unordered_map>
#include <vector>

namespace fixture {

int justified_whole_line(const std::unordered_map<int, int>& m) {
  int total = 0;
  // sglint: allow(D1) summation is order-independent (verified by test)
  for (const auto& [k, v] : m) total += v;
  return total;
}

std::vector<int> justified_trailing(const std::unordered_map<int, int>& m) {
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);  // sglint: allow(D1) keys are sorted by the caller
  return keys;
}

int unjustified(const std::unordered_map<int, int>& m) {
  int total = 0;
  // sglint: expect(A0)
  // sglint: allow(D1)
  for (const auto& [k, v] : m) total += v;  // sglint: expect(D1)
  return total;
}

}  // namespace fixture
