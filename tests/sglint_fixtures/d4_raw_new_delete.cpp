// sg-lint fixture: D4 — raw new/delete outside src/common/.
#include <memory>

namespace fixture {

struct Buf {
  int x = 0;
};

Buf* leak_prone_make() {
  // sglint: expect(D4)
  return new Buf();
}

void manual_destroy(Buf* b) {
  // sglint: expect(D4)
  delete b;
}

// Ownership through the standard machinery: no finding.
std::unique_ptr<Buf> owned_make() { return std::make_unique<Buf>(); }

// Deleted special members are declarations, not deallocations: no finding.
struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

}  // namespace fixture
