// sg-lint fixture: the header half of the own-header-first case. Clean on
// its own — the violation lives in the .cpp include order.
#pragma once

namespace fixture {
int answer();
}  // namespace fixture
