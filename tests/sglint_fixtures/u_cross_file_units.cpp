// sg-lint fixture: .cpp half of the cross-file unit case — members declared
// in u_cross_file_units.hpp carry their kinds into this TU.
#include "u_cross_file_units.hpp"

namespace fixture {

void Tracker::record(sg::TimePoint stamp, sg::Duration cost) {
  // sglint: expect(U1)
  total_ += stamp;
  // sglint: expect(U1)
  last_ = cost;
  total_ += cost;   // duration accumulates duration: fine
  last_ = stamp;    // point assigned from point: fine
  sg::Duration gap = stamp - last_;  // allowed algebra through members
  (void)gap;
}

}  // namespace fixture
