// Deliberate shard-confinement violation for SG_DEBUG_SHARD_GUARD.
//
// A callback executing inside shard 0's parallel window opens a ShardScope
// on shard 1 and schedules into it directly — bypassing the lookahead-checked
// cross-shard mailbox. With the guard compiled in this must abort (the ctest
// registration is WILL_FAIL); if the process instead exits cleanly, the
// guard is broken and the inverted test fails the build.
//
// Not a gtest binary on purpose: the expected outcome is a process abort,
// and a bare main keeps the exit-status contract obvious. The SIGABRT
// handler converts the guard's abort() into exit code 1, because CTest's
// WILL_FAIL only inverts nonzero exit codes — a signal death is a hard
// failure even for a WILL_FAIL test.
#include <csignal>
#include <cstdlib>

#include "common/shard_context.hpp"
#include "sim/simulator.hpp"

namespace {
extern "C" void on_abort(int) { std::_Exit(1); }
}  // namespace

int main() {
  std::signal(SIGABRT, on_abort);
  sg::Simulator sim;
  sim.configure_shards(2, {0, 1}, /*lookahead=*/1000);

  bool violation_survived = false;
  {
    sg::ShardScope scope(0);
    sim.schedule_at(sg::SimTime{10}, [&] {
      // Mid-window, bound to shard 0: this write into shard 1's queue is
      // exactly what the guard exists to catch.
      sg::ShardScope foreign(1);
      sim.schedule_after(sg::SimTime{5000}, [] {});
      violation_survived = true;
    });
  }
  sim.run_until(sg::SimTime{1'000'000});

  // Reaching here at all means the guard did not fire. Exit 0 so the
  // WILL_FAIL inversion reports the failure.
  (void)violation_survived;
  return 0;
}
