#include "cluster/node.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace sg {
namespace {

TEST(NodeTest, AppCoresExcludeReserved) {
  Node n(Node::Params{0, 64, 19});
  EXPECT_EQ(n.app_cores(), 45);
  EXPECT_EQ(n.free_cores(), 45);
  EXPECT_EQ(n.allocated_cores(), 0);
}

TEST(NodeTest, AttachDebitsPool) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(32, 19);  // 13 app cores
  cluster.add_container("a", 0, 4);
  cluster.add_container("b", 0, 6);
  EXPECT_EQ(cluster.node(0).allocated_cores(), 10);
  EXPECT_EQ(cluster.node(0).free_cores(), 3);
}

TEST(NodeTest, GrantBoundedByPool) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(32, 19);
  Container& c = cluster.add_container("a", 0, 10);
  Node& n = cluster.node(0);
  EXPECT_EQ(n.free_cores(), 3);
  EXPECT_EQ(n.grant(&c, 2), 2);
  EXPECT_EQ(c.cores(), 12);
  EXPECT_EQ(n.grant(&c, 5), 1);  // only 1 left
  EXPECT_EQ(c.cores(), 13);
  EXPECT_EQ(n.grant(&c, 5), 0);
  EXPECT_EQ(n.free_cores(), 0);
}

TEST(NodeTest, RevokeRespectsFloor) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(32, 19);
  Container& c = cluster.add_container("a", 0, 4);
  Node& n = cluster.node(0);
  EXPECT_EQ(n.revoke(&c, 2, /*floor=*/1), 2);
  EXPECT_EQ(c.cores(), 2);
  EXPECT_EQ(n.revoke(&c, 5, /*floor=*/1), 1);  // floor stops at 1
  EXPECT_EQ(c.cores(), 1);
  EXPECT_EQ(n.revoke(&c, 5, /*floor=*/1), 0);
  EXPECT_EQ(n.free_cores(), 13 - 1);
}

TEST(NodeTest, LedgerConservedAcrossOps) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Container& a = cluster.add_container("a", 0, 8);
  Container& b = cluster.add_container("b", 0, 8);
  Node& n = cluster.node(0);
  const int total = n.app_cores();
  for (int i = 0; i < 20; ++i) {
    n.grant(&a, 3);
    n.revoke(&b, 1);
    n.grant(&b, 2);
    n.revoke(&a, 2);
    ASSERT_EQ(n.allocated_cores() + n.free_cores(), total);
    ASSERT_GE(n.free_cores(), 0);
  }
}

TEST(NodeTest, AverageAllocatedCoresTimeWeighted) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  Container& a = cluster.add_container("a", 0, 2);
  Node& n = cluster.node(0);
  sim.schedule_at(500, [&]() { n.grant(&a, 2); });
  sim.run_until(1000);
  // 2 cores for [0,500), 4 for [500,1000) -> average 3.
  EXPECT_DOUBLE_EQ(n.average_allocated_cores(0, 1000), 3.0);
}

TEST(NodeTest, EnergySumsContainers) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(64, 19);
  cluster.add_container("a", 0, 2);
  cluster.add_container("b", 0, 3);
  sim.run_until(kSecond);
  cluster.sync_all();
  EnergyModel e;
  EXPECT_NEAR(cluster.node(0).energy_joules(), 5.0 * e.allocated_idle_watts,
              0.01);
}

TEST(ClusterTest, LookupByNameAndId) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node();
  Container& a = cluster.add_container("svc/a", 0, 2);
  EXPECT_EQ(cluster.find_container("svc/a"), &a);
  EXPECT_EQ(cluster.find_container("missing"), nullptr);
  EXPECT_EQ(&cluster.container(a.id()), &a);
  EXPECT_EQ(cluster.container_count(), 1u);
}

TEST(ClusterTest, MultiNodePlacement) {
  Simulator sim;
  Cluster cluster(sim);
  const NodeId n0 = cluster.add_node();
  const NodeId n1 = cluster.add_node();
  Container& a = cluster.add_container("a", n0, 2);
  Container& b = cluster.add_container("b", n1, 3);
  EXPECT_EQ(a.node(), n0);
  EXPECT_EQ(b.node(), n1);
  EXPECT_EQ(cluster.node(n0).containers().size(), 1u);
  EXPECT_EQ(cluster.node(n1).containers().size(), 1u);
  EXPECT_EQ(cluster.node_count(), 2u);
}

TEST(ClusterTest, AverageAllocatedAcrossCluster) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node();
  cluster.add_node();
  cluster.add_container("a", 0, 4);
  cluster.add_container("b", 1, 6);
  sim.run_until(100);
  EXPECT_DOUBLE_EQ(cluster.average_allocated_cores(0, 100), 10.0);
}

}  // namespace
}  // namespace sg
