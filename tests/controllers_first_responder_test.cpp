#include "controllers/first_responder.hpp"

#include <gtest/gtest.h>

#include "controller_test_util.hpp"

namespace sg {
namespace {

using testutil::ControllerTestbed;

FirstResponder::Options no_margin() {
  FirstResponder::Options o;
  o.slack_margin = 1.0;  // exact eq. 4 semantics for unit tests
  o.freeze_window = 1 * kMillisecond;
  return o;
}

RpcPacket request_to(ControllerTestbed& tb, Container& c, TimePoint start) {
  RpcPacket p;
  p.request_id = 1;
  p.dst_container = c.id();
  p.dst_node = c.node();
  p.start_time = start;
  (void)tb;
  return p;
}

TEST(FirstResponderTest, PositiveSlackNoBoost) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(100 * kMicrosecond);
  // expected tfs = 200us; observed 100us -> slack +100us.
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  tb.sim.run_to_completion();
  EXPECT_EQ(fr.violations_detected(), 0u);
  EXPECT_EQ(fr.boosts_applied(), 0u);
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().min_mhz);
}

TEST(FirstResponderTest, NegativeSlackBoostsToMax) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(300 * kMicrosecond);  // observed 300us > expected 200us
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  tb.sim.run_to_completion();
  EXPECT_EQ(fr.violations_detected(), 1u);
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().max_mhz);
}

TEST(FirstResponderTest, BoostsSameNodeDownstreamToo) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(300 * kMicrosecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  tb.sim.run_to_completion();
  // c2 is downstream of c1 on the same node.
  EXPECT_EQ(tb.c2().frequency(), tb.c2().dvfs().max_mhz);
  EXPECT_EQ(fr.boosts_applied(), 2u);
}

TEST(FirstResponderTest, UpdateAppliesAfterWorkerLatency) {
  // Coordinator-worker design (Fig. 9): the boost is NOT synchronous.
  ControllerTestbed tb;
  FirstResponder::Options opts = no_margin();
  opts.update_latency = 2540;
  FirstResponder fr(tb.env(), tb.network, opts);
  fr.start();
  tb.sim.run_until(300 * kMicrosecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().min_mhz);  // not yet
  tb.sim.run_until(tb.sim.now() + 3000);
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().max_mhz);  // after 2.54us
}

TEST(FirstResponderTest, FreezeWindowLimitsUpdates) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());  // freeze 1ms
  fr.start();
  tb.sim.run_until(300 * kMicrosecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  tb.sim.run_to_completion();
  EXPECT_EQ(fr.violations_detected(), 3u);  // detected every time
  EXPECT_EQ(fr.boosts_applied(), 2u);       // but boosted once (c1+c2)
  // After the freeze expires, a new violation boosts again.
  tb.c1().set_frequency(1600);
  tb.sim.run_until(tb.sim.now() + 2 * kMillisecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));
  tb.sim.run_to_completion();
  EXPECT_EQ(tb.c1().frequency(), tb.c1().dvfs().max_mhz);
}

TEST(FirstResponderTest, ResponsesIgnored) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(10 * kMillisecond);  // hugely "late"
  RpcPacket p = request_to(tb, tb.c1(), TimePoint::origin());
  p.is_response = true;
  fr.on_packet(p);
  tb.sim.run_to_completion();
  EXPECT_EQ(fr.violations_detected(), 0u);
}

TEST(FirstResponderTest, ClientPacketsIgnored) {
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(10 * kMillisecond);
  RpcPacket p;
  p.dst_container = kClientEndpoint;
  p.start_time = TimePoint::origin();
  fr.on_packet(p);
  EXPECT_EQ(fr.violations_detected(), 0u);
}

TEST(FirstResponderTest, UnknownTargetsIgnored) {
  ControllerTestbed tb;
  ControllerEnv env = tb.env();
  env.targets.per_container.erase(tb.c2().id());
  FirstResponder fr(std::move(env), tb.network, no_margin());
  fr.start();
  tb.sim.run_until(10 * kMillisecond);
  fr.on_packet(request_to(tb, tb.c2(), TimePoint::origin()));
  EXPECT_EQ(fr.violations_detected(), 0u);
}

TEST(FirstResponderTest, SlackMarginScalesThreshold) {
  ControllerTestbed tb;
  FirstResponder::Options opts = no_margin();
  opts.slack_margin = 2.0;  // threshold becomes 400us
  FirstResponder fr(tb.env(), tb.network, opts);
  fr.start();
  tb.sim.run_until(300 * kMicrosecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));  // 300us < 400us -> fine
  EXPECT_EQ(fr.violations_detected(), 0u);
  tb.sim.run_until(500 * kMicrosecond);
  fr.on_packet(request_to(tb, tb.c1(), TimePoint::origin()));  // 500us > 400us -> violation
  EXPECT_EQ(fr.violations_detected(), 1u);
}

TEST(FirstResponderTest, FreezeWindowDerivedFromE2eLatency) {
  ControllerTestbed tb;
  FirstResponder::Options opts;
  opts.freeze_window = 0;      // derive
  opts.freeze_multiple = 2.0;  // 2x of the 500us profiled e2e
  FirstResponder fr(tb.env(), tb.network, opts);
  fr.start();
  EXPECT_EQ(fr.effective_freeze_window(), Duration::ms(1));
}

TEST(FirstResponderTest, HookedViaNetworkDelivery) {
  // End-to-end: a late packet delivered through the Network triggers the
  // hook without any manual on_packet call.
  ControllerTestbed tb;
  FirstResponder fr(tb.env(), tb.network, no_margin());
  fr.start();
  tb.network.register_client_receiver([](const RpcPacket&) {});
  tb.sim.run_until(1 * kMillisecond);
  RpcPacket p = request_to(tb, tb.c1(), TimePoint::origin());  // started 1ms ago
  tb.network.send(kClientNode, p);
  tb.sim.run_to_completion();
  EXPECT_GE(fr.violations_detected(), 1u);
  EXPECT_GE(fr.packets_inspected(), 1u);
}

}  // namespace
}  // namespace sg
