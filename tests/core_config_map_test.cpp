#include "core/config_map.hpp"

#include <gtest/gtest.h>

namespace sg {
namespace {

Config parse(const std::string& text) {
  auto cfg = Config::parse(text);
  EXPECT_TRUE(cfg.has_value());
  return *cfg;
}

TEST(ConfigMapTest, ControllerNames) {
  EXPECT_EQ(controller_from_string("surgeguard"), ControllerKind::kSurgeGuard);
  EXPECT_EQ(controller_from_string("parties"), ControllerKind::kParties);
  EXPECT_EQ(controller_from_string("caladan"), ControllerKind::kCaladan);
  EXPECT_EQ(controller_from_string("escalator"), ControllerKind::kEscalator);
  EXPECT_EQ(controller_from_string("ideal"), ControllerKind::kIdealOracle);
  EXPECT_EQ(controller_from_string("centralized-ml"),
            ControllerKind::kCentralizedML);
  EXPECT_EQ(controller_from_string("ml+surgeguard"),
            ControllerKind::kMLPlusSurgeGuard);
  EXPECT_FALSE(controller_from_string("bogus").has_value());
}

TEST(ConfigMapTest, DefaultsApply) {
  std::string err;
  const auto cfg = experiment_from_config(parse(""), &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->workload.action, "chain");
  EXPECT_EQ(cfg->controller, ControllerKind::kSurgeGuard);
  EXPECT_EQ(cfg->nodes, 1);
  EXPECT_EQ(cfg->warmup, 5 * kSecond);
  EXPECT_EQ(cfg->duration, 30 * kSecond);
  EXPECT_DOUBLE_EQ(cfg->surge_mult, 1.75);
  EXPECT_FALSE(cfg->membw.has_value());
  EXPECT_EQ(cfg->net_delay_extra, 0);
}

TEST(ConfigMapTest, FullConfigRoundTrip) {
  const auto cfg = experiment_from_config(parse(R"(
workload = readUserTimeline
controller = parties
nodes = 2
warmup_s = 3
duration_s = 12
qos_mult = 2.5
seed = 99
[surge]
mult = 1.5
len_ms = 500
period_s = 5
[netdelay]
extra_us = 250
len_ms = 1000
period_s = 8
[membw]
node_bw_gbs = 48
demand_per_core_gbs = 5
)"),
                                          nullptr);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->workload.action, "readUserTimeline");
  EXPECT_EQ(cfg->controller, ControllerKind::kParties);
  EXPECT_EQ(cfg->nodes, 2);
  EXPECT_EQ(cfg->warmup, 3 * kSecond);
  EXPECT_EQ(cfg->duration, 12 * kSecond);
  EXPECT_DOUBLE_EQ(cfg->qos_mult, 2.5);
  EXPECT_EQ(cfg->seed, 99u);
  EXPECT_DOUBLE_EQ(cfg->surge_mult, 1.5);
  EXPECT_EQ(cfg->surge_len, 500 * kMillisecond);
  EXPECT_EQ(cfg->surge_period, 5 * kSecond);
  EXPECT_EQ(cfg->net_delay_extra, 250 * kMicrosecond);
  EXPECT_EQ(cfg->net_delay_len, 1 * kSecond);
  ASSERT_TRUE(cfg->membw.has_value());
  EXPECT_DOUBLE_EQ(cfg->membw->node_bw_gbs, 48.0);
  EXPECT_DOUBLE_EQ(cfg->membw->demand_per_busy_core_gbs, 5.0);
}

TEST(ConfigMapTest, UnknownWorkloadFails) {
  std::string err;
  EXPECT_FALSE(experiment_from_config(parse("workload = nope"), &err));
  EXPECT_NE(err.find("unknown workload"), std::string::npos);
}

TEST(ConfigMapTest, UnknownControllerFails) {
  std::string err;
  EXPECT_FALSE(experiment_from_config(parse("controller = magic"), &err));
  EXPECT_NE(err.find("unknown controller"), std::string::npos);
}

TEST(ConfigMapTest, InvalidValuesFail) {
  EXPECT_FALSE(experiment_from_config(parse("nodes = 0"), nullptr));
  EXPECT_FALSE(experiment_from_config(parse("duration_s = 0"), nullptr));
  EXPECT_FALSE(
      experiment_from_config(parse("[membw]\nnode_bw_gbs = -5"), nullptr));
}

TEST(ConfigMapTest, RateOverride) {
  const auto cfg =
      experiment_from_config(parse("workload = chain\nrate_rps = 5000"), nullptr);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->workload.base_rate_rps, 5000.0);
}

TEST(ConfigMapTest, TargetOverrides) {
  const WorkloadInfo w = make_chain();
  TargetMap targets;
  for (int i = 0; i < 5; ++i) {
    targets.per_container[i] = ContainerTargets{1000.0, Duration::ns(1000)};
  }
  const Config cfg = parse(R"(
[service.chain-2]
expected_exec_metric_us = 750
expected_time_from_start_us = 425
)");
  const int overridden = apply_target_overrides(cfg, w, &targets);
  EXPECT_EQ(overridden, 1);
  EXPECT_DOUBLE_EQ(targets.of(2).expected_exec_metric_ns, 750'000.0);
  EXPECT_EQ(targets.of(2).expected_time_from_start, Duration::ns(425'000));
  // Others untouched.
  EXPECT_DOUBLE_EQ(targets.of(1).expected_exec_metric_ns, 1000.0);
}

TEST(ConfigMapTest, PartialTargetOverride) {
  const WorkloadInfo w = make_chain();
  TargetMap targets;
  targets.per_container[0] = ContainerTargets{1000.0, Duration::ns(2000)};
  const Config cfg = parse("[service.chain-0]\nexpected_exec_metric_us = 9\n");
  apply_target_overrides(cfg, w, &targets);
  EXPECT_DOUBLE_EQ(targets.of(0).expected_exec_metric_ns, 9000.0);
  EXPECT_EQ(targets.of(0).expected_time_from_start, Duration::ns(2000));  // kept
}

TEST(ConfigMapTest, MisspelledKeyIsFlaggedAsUnknown) {
  // The classic typo: retry.timout_s instead of retry.timeout_ms.
  const Config cfg = parse(R"(
workload = chain
[retry]
timout_s = 5
)");
  const auto unknown = unknown_config_keys(cfg);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "retry.timout_s");
  EXPECT_EQ(warn_unknown_config_keys(cfg), 1);
  // The experiment still parses — unknown keys warn, they do not fail.
  EXPECT_TRUE(experiment_from_config(cfg, nullptr).has_value());
}

TEST(ConfigMapTest, ValidKeysAreNotFlagged) {
  const Config cfg = parse(R"(
workload = chain
controller = surgeguard
rate_rps = 3000
[surge]
mult = 1.5
[retry]
enabled = true
timeout_ms = 20
[trace]
enabled = true
sample = 0.5
capacity = 1024
keep_violators = false
out = /tmp/t.json
[service.chain-0]
expected_exec_metric_us = 10
expected_time_from_start_us = 20
)");
  EXPECT_TRUE(unknown_config_keys(cfg).empty());
  EXPECT_EQ(warn_unknown_config_keys(cfg), 0);
  // service.<name>. still requires a recognized suffix.
  const Config bad = parse("[service.chain-0]\nexec_metric = 1\n");
  EXPECT_EQ(unknown_config_keys(bad).size(), 1u);
}

TEST(ConfigMapTest, TraceKeysParse) {
  const auto cfg = experiment_from_config(parse(R"(
[trace]
enabled = true
sample = 0.25
capacity = 512
keep_violators = false
)"),
                                          nullptr);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->trace_enabled);
  EXPECT_DOUBLE_EQ(cfg->trace_sample, 0.25);
  EXPECT_EQ(cfg->trace_capacity, 512u);
  EXPECT_FALSE(cfg->trace_keep_violators);
  // Defaults: tracing off, sample everything, keep violators.
  const auto plain = experiment_from_config(parse(""), nullptr);
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->trace_enabled);
  EXPECT_DOUBLE_EQ(plain->trace_sample, 1.0);
  EXPECT_TRUE(plain->trace_keep_violators);
}

TEST(ConfigMapTest, InvalidTraceValuesFail) {
  std::string err;
  EXPECT_FALSE(
      experiment_from_config(parse("[trace]\nsample = 1.5\n"), &err));
  EXPECT_NE(err.find("trace.sample"), std::string::npos);
  EXPECT_FALSE(
      experiment_from_config(parse("[trace]\nsample = -0.1\n"), nullptr));
  EXPECT_FALSE(
      experiment_from_config(parse("[trace]\ncapacity = 0\n"), nullptr));
}

TEST(ConfigMapTest, ConfiguredExperimentRuns) {
  // End-to-end: a config-built experiment must run and produce results.
  const auto cfg = experiment_from_config(parse(R"(
workload = chain
controller = static
warmup_s = 1
duration_s = 2
[surge]
len_ms = 0
)"),
                                          nullptr);
  ASSERT_TRUE(cfg.has_value());
  const ExperimentResult r = run_experiment(*cfg);
  EXPECT_GT(r.load.completed, 0u);
}

}  // namespace
}  // namespace sg
