# Empty dependencies file for bench_table1_controllers.
# This may be replaced when dependencies are built.
