file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_controllers.dir/bench_table1_controllers.cpp.o"
  "CMakeFiles/bench_table1_controllers.dir/bench_table1_controllers.cpp.o.d"
  "bench_table1_controllers"
  "bench_table1_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
