# Empty compiler generated dependencies file for bench_fig14_alloc_timeline.
# This may be replaced when dependencies are built.
