file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_membw.dir/bench_ablation_membw.cpp.o"
  "CMakeFiles/bench_ablation_membw.dir/bench_ablation_membw.cpp.o.d"
  "bench_ablation_membw"
  "bench_ablation_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
