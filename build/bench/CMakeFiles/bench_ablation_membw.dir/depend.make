# Empty dependencies file for bench_ablation_membw.
# This may be replaced when dependencies are built.
