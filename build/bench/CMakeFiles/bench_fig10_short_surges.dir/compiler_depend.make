# Empty compiler generated dependencies file for bench_fig10_short_surges.
# This may be replaced when dependencies are built.
