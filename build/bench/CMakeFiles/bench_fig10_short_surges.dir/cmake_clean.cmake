file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_short_surges.dir/bench_fig10_short_surges.cpp.o"
  "CMakeFiles/bench_fig10_short_surges.dir/bench_fig10_short_surges.cpp.o.d"
  "bench_fig10_short_surges"
  "bench_fig10_short_surges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_short_surges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
