# Empty compiler generated dependencies file for bench_fig11_long_surges.
# This may be replaced when dependencies are built.
