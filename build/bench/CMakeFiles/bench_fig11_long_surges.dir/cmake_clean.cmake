file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_long_surges.dir/bench_fig11_long_surges.cpp.o"
  "CMakeFiles/bench_fig11_long_surges.dir/bench_fig11_long_surges.cpp.o.d"
  "bench_fig11_long_surges"
  "bench_fig11_long_surges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_long_surges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
