# Empty dependencies file for bench_ablation_netlatency.
# This may be replaced when dependencies are built.
