# Empty compiler generated dependencies file for bench_fig4_detection_delay.
# This may be replaced when dependencies are built.
