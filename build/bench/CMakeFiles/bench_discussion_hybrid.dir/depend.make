# Empty dependencies file for bench_discussion_hybrid.
# This may be replaced when dependencies are built.
