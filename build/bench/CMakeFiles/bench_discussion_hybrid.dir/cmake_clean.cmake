file(REMOVE_RECURSE
  "CMakeFiles/bench_discussion_hybrid.dir/bench_discussion_hybrid.cpp.o"
  "CMakeFiles/bench_discussion_hybrid.dir/bench_discussion_hybrid.cpp.o.d"
  "bench_discussion_hybrid"
  "bench_discussion_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
