file(REMOVE_RECURSE
  "CMakeFiles/sg_run.dir/sg_run.cpp.o"
  "CMakeFiles/sg_run.dir/sg_run.cpp.o.d"
  "sg_run"
  "sg_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
