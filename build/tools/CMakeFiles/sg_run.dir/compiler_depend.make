# Empty compiler generated dependencies file for sg_run.
# This may be replaced when dependencies are built.
