# Empty dependencies file for load_latency_curve.
# This may be replaced when dependencies are built.
