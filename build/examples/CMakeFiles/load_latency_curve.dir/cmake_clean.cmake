file(REMOVE_RECURSE
  "CMakeFiles/load_latency_curve.dir/load_latency_curve.cpp.o"
  "CMakeFiles/load_latency_curve.dir/load_latency_curve.cpp.o.d"
  "load_latency_curve"
  "load_latency_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_latency_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
