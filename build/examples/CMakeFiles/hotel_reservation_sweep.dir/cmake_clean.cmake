file(REMOVE_RECURSE
  "CMakeFiles/hotel_reservation_sweep.dir/hotel_reservation_sweep.cpp.o"
  "CMakeFiles/hotel_reservation_sweep.dir/hotel_reservation_sweep.cpp.o.d"
  "hotel_reservation_sweep"
  "hotel_reservation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_reservation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
