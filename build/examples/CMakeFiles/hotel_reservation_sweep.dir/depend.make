# Empty dependencies file for hotel_reservation_sweep.
# This may be replaced when dependencies are built.
