# Empty compiler generated dependencies file for social_network_surge.
# This may be replaced when dependencies are built.
