file(REMOVE_RECURSE
  "CMakeFiles/social_network_surge.dir/social_network_surge.cpp.o"
  "CMakeFiles/social_network_surge.dir/social_network_surge.cpp.o.d"
  "social_network_surge"
  "social_network_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
