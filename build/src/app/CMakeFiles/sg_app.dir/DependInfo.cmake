
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/application.cpp" "src/app/CMakeFiles/sg_app.dir/application.cpp.o" "gcc" "src/app/CMakeFiles/sg_app.dir/application.cpp.o.d"
  "/root/repo/src/app/task_graph.cpp" "src/app/CMakeFiles/sg_app.dir/task_graph.cpp.o" "gcc" "src/app/CMakeFiles/sg_app.dir/task_graph.cpp.o.d"
  "/root/repo/src/app/threadpool.cpp" "src/app/CMakeFiles/sg_app.dir/threadpool.cpp.o" "gcc" "src/app/CMakeFiles/sg_app.dir/threadpool.cpp.o.d"
  "/root/repo/src/app/workloads.cpp" "src/app/CMakeFiles/sg_app.dir/workloads.cpp.o" "gcc" "src/app/CMakeFiles/sg_app.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
