file(REMOVE_RECURSE
  "libsg_app.a"
)
