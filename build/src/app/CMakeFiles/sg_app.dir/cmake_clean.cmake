file(REMOVE_RECURSE
  "CMakeFiles/sg_app.dir/application.cpp.o"
  "CMakeFiles/sg_app.dir/application.cpp.o.d"
  "CMakeFiles/sg_app.dir/task_graph.cpp.o"
  "CMakeFiles/sg_app.dir/task_graph.cpp.o.d"
  "CMakeFiles/sg_app.dir/threadpool.cpp.o"
  "CMakeFiles/sg_app.dir/threadpool.cpp.o.d"
  "CMakeFiles/sg_app.dir/workloads.cpp.o"
  "CMakeFiles/sg_app.dir/workloads.cpp.o.d"
  "libsg_app.a"
  "libsg_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
