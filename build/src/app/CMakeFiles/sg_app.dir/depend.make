# Empty dependencies file for sg_app.
# This may be replaced when dependencies are built.
