file(REMOVE_RECURSE
  "CMakeFiles/sg_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sg_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sg_sim.dir/simulator.cpp.o"
  "CMakeFiles/sg_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sg_sim.dir/timeline.cpp.o"
  "CMakeFiles/sg_sim.dir/timeline.cpp.o.d"
  "libsg_sim.a"
  "libsg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
