# Empty dependencies file for sg_sim.
# This may be replaced when dependencies are built.
