file(REMOVE_RECURSE
  "CMakeFiles/sg_workload.dir/load_generator.cpp.o"
  "CMakeFiles/sg_workload.dir/load_generator.cpp.o.d"
  "CMakeFiles/sg_workload.dir/spike.cpp.o"
  "CMakeFiles/sg_workload.dir/spike.cpp.o.d"
  "CMakeFiles/sg_workload.dir/violation_volume.cpp.o"
  "CMakeFiles/sg_workload.dir/violation_volume.cpp.o.d"
  "libsg_workload.a"
  "libsg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
