file(REMOVE_RECURSE
  "libsg_workload.a"
)
