# Empty dependencies file for sg_workload.
# This may be replaced when dependencies are built.
