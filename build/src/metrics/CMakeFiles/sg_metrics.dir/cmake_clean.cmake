file(REMOVE_RECURSE
  "CMakeFiles/sg_metrics.dir/container_metrics.cpp.o"
  "CMakeFiles/sg_metrics.dir/container_metrics.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics_bus.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics_bus.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/sensitivity.cpp.o"
  "CMakeFiles/sg_metrics.dir/sensitivity.cpp.o.d"
  "libsg_metrics.a"
  "libsg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
