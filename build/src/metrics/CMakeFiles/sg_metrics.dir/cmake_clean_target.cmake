file(REMOVE_RECURSE
  "libsg_metrics.a"
)
