file(REMOVE_RECURSE
  "CMakeFiles/sg_controllers.dir/caladan.cpp.o"
  "CMakeFiles/sg_controllers.dir/caladan.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/centralized.cpp.o"
  "CMakeFiles/sg_controllers.dir/centralized.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/escalator.cpp.o"
  "CMakeFiles/sg_controllers.dir/escalator.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/first_responder.cpp.o"
  "CMakeFiles/sg_controllers.dir/first_responder.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/ideal.cpp.o"
  "CMakeFiles/sg_controllers.dir/ideal.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/parties.cpp.o"
  "CMakeFiles/sg_controllers.dir/parties.cpp.o.d"
  "CMakeFiles/sg_controllers.dir/surgeguard.cpp.o"
  "CMakeFiles/sg_controllers.dir/surgeguard.cpp.o.d"
  "libsg_controllers.a"
  "libsg_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
