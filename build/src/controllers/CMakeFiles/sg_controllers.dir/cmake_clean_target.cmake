file(REMOVE_RECURSE
  "libsg_controllers.a"
)
