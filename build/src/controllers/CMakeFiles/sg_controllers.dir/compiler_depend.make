# Empty compiler generated dependencies file for sg_controllers.
# This may be replaced when dependencies are built.
