file(REMOVE_RECURSE
  "libsg_net.a"
)
