file(REMOVE_RECURSE
  "CMakeFiles/sg_net.dir/network.cpp.o"
  "CMakeFiles/sg_net.dir/network.cpp.o.d"
  "libsg_net.a"
  "libsg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
