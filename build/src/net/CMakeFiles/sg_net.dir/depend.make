# Empty dependencies file for sg_net.
# This may be replaced when dependencies are built.
