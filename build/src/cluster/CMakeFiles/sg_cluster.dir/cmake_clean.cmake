file(REMOVE_RECURSE
  "CMakeFiles/sg_cluster.dir/cluster.cpp.o"
  "CMakeFiles/sg_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/sg_cluster.dir/container.cpp.o"
  "CMakeFiles/sg_cluster.dir/container.cpp.o.d"
  "CMakeFiles/sg_cluster.dir/membw.cpp.o"
  "CMakeFiles/sg_cluster.dir/membw.cpp.o.d"
  "CMakeFiles/sg_cluster.dir/node.cpp.o"
  "CMakeFiles/sg_cluster.dir/node.cpp.o.d"
  "libsg_cluster.a"
  "libsg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
