# Empty dependencies file for sg_cluster.
# This may be replaced when dependencies are built.
