
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/sg_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/sg_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/container.cpp" "src/cluster/CMakeFiles/sg_cluster.dir/container.cpp.o" "gcc" "src/cluster/CMakeFiles/sg_cluster.dir/container.cpp.o.d"
  "/root/repo/src/cluster/membw.cpp" "src/cluster/CMakeFiles/sg_cluster.dir/membw.cpp.o" "gcc" "src/cluster/CMakeFiles/sg_cluster.dir/membw.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/sg_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/sg_cluster.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
