file(REMOVE_RECURSE
  "libsg_cluster.a"
)
