file(REMOVE_RECURSE
  "libsg_core.a"
)
