file(REMOVE_RECURSE
  "CMakeFiles/sg_core.dir/config_map.cpp.o"
  "CMakeFiles/sg_core.dir/config_map.cpp.o.d"
  "CMakeFiles/sg_core.dir/experiment.cpp.o"
  "CMakeFiles/sg_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sg_core.dir/reporting.cpp.o"
  "CMakeFiles/sg_core.dir/reporting.cpp.o.d"
  "CMakeFiles/sg_core.dir/sweep.cpp.o"
  "CMakeFiles/sg_core.dir/sweep.cpp.o.d"
  "libsg_core.a"
  "libsg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
