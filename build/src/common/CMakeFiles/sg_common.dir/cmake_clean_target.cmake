file(REMOVE_RECURSE
  "libsg_common.a"
)
