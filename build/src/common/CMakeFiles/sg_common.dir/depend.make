# Empty dependencies file for sg_common.
# This may be replaced when dependencies are built.
