file(REMOVE_RECURSE
  "CMakeFiles/sg_common.dir/config.cpp.o"
  "CMakeFiles/sg_common.dir/config.cpp.o.d"
  "CMakeFiles/sg_common.dir/csv.cpp.o"
  "CMakeFiles/sg_common.dir/csv.cpp.o.d"
  "CMakeFiles/sg_common.dir/histogram.cpp.o"
  "CMakeFiles/sg_common.dir/histogram.cpp.o.d"
  "CMakeFiles/sg_common.dir/logging.cpp.o"
  "CMakeFiles/sg_common.dir/logging.cpp.o.d"
  "CMakeFiles/sg_common.dir/rng.cpp.o"
  "CMakeFiles/sg_common.dir/rng.cpp.o.d"
  "CMakeFiles/sg_common.dir/stats.cpp.o"
  "CMakeFiles/sg_common.dir/stats.cpp.o.d"
  "CMakeFiles/sg_common.dir/time.cpp.o"
  "CMakeFiles/sg_common.dir/time.cpp.o.d"
  "libsg_common.a"
  "libsg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
