# Empty dependencies file for controllers_surgeguard_test.
# This may be replaced when dependencies are built.
