file(REMOVE_RECURSE
  "CMakeFiles/controllers_surgeguard_test.dir/controllers_surgeguard_test.cpp.o"
  "CMakeFiles/controllers_surgeguard_test.dir/controllers_surgeguard_test.cpp.o.d"
  "controllers_surgeguard_test"
  "controllers_surgeguard_test.pdb"
  "controllers_surgeguard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_surgeguard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
