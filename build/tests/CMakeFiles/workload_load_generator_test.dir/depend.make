# Empty dependencies file for workload_load_generator_test.
# This may be replaced when dependencies are built.
