# Empty dependencies file for workload_violation_volume_test.
# This may be replaced when dependencies are built.
