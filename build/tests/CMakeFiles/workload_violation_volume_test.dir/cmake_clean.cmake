file(REMOVE_RECURSE
  "CMakeFiles/workload_violation_volume_test.dir/workload_violation_volume_test.cpp.o"
  "CMakeFiles/workload_violation_volume_test.dir/workload_violation_volume_test.cpp.o.d"
  "workload_violation_volume_test"
  "workload_violation_volume_test.pdb"
  "workload_violation_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_violation_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
