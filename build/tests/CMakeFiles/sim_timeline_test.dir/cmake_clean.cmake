file(REMOVE_RECURSE
  "CMakeFiles/sim_timeline_test.dir/sim_timeline_test.cpp.o"
  "CMakeFiles/sim_timeline_test.dir/sim_timeline_test.cpp.o.d"
  "sim_timeline_test"
  "sim_timeline_test.pdb"
  "sim_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
