file(REMOVE_RECURSE
  "CMakeFiles/integration_surge_test.dir/integration_surge_test.cpp.o"
  "CMakeFiles/integration_surge_test.dir/integration_surge_test.cpp.o.d"
  "integration_surge_test"
  "integration_surge_test.pdb"
  "integration_surge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_surge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
