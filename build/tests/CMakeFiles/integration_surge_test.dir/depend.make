# Empty dependencies file for integration_surge_test.
# This may be replaced when dependencies are built.
