
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_node_test.cpp" "tests/CMakeFiles/cluster_node_test.dir/cluster_node_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_node_test.dir/cluster_node_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controllers/CMakeFiles/sg_controllers.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/sg_app.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
