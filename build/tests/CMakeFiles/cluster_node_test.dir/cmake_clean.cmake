file(REMOVE_RECURSE
  "CMakeFiles/cluster_node_test.dir/cluster_node_test.cpp.o"
  "CMakeFiles/cluster_node_test.dir/cluster_node_test.cpp.o.d"
  "cluster_node_test"
  "cluster_node_test.pdb"
  "cluster_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
