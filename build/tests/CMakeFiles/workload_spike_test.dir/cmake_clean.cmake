file(REMOVE_RECURSE
  "CMakeFiles/workload_spike_test.dir/workload_spike_test.cpp.o"
  "CMakeFiles/workload_spike_test.dir/workload_spike_test.cpp.o.d"
  "workload_spike_test"
  "workload_spike_test.pdb"
  "workload_spike_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_spike_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
