# Empty dependencies file for workload_spike_test.
# This may be replaced when dependencies are built.
