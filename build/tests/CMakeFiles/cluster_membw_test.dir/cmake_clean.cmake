file(REMOVE_RECURSE
  "CMakeFiles/cluster_membw_test.dir/cluster_membw_test.cpp.o"
  "CMakeFiles/cluster_membw_test.dir/cluster_membw_test.cpp.o.d"
  "cluster_membw_test"
  "cluster_membw_test.pdb"
  "cluster_membw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_membw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
