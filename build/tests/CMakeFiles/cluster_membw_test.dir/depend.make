# Empty dependencies file for cluster_membw_test.
# This may be replaced when dependencies are built.
