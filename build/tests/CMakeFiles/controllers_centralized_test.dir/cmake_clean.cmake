file(REMOVE_RECURSE
  "CMakeFiles/controllers_centralized_test.dir/controllers_centralized_test.cpp.o"
  "CMakeFiles/controllers_centralized_test.dir/controllers_centralized_test.cpp.o.d"
  "controllers_centralized_test"
  "controllers_centralized_test.pdb"
  "controllers_centralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
