# Empty compiler generated dependencies file for controllers_centralized_test.
# This may be replaced when dependencies are built.
