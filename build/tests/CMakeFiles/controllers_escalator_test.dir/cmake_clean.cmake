file(REMOVE_RECURSE
  "CMakeFiles/controllers_escalator_test.dir/controllers_escalator_test.cpp.o"
  "CMakeFiles/controllers_escalator_test.dir/controllers_escalator_test.cpp.o.d"
  "controllers_escalator_test"
  "controllers_escalator_test.pdb"
  "controllers_escalator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_escalator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
