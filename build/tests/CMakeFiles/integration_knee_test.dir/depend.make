# Empty dependencies file for integration_knee_test.
# This may be replaced when dependencies are built.
