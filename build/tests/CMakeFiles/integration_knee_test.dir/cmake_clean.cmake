file(REMOVE_RECURSE
  "CMakeFiles/integration_knee_test.dir/integration_knee_test.cpp.o"
  "CMakeFiles/integration_knee_test.dir/integration_knee_test.cpp.o.d"
  "integration_knee_test"
  "integration_knee_test.pdb"
  "integration_knee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_knee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
