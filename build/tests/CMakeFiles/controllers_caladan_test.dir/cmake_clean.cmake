file(REMOVE_RECURSE
  "CMakeFiles/controllers_caladan_test.dir/controllers_caladan_test.cpp.o"
  "CMakeFiles/controllers_caladan_test.dir/controllers_caladan_test.cpp.o.d"
  "controllers_caladan_test"
  "controllers_caladan_test.pdb"
  "controllers_caladan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_caladan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
