# Empty compiler generated dependencies file for controllers_caladan_test.
# This may be replaced when dependencies are built.
