file(REMOVE_RECURSE
  "CMakeFiles/controllers_first_responder_test.dir/controllers_first_responder_test.cpp.o"
  "CMakeFiles/controllers_first_responder_test.dir/controllers_first_responder_test.cpp.o.d"
  "controllers_first_responder_test"
  "controllers_first_responder_test.pdb"
  "controllers_first_responder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_first_responder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
