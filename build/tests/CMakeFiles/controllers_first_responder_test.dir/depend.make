# Empty dependencies file for controllers_first_responder_test.
# This may be replaced when dependencies are built.
