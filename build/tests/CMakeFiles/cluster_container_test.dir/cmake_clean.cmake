file(REMOVE_RECURSE
  "CMakeFiles/cluster_container_test.dir/cluster_container_test.cpp.o"
  "CMakeFiles/cluster_container_test.dir/cluster_container_test.cpp.o.d"
  "cluster_container_test"
  "cluster_container_test.pdb"
  "cluster_container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
