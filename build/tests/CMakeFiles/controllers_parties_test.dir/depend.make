# Empty dependencies file for controllers_parties_test.
# This may be replaced when dependencies are built.
