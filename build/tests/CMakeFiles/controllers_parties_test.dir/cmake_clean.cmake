file(REMOVE_RECURSE
  "CMakeFiles/controllers_parties_test.dir/controllers_parties_test.cpp.o"
  "CMakeFiles/controllers_parties_test.dir/controllers_parties_test.cpp.o.d"
  "controllers_parties_test"
  "controllers_parties_test.pdb"
  "controllers_parties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_parties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
