file(REMOVE_RECURSE
  "CMakeFiles/core_reporting_test.dir/core_reporting_test.cpp.o"
  "CMakeFiles/core_reporting_test.dir/core_reporting_test.cpp.o.d"
  "core_reporting_test"
  "core_reporting_test.pdb"
  "core_reporting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reporting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
