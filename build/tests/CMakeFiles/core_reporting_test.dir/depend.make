# Empty dependencies file for core_reporting_test.
# This may be replaced when dependencies are built.
