# Empty dependencies file for integration_threading_test.
# This may be replaced when dependencies are built.
