file(REMOVE_RECURSE
  "CMakeFiles/integration_threading_test.dir/integration_threading_test.cpp.o"
  "CMakeFiles/integration_threading_test.dir/integration_threading_test.cpp.o.d"
  "integration_threading_test"
  "integration_threading_test.pdb"
  "integration_threading_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_threading_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
