# Empty dependencies file for common_ewma_test.
# This may be replaced when dependencies are built.
