file(REMOVE_RECURSE
  "CMakeFiles/common_ewma_test.dir/common_ewma_test.cpp.o"
  "CMakeFiles/common_ewma_test.dir/common_ewma_test.cpp.o.d"
  "common_ewma_test"
  "common_ewma_test.pdb"
  "common_ewma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_ewma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
