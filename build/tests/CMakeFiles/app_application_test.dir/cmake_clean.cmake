file(REMOVE_RECURSE
  "CMakeFiles/app_application_test.dir/app_application_test.cpp.o"
  "CMakeFiles/app_application_test.dir/app_application_test.cpp.o.d"
  "app_application_test"
  "app_application_test.pdb"
  "app_application_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_application_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
