# Empty compiler generated dependencies file for app_application_test.
# This may be replaced when dependencies are built.
