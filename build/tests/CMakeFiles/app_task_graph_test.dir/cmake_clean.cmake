file(REMOVE_RECURSE
  "CMakeFiles/app_task_graph_test.dir/app_task_graph_test.cpp.o"
  "CMakeFiles/app_task_graph_test.dir/app_task_graph_test.cpp.o.d"
  "app_task_graph_test"
  "app_task_graph_test.pdb"
  "app_task_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_task_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
