# Empty dependencies file for app_task_graph_test.
# This may be replaced when dependencies are built.
