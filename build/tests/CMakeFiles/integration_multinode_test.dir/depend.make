# Empty dependencies file for integration_multinode_test.
# This may be replaced when dependencies are built.
