file(REMOVE_RECURSE
  "CMakeFiles/integration_multinode_test.dir/integration_multinode_test.cpp.o"
  "CMakeFiles/integration_multinode_test.dir/integration_multinode_test.cpp.o.d"
  "integration_multinode_test"
  "integration_multinode_test.pdb"
  "integration_multinode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multinode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
