file(REMOVE_RECURSE
  "CMakeFiles/app_threadpool_test.dir/app_threadpool_test.cpp.o"
  "CMakeFiles/app_threadpool_test.dir/app_threadpool_test.cpp.o.d"
  "app_threadpool_test"
  "app_threadpool_test.pdb"
  "app_threadpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
