# Empty dependencies file for app_threadpool_test.
# This may be replaced when dependencies are built.
