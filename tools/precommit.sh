#!/usr/bin/env sh
# Pre-commit gate: sg-lint (determinism + unit-safety rules) and
# clang-format --dry-run over the staged C++ files only. Wire it up with
#
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
#
# Requires a built sglint (any build dir); clang-format is optional and
# skipped with a note if absent. Exits nonzero on any finding so the
# commit is blocked before CI would reject it.
set -u

repo_root=$(git rev-parse --show-toplevel) || exit 2
cd "$repo_root" || exit 2

staged=$(git diff --cached --name-only --diff-filter=ACMR -- \
  '*.cpp' '*.hpp' '*.h' '*.cc' '*.hh' |
  grep -v -e '^tests/sglint_fixtures/' -e '^tests/sglint_fixable/' || true)
if [ -z "$staged" ]; then
  echo "precommit: no staged C++ files, nothing to check"
  exit 0
fi

sglint=""
for candidate in build/tools/sglint/sglint build-*/tools/sglint/sglint; do
  if [ -x "$candidate" ]; then
    sglint=$candidate
    break
  fi
done
if [ -z "$sglint" ]; then
  echo "precommit: no built sglint found (looked in build*/tools/sglint/)" >&2
  echo "precommit: run 'cmake --build build --target sglint' first" >&2
  exit 2
fi

status=0

# shellcheck disable=SC2086  # word-splitting the file list is the point
if ! $sglint $staged; then
  echo "precommit: sg-lint found problems (fix, or try 'sglint --fix')" >&2
  status=1
fi

if command -v clang-format > /dev/null 2>&1; then
  # shellcheck disable=SC2086
  if ! clang-format --dry-run --Werror $staged; then
    echo "precommit: clang-format wants changes (run clang-format -i)" >&2
    status=1
  fi
else
  echo "precommit: clang-format not installed, skipping format check"
fi

exit $status
