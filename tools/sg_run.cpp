// sg_run: config-driven experiment runner (the paper artifact's workflow).
//
// Mirrors the artifact's order of operations (Artifact Appendix, A1):
//   1. deploy the application (here: build the simulated testbed)
//   2. read initial allocations + per-service parameters from a config file
//   3. initialize the controller
//   4. run the workload generator and the controller together
// and reports what the artifact's modified wrk2 reports (A2): a latency
// histogram and the violation volume.
//
// Usage:
//   sg_run <config-file> [--histogram] [--quiet] [--fault-plan SPEC]
// See sample_config at the repository root for all recognized keys.
//
// --fault-plan overrides the config file's fault.plan key with a chaos
// schedule, e.g.
//   --fault-plan "drop:start_ms=6000,len_ms=2000,rate=0.1;slow:node=0,start_ms=9000,len_ms=500,factor=0.25"
// Faults are seed-deterministic: the same config + seed + plan reproduces
// the identical fault timeline (see EXPERIMENTS.md "Chaos experiments").
#include <cstdio>
#include <cstring>
#include <string>

#include "common/csv.hpp"
#include "core/config_map.hpp"
#include "core/reporting.hpp"

using namespace sg;

namespace {

void print_histogram(const LoadGenResults& results) {
  std::printf("\nLatency distribution (wrk2-style):\n");
  TablePrinter table({"percentile", "latency"});
  // LoadGenResults carries the headline percentiles; the full histogram is
  // accessible programmatically via LoadGenerator::histogram().
  table.add_row({"50.000%", format_time(results.p50)});
  table.add_row({"98.000%", format_time(results.p98)});
  table.add_row({"99.000%", format_time(results.p99)});
  table.add_row({"100.000%", format_time(results.max_latency)});
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file> [--histogram] [--quiet]\n"
                 "see sample_config for recognized keys\n",
                 argv[0]);
    return 2;
  }
  bool histogram = false, quiet = false;
  const char* fault_spec = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--histogram") == 0) histogram = true;
    if (std::strcmp(argv[i], "--quiet") == 0) quiet = true;
    if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      fault_spec = argv[++i];
    }
  }

  std::string error;
  const auto file_cfg = Config::load(argv[1], &error);
  if (!file_cfg) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  auto cfg = experiment_from_config(*file_cfg, &error);
  if (!cfg) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (fault_spec != nullptr) {
    const auto plan = FaultPlan::parse(fault_spec, &error);
    if (!plan) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    cfg->fault_plan = *plan;
  }
  if (!cfg->fault_plan.empty()) {
    // Chaos runs retry by default (a dropped packet would otherwise strand
    // its request forever) and drain past the last fault window. Explicit
    // config keys still win.
    if (!file_cfg->has("retry.enabled")) cfg->rpc_retry.enabled = true;
    if (!file_cfg->has("drain_s")) cfg->drain = 5 * kSecond;
  }

  if (!quiet) {
    std::printf("workload:   %s @ %.0f rps (%s, %s)\n",
                cfg->workload.spec.name.c_str(), cfg->workload.base_rate_rps,
                to_string(cfg->workload.spec.rpc),
                to_string(cfg->workload.spec.threading));
    std::printf("controller: %s | nodes: %d | surge: %.2fx for %s every %s\n",
                to_string(cfg->controller), cfg->nodes, cfg->surge_mult,
                format_time(cfg->surge_len).c_str(),
                format_time(cfg->surge_period).c_str());
    if (!cfg->fault_plan.empty()) {
      std::printf("faults:     %s (retry %s)\n",
                  cfg->fault_plan.to_string().c_str(),
                  cfg->rpc_retry.enabled ? "on" : "off");
    }
  }

  // Profile at low load (paper §IV), then apply any user-pinned targets.
  ProfileResult profile =
      profile_workload(cfg->workload, cfg->nodes, cfg->target_mult);
  const int pinned =
      apply_target_overrides(*file_cfg, cfg->workload, &profile.targets);
  if (!quiet && pinned > 0) {
    std::printf("pinned targets for %d service(s) from the config file\n",
                pinned);
  }
  if (!quiet) {
    std::printf("low-load mean e2e: %s -> QoS %s\n",
                format_time(profile.low_load_mean_latency).c_str(),
                format_time(static_cast<SimTime>(
                                cfg->qos_mult *
                                static_cast<double>(profile.low_load_mean_latency)))
                    .c_str());
  }

  const ExperimentResult r = run_experiment(*cfg, profile);

  print_banner("results");
  TablePrinter table({"metric", "value"});
  table.add_row({"violation volume", fmt_double(r.load.violation_volume_ms_s, 3) + " ms*s"});
  table.add_row({"violation duration", fmt_double(100.0 * r.load.violation_duration_frac, 1) + "% of window"});
  table.add_row({"p50 latency", format_time(r.load.p50)});
  table.add_row({"p98 latency", format_time(r.load.p98)});
  table.add_row({"p99 latency", format_time(r.load.p99)});
  table.add_row({"throughput", fmt_double(r.load.throughput_rps, 0) + " rps"});
  table.add_row({"requests completed", std::to_string(r.load.completed)});
  table.add_row({"avg cores used", fmt_double(r.avg_cores, 2)});
  table.add_row({"energy", fmt_double(r.energy_joules, 1) + " J"});
  if (r.fr_packets > 0) {
    table.add_row({"fast-path packets inspected", std::to_string(r.fr_packets)});
    table.add_row({"fast-path violations", std::to_string(r.fr_violations)});
    table.add_row({"fast-path boosts", std::to_string(r.fr_boosts)});
  }
  if (!cfg->fault_plan.empty()) {
    table.add_row({"faults injected", r.faults.digest()});
    table.add_row({"client retries / dropped",
                   std::to_string(r.load.retries) + " / " +
                       std::to_string(r.load.dropped)});
    table.add_row({"app rpc retries / failures",
                   std::to_string(r.app_rpc_retries) + " / " +
                       std::to_string(r.app_rpc_failures)});
    table.add_row({"requests stranded", std::to_string(r.load.outstanding)});
    if (r.controller_ticks_stalled > 0) {
      table.add_row({"controller ticks stalled",
                     std::to_string(r.controller_ticks_stalled)});
    }
  }
  table.print();

  if (histogram) print_histogram(r.load);
  return 0;
}
