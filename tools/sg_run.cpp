// sg_run: config-driven experiment runner (the paper artifact's workflow).
//
// Mirrors the artifact's order of operations (Artifact Appendix, A1):
//   1. deploy the application (here: build the simulated testbed)
//   2. read initial allocations + per-service parameters from a config file
//   3. initialize the controller
//   4. run the workload generator and the controller together
// and reports what the artifact's modified wrk2 reports (A2): a latency
// histogram and the violation volume.
//
// Usage:
//   sg_run <config-file> [flags]   (sg_run --help lists every flag)
// See sample_config at the repository root for all recognized keys.
//
// --fault-plan overrides the config file's fault.plan key with a chaos
// schedule, e.g.
//   --fault-plan "drop:start_ms=6000,len_ms=2000,rate=0.1;slow:node=0,start_ms=9000,len_ms=500,factor=0.25"
// Faults are seed-deterministic: the same config + seed + plan reproduces
// the identical fault timeline (see EXPERIMENTS.md "Chaos experiments").
//
// --trace records per-request spans and controller decisions, prints a
// per-service latency breakdown plus the slowest requests' critical paths,
// and writes a Chrome trace_event JSON (open in Perfetto / chrome://tracing)
// to --trace-out. Traces are byte-identical for a fixed seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/csv.hpp"
#include "core/config_map.hpp"
#include "core/reporting.hpp"
#include "trace/export.hpp"

using namespace sg;

namespace {

void print_usage(const char* argv0, std::FILE* out) {
  std::fprintf(out,
               "usage: %s <config-file> [flags]\n"
               "\n"
               "Runs one config-driven experiment (see sample_config for "
               "recognized keys).\n"
               "\n"
               "flags:\n"
               "  --histogram        print the wrk2-style latency "
               "percentile table\n"
               "  --shards N         run the event loop on N shard threads "
               "(overrides sim.shards; N in [1, nodes]; results are "
               "bit-identical for any N)\n"
               "  --quiet            suppress setup/progress output "
               "(results still print)\n"
               "  --fault-plan SPEC  override fault.plan with a chaos "
               "schedule (drop/dup/delay/slow/freeze/part windows)\n"
               "  --trace            enable per-request tracing "
               "(overrides trace.enabled)\n"
               "  --trace-sample R   head-sampling rate in [0, 1] "
               "(overrides trace.sample)\n"
               "  --trace-out PATH   Chrome trace_event JSON output path "
               "(default trace.json)\n"
               "  --help             show this help and exit\n",
               argv0);
}

void print_histogram(const LoadGenResults& results) {
  std::printf("\nLatency distribution (wrk2-style):\n");
  TablePrinter table({"percentile", "latency"});
  // LoadGenResults carries the headline percentiles; the full histogram is
  // accessible programmatically via LoadGenerator::histogram().
  table.add_row({"50.000%", format_time(results.p50)});
  table.add_row({"98.000%", format_time(results.p98)});
  table.add_row({"99.000%", format_time(results.p99)});
  table.add_row({"100.000%", format_time(results.max_latency)});
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], stdout);
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(argv[0], stderr);
    return 2;
  }
  bool histogram = false, quiet = false, trace_flag = false;
  const char* fault_spec = nullptr;
  const char* trace_sample = nullptr;
  const char* trace_out = nullptr;
  const char* shards_arg = nullptr;
  for (int i = 2; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--histogram") == 0) {
      histogram = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards_arg = needs_value("--shards");
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      fault_spec = needs_value("--fault-plan");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_flag = true;
    } else if (std::strcmp(argv[i], "--trace-sample") == 0) {
      trace_sample = needs_value("--trace-sample");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = needs_value("--trace-out");
    } else {
      std::fprintf(stderr, "error: unknown flag '%s' (see --help)\n",
                   argv[i]);
      return 2;
    }
  }

  std::string error;
  const auto file_cfg = Config::load(argv[1], &error);
  if (!file_cfg) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  auto cfg = experiment_from_config(*file_cfg, &error);
  if (!cfg) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (shards_arg != nullptr) {
    const int shards = std::atoi(shards_arg);
    if (shards < 1) {
      std::fprintf(stderr,
                   "error: --shards must be >= 1 (got '%s'); use 1 for "
                   "serial execution\n",
                   shards_arg);
      return 2;
    }
    if (shards > cfg->nodes) {
      std::fprintf(stderr,
                   "error: --shards %d exceeds nodes (%d): each shard needs "
                   "at least one node\n",
                   shards, cfg->nodes);
      return 2;
    }
    if (shards > 1 && (cfg->controller == ControllerKind::kCentralizedML ||
                       cfg->controller == ControllerKind::kMLPlusSurgeGuard)) {
      std::fprintf(stderr,
                   "error: controller '%s' is centralized and requires "
                   "--shards 1\n",
                   to_string(cfg->controller));
      return 2;
    }
    cfg->shards = shards;
  }
  if (fault_spec != nullptr) {
    const auto plan = FaultPlan::parse(fault_spec, &error);
    if (!plan) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    cfg->fault_plan = *plan;
  }
  // Trace flags override the config file's trace.* keys; providing a sample
  // rate or an output path implies --trace.
  if (trace_flag || trace_sample != nullptr || trace_out != nullptr) {
    cfg->trace_enabled = true;
  }
  if (trace_sample != nullptr) {
    const double rate = std::atof(trace_sample);
    if (rate < 0.0 || rate > 1.0) {
      std::fprintf(stderr, "error: --trace-sample must be in [0, 1]\n");
      return 2;
    }
    cfg->trace_sample = rate;
  }
  const std::string trace_path =
      trace_out != nullptr ? trace_out
                           : file_cfg->get_string("trace.out", "trace.json");
  if (!cfg->fault_plan.empty()) {
    // Chaos runs retry by default (a dropped packet would otherwise strand
    // its request forever) and drain past the last fault window. Explicit
    // config keys still win.
    if (!file_cfg->has("retry.enabled")) cfg->rpc_retry.enabled = true;
    if (!file_cfg->has("drain_s")) cfg->drain = 5 * kSecond;
  }

  if (!quiet) {
    std::printf("workload:   %s @ %.0f rps (%s, %s)\n",
                cfg->workload.spec.name.c_str(), cfg->workload.base_rate_rps,
                to_string(cfg->workload.spec.rpc),
                to_string(cfg->workload.spec.threading));
    std::printf("controller: %s | nodes: %d | surge: %.2fx for %s every %s\n",
                to_string(cfg->controller), cfg->nodes, cfg->surge_mult,
                format_time(cfg->surge_len).c_str(),
                format_time(cfg->surge_period).c_str());
    if (cfg->shards > 1) {
      std::printf("shards:     %d (parallel event loop, bit-identical to "
                  "--shards 1)\n",
                  cfg->shards);
    }
    if (!cfg->fault_plan.empty()) {
      std::printf("faults:     %s (retry %s)\n",
                  cfg->fault_plan.to_string().c_str(),
                  cfg->rpc_retry.enabled ? "on" : "off");
    }
  }

  // Profile at low load (paper §IV), then apply any user-pinned targets.
  ProfileResult profile =
      profile_workload(cfg->workload, cfg->nodes, cfg->target_mult);
  const int pinned =
      apply_target_overrides(*file_cfg, cfg->workload, &profile.targets);
  if (!quiet && pinned > 0) {
    std::printf("pinned targets for %d service(s) from the config file\n",
                pinned);
  }
  if (!quiet) {
    std::printf("low-load mean e2e: %s -> QoS %s\n",
                format_time(profile.low_load_mean_latency).c_str(),
                format_time(static_cast<SimTime>(
                                cfg->qos_mult *
                                static_cast<double>(profile.low_load_mean_latency)))
                    .c_str());
  }

  const ExperimentResult r = run_experiment(*cfg, profile);

  print_banner("results");
  TablePrinter table({"metric", "value"});
  table.add_row({"violation volume", fmt_double(r.load.violation_volume_ms_s, 3) + " ms*s"});
  table.add_row({"violation duration", fmt_double(100.0 * r.load.violation_duration_frac, 1) + "% of window"});
  table.add_row({"p50 latency", format_time(r.load.p50)});
  table.add_row({"p98 latency", format_time(r.load.p98)});
  table.add_row({"p99 latency", format_time(r.load.p99)});
  table.add_row({"throughput", fmt_double(r.load.throughput_rps, 0) + " rps"});
  table.add_row({"requests completed", std::to_string(r.load.completed)});
  table.add_row({"avg cores used", fmt_double(r.avg_cores, 2)});
  table.add_row({"energy", fmt_double(r.energy_joules, 1) + " J"});
  if (r.fr_packets > 0) {
    table.add_row({"fast-path packets inspected", std::to_string(r.fr_packets)});
    table.add_row({"fast-path violations", std::to_string(r.fr_violations)});
    table.add_row({"fast-path boosts", std::to_string(r.fr_boosts)});
  }
  if (!cfg->fault_plan.empty()) {
    table.add_row({"faults injected", r.faults.digest()});
    table.add_row({"client retries / dropped",
                   std::to_string(r.load.retries) + " / " +
                       std::to_string(r.load.dropped)});
    table.add_row({"app rpc retries / failures",
                   std::to_string(r.app_rpc_retries) + " / " +
                       std::to_string(r.app_rpc_failures)});
    table.add_row({"requests stranded", std::to_string(r.load.outstanding)});
    if (r.controller_ticks_stalled > 0) {
      table.add_row({"controller ticks stalled",
                     std::to_string(r.controller_ticks_stalled)});
    }
  }
  table.print();

  if (histogram) print_histogram(r.load);

  if (r.trace) {
    const TraceReport& tr = *r.trace;
    print_banner("trace");
    TablePrinter summary({"metric", "value"});
    summary.add_row({"requests recorded",
                     std::to_string(tr.stats.requests_recorded)});
    summary.add_row({"traces kept", std::to_string(tr.stats.requests_kept)});
    summary.add_row({"SLO violators kept",
                     std::to_string(tr.stats.slo_violators_kept)});
    summary.add_row({"spans", std::to_string(tr.stats.spans_recorded)});
    summary.add_row({"controller decisions",
                     std::to_string(tr.stats.decisions_recorded)});
    if (tr.stats.traces_evicted > 0) {
      summary.add_row({"traces evicted (ring full)",
                       std::to_string(tr.stats.traces_evicted)});
    }
    summary.print();

    std::printf("\nPer-service latency breakdown (kept traces):\n");
    breakdown_table(tr).print();

    std::printf("\nCritical paths of the slowest requests:\n");
    critical_path_table(tr, 3).print();

    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << chrome_trace_json(tr);
    out.close();
    std::printf(
        "\nwrote %s (load in Perfetto / chrome://tracing to inspect)\n",
        trace_path.c_str());
  }
  return 0;
}
