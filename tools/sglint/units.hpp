// sg-lint unit analyzer: flow-aware quantity/kind checking (the U rules).
//
// Where rules.hpp pattern-matches the token stream, this pass actually
// *understands* a useful fragment of C++: it builds a per-TU symbol table
// (local variables, function parameters, member variables seeded from the
// paired header, function return types) and evaluates expressions with a
// precedence parser, propagating a KIND for every sub-expression through a
// small lattice:
//
//     Unknown  — anything the analyzer cannot resolve; absorbs everything
//                (a deliberate false-positive firewall)
//     Scalar   — plain arithmetic (int/double/bool/size_t, unwrapped values)
//     Time     — the SimTime alias: a time quantity whose point-vs-duration
//                role is not expressed in the type (migration bridge);
//                participates in U2/U3/U4 but is exempt from U1
//     Point    — sg::TimePoint (absolute timestamp)
//     Dur      — sg::Duration (elapsed time)
//     Freq     — sg::Freq / FreqMhz
//     Energy   — sg::Energy
//
// Rules:
//   U1  TimePoint/Duration mixing outside the allowed algebra:
//       point-point -> duration, point+/-duration -> point are legal;
//       point+point, duration-point, point<op>duration comparisons, and
//       cross-kind assignment/initialization are findings.
//   U2  a raw integer literal (other than 0) assigned to, compared with, or
//       passed as a time-typed variable/parameter. Time values must be
//       built from unit literals (5_ms), named constants, or explicit
//       factories (Duration::ms(5)).
//   U3  implicit narrowing of a time/energy quantity into int/float
//       (initialization of a narrow arithmetic variable). Explicit escape
//       hatches — static_cast<..>, .ns(), .seconds() — are fine.
//   U4  arithmetic between dimensions outside the allowed table:
//       time x freq -> cycles and energy / time -> power are legal;
//       time x time, freq x freq, energy x freq, freq / time, ... are not.
//
// The allowed-ops table mirrors src/common/time.hpp exactly: what the
// strong types delete, the analyzer reports — including through aliases
// (SimTime, FreqMhz) that the compiler erases.
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace sglint {

struct UnitFinding {
  int line = 0;
  std::string rule;
  std::string message;
};

enum class Kind { kUnknown, kScalar, kTime, kPoint, kDur, kFreq, kEnergy };

inline const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kScalar: return "scalar";
    case Kind::kTime: return "time (SimTime)";
    case Kind::kPoint: return "TimePoint";
    case Kind::kDur: return "Duration";
    case Kind::kFreq: return "frequency";
    case Kind::kEnergy: return "energy";
    default: return "unknown";
  }
}

/// Evaluated value of a (sub)expression.
struct Value {
  Kind kind = Kind::kUnknown;
  bool lone_int_literal = false;  // a bare integer literal (possibly signed)
  bool zero = false;              // ... whose value is 0 (always permitted)
  int line = 0;
  std::string name;  // variable/spelling for diagnostics
};

class UnitAnalyzer {
 public:
  /// Collects declarations (members, function signatures) without checking
  /// — used to make the paired header's symbols visible when linting a
  /// .cpp, mirroring RuleEngine::seed_declarations.
  void seed_declarations(const LexResult& lex) {
    seeding_ = true;
    analyze(lex);
    seeding_ = false;
  }

  std::vector<UnitFinding> run(const LexResult& lex) {
    findings_.clear();
    analyze(lex);
    std::sort(findings_.begin(), findings_.end(),
              [](const UnitFinding& a, const UnitFinding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return findings_;
  }

 private:
  // ---- kind tables -------------------------------------------------------

  static Kind type_kind(const std::string& t) {
    static const std::map<std::string, Kind> kTypes = {
        {"TimePoint", Kind::kPoint}, {"Duration", Kind::kDur},
        {"SimTime", Kind::kTime},    {"Freq", Kind::kFreq},
        {"FreqMhz", Kind::kFreq},    {"Energy", Kind::kEnergy},
        {"int", Kind::kScalar},      {"long", Kind::kScalar},
        {"short", Kind::kScalar},    {"unsigned", Kind::kScalar},
        {"double", Kind::kScalar},   {"float", Kind::kScalar},
        {"bool", Kind::kScalar},     {"char", Kind::kScalar},
        {"size_t", Kind::kScalar},   {"ptrdiff_t", Kind::kScalar},
        {"int8_t", Kind::kScalar},   {"uint8_t", Kind::kScalar},
        {"int16_t", Kind::kScalar},  {"uint16_t", Kind::kScalar},
        {"int32_t", Kind::kScalar},  {"uint32_t", Kind::kScalar},
        {"int64_t", Kind::kScalar},  {"uint64_t", Kind::kScalar},
    };
    const auto it = kTypes.find(t);
    return it == kTypes.end() ? Kind::kUnknown : it->second;
  }

  static bool is_quantity_type(const std::string& t) {
    const Kind k = type_kind(t);
    return k != Kind::kUnknown && k != Kind::kScalar;
  }

  /// Narrow arithmetic types for U3 (int64/double hold a full quantity
  /// losslessly enough; int/float do not).
  static bool is_narrow_type(const std::string& t) {
    static const std::set<std::string> kNarrow = {
        "int",     "float",    "short",    "char",
        "unsigned", "int8_t",  "uint8_t",  "int16_t",
        "uint16_t", "int32_t", "uint32_t",
    };
    return kNarrow.count(t) != 0;
  }

  /// Named constants whose kind is known tree-wide (declared in
  /// common/time.hpp, used everywhere).
  static Kind builtin_value(const std::string& name) {
    static const std::map<std::string, Kind> kValues = {
        {"kNanosecond", Kind::kTime},  {"kMicrosecond", Kind::kTime},
        {"kMillisecond", Kind::kTime}, {"kSecond", Kind::kTime},
        {"kTimeInfinity", Kind::kTime},
    };
    const auto it = kValues.find(name);
    return it == kValues.end() ? Kind::kUnknown : it->second;
  }

  /// Static factories: "Type::fn" -> result kind.
  static Kind builtin_static(const std::string& qualified) {
    static const std::map<std::string, Kind> kStatics = {
        {"Duration::ns", Kind::kDur},       {"Duration::us", Kind::kDur},
        {"Duration::ms", Kind::kDur},       {"Duration::sec", Kind::kDur},
        {"Duration::seconds", Kind::kDur},  {"Duration::zero", Kind::kDur},
        {"Duration::infinity", Kind::kDur},
        {"TimePoint::at", Kind::kPoint},    {"TimePoint::origin", Kind::kPoint},
        {"TimePoint::infinity", Kind::kPoint},
        {"Freq::hz", Kind::kFreq},          {"Freq::mhz", Kind::kFreq},
        {"Freq::ghz", Kind::kFreq},
        {"Energy::joules", Kind::kEnergy},  {"Energy::zero", Kind::kEnergy},
    };
    const auto it = kStatics.find(qualified);
    return it == kStatics.end() ? Kind::kUnknown : it->second;
  }

  /// Free functions / methods with tree-wide known result kinds. Methods
  /// (called through . or ->) and free calls share this table; accessors
  /// like .ns() are the explicit unwrap escape hatch, so they yield Scalar.
  static bool builtin_call(const std::string& name, Kind* out) {
    static const std::map<std::string, Kind> kCalls = {
        {"now", Kind::kTime},          {"now_point", Kind::kPoint},
        {"since_origin", Kind::kDur},  {"wall", Kind::kDur},
        {"to_seconds", Kind::kScalar}, {"to_millis", Kind::kScalar},
        {"to_micros", Kind::kScalar},  {"from_seconds", Kind::kTime},
        {"ns", Kind::kScalar},         {"seconds", Kind::kScalar},
        {"millis", Kind::kScalar},     {"micros", Kind::kScalar},
        {"hz", Kind::kScalar},         {"mhz", Kind::kScalar},
        {"ghz", Kind::kScalar},        {"joules", Kind::kScalar},
    };
    const auto it = kCalls.find(name);
    if (it == kCalls.end()) return false;
    *out = it->second;
    return true;
  }

  static bool is_time_kind(Kind k) {
    return k == Kind::kTime || k == Kind::kPoint || k == Kind::kDur;
  }

  // ---- symbol table ------------------------------------------------------

  struct Scope {
    std::map<std::string, Kind> vars;
  };

  void declare(const std::string& name, Kind k) {
    if (scopes_.empty()) scopes_.push_back({});
    // Seeding writes into the global scope (members visible TU-wide).
    Scope& s = seeding_ ? scopes_.front() : scopes_.back();
    s.vars[name] = k;
  }

  Kind lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto v = it->vars.find(name);
      if (v != it->vars.end()) return v->second;
    }
    return builtin_value(name);
  }

  // ---- driver ------------------------------------------------------------

  void analyze(const LexResult& lex) {
    toks_ = &lex.tokens;
    if (!seeding_) {
      // Keep global scope (header seed) but drop any per-run residue.
      if (scopes_.empty()) scopes_.push_back({});
      scopes_.resize(1);
    } else if (scopes_.empty()) {
      scopes_.push_back({});
    }
    pending_params_.clear();
    std::size_t i = 0;
    const std::size_t n = toks_->size();
    while (i < n) {
      const std::string& t = (*toks_)[i].text;
      if (t == "{") {
        scopes_.push_back({});
        for (const auto& [pname, pkind] : pending_params_) {
          scopes_.back().vars[pname] = pkind;
        }
        pending_params_.clear();
        ++i;
        continue;
      }
      if (t == "}") {
        if (scopes_.size() > 1) scopes_.pop_back();
        pending_params_.clear();
        ++i;
        continue;
      }
      if (t == ";") {
        pending_params_.clear();  // the signature was a declaration
        ++i;
        continue;
      }
      // One statement fragment: up to the next ; { or } at any depth.
      std::size_t end = i;
      while (end < n && (*toks_)[end].text != ";" &&
             (*toks_)[end].text != "{" && (*toks_)[end].text != "}") {
        ++end;
      }
      pos_ = i;
      end_ = end;
      // Strip statement keywords that would otherwise read as primaries.
      while (pos_ < end_ && is_stmt_keyword((*toks_)[pos_].text)) ++pos_;
      while (pos_ < end_) {
        const std::size_t before = pos_;
        parse_expression(0);
        if (pos_ == before) ++pos_;  // always make progress
      }
      i = end;
    }
  }

  static bool is_stmt_keyword(const std::string& t) {
    static const std::set<std::string> kKw = {
        "return",   "case",     "goto",    "typedef", "using",
        "template", "typename", "public",  "private", "protected",
        "struct",   "class",    "enum",    "namespace",
        "else",     "do",       "break",   "continue", "default",
    };
    return kKw.count(t) != 0;
  }

  // ---- expression parser -------------------------------------------------

  const Token& tok(std::size_t i) const { return (*toks_)[i]; }
  bool at_end() const { return pos_ >= end_; }
  const std::string& cur() const { return tok(pos_).text; }
  int cur_line() const { return at_end() ? 0 : tok(pos_).line; }

  /// Binary operator precedence; assignment handled separately (lowest).
  static int bin_prec(const std::string& op) {
    if (op == "*" || op == "/" || op == "%") return 10;
    if (op == "+" || op == "-") return 9;
    if (op == "<<" || op == ">>") return 8;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "==" || op == "!=") return 6;
    if (op == "&") return 5;
    if (op == "^") return 4;
    if (op == "|") return 3;
    if (op == "&&") return 2;
    if (op == "||") return 1;
    return -1;
  }

  /// Peeks a (possibly two-token) operator at pos_ without consuming.
  std::string peek_op() const {
    if (at_end()) return "";
    const std::string& a = cur();
    const std::string b = pos_ + 1 < end_ ? tok(pos_ + 1).text : "";
    // Two-char operators arrive as single-char tokens from the lexer.
    if (a == "<" && b == "<") return "<<";
    if (a == ">" && b == ">") return ">>";
    if (a == "<" && b == "=") return "<=";
    if (a == ">" && b == "=") return ">=";
    if (a == "=" && b == "=") return "==";
    if (a == "!" && b == "=") return "!=";
    if (a == "&" && b == "&") return "&&";
    if (a == "|" && b == "|") return "||";
    if ((a == "+" || a == "-" || a == "*" || a == "/" || a == "%") && b == "=")
      return a + "=";
    return a;
  }

  void consume_op(const std::string& op) { pos_ += op.size() > 1 ? 2 : 1; }

  Value parse_expression(int min_prec) {
    Value lhs = parse_unary();
    for (;;) {
      if (at_end()) return lhs;
      const std::string op = peek_op();
      if (op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
          op == "%=") {
        if (min_prec > 0) return lhs;
        const int line = cur_line();
        consume_op(op);
        const Value rhs = parse_expression(0);
        check_assign(op, lhs, rhs, line);
        return lhs;
      }
      if (op == "?") {
        ++pos_;
        const Value a = parse_expression(0);
        if (!at_end() && cur() == ":") ++pos_;
        const Value b = parse_expression(0);
        lhs = Value{a.kind == b.kind ? a.kind : Kind::kUnknown, false, false,
                    lhs.line, lhs.name};
        continue;
      }
      const int prec = bin_prec(op);
      if (prec < min_prec || prec < 0) return lhs;
      if (op == "," || op == ")" || op == "]" || op == ":") return lhs;
      const int line = cur_line();
      consume_op(op);
      const Value rhs = parse_expression(prec + 1);
      lhs = combine(op, lhs, rhs, line);
    }
  }

  Value parse_unary() {
    bool negated = false;
    while (!at_end()) {
      const std::string& t = cur();
      if (t == "-") {
        negated = true;
        ++pos_;
        continue;
      }
      if (t == "+" || t == "!" || t == "~" || t == "*" || t == "&") {
        ++pos_;
        continue;
      }
      break;
    }
    (void)negated;  // -5 stays a lone literal; kind is unchanged by sign
    return parse_primary();
  }

  Value parse_primary() {
    if (at_end()) return {};
    const Token& t = tok(pos_);
    const char c0 = t.text.empty() ? '\0' : t.text[0];

    if (std::isdigit(static_cast<unsigned char>(c0))) {
      ++pos_;
      Value v;
      v.line = t.line;
      v.name = t.text;
      const bool is_float =
          t.text.find('.') != std::string::npos ||
          (t.text.find('e') != std::string::npos && t.text.rfind("0x", 0) != 0);
      // Unit suffix: the lexer splits `5_ms` into "5" + "_ms".
      if (!at_end() && is_time_suffix(cur())) {
        ++pos_;
        v.kind = Kind::kTime;
        return v;
      }
      v.kind = Kind::kScalar;
      if (!is_float) {
        v.lone_int_literal = true;
        v.zero = is_zero_literal(t.text);
      }
      return v;
    }

    if (t.text == "(") {
      ++pos_;
      Value inner = parse_expression(0);
      skip_to_close(")");
      inner.lone_int_literal = false;
      return inner;
    }
    if (t.text == "[") {  // lambda introducer / subscript fragment
      ++pos_;
      int depth = 1;
      while (!at_end() && depth > 0) {
        if (cur() == "[") ++depth;
        if (cur() == "]") --depth;
        ++pos_;
      }
      return {};
    }

    if (std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_') {
      return parse_identifier_chain();
    }

    ++pos_;  // unknown punctuation: consume and move on
    return {};
  }

  static bool is_time_suffix(const std::string& s) {
    return s == "_ns" || s == "_us" || s == "_ms" || s == "_s";
  }

  static bool is_zero_literal(const std::string& s) {
    for (char c : s) {
      if (c != '0' && c != '\'' && c != 'x' && c != 'X' && c != 'b' &&
          c != 'B' && c != 'u' && c != 'U' && c != 'l' && c != 'L') {
        return false;
      }
    }
    return true;
  }

  /// Consumes a balanced (...) starting AT the opening token, evaluating
  /// each top-level argument expression (so checks run inside call args).
  /// Returns the values of the top-level arguments.
  std::vector<Value> parse_call_args() {
    std::vector<Value> args;
    if (at_end() || cur() != "(") return args;
    ++pos_;  // '('
    if (!at_end() && cur() == ")") {
      ++pos_;
      return args;
    }
    for (;;) {
      args.push_back(parse_expression(0));
      if (at_end()) return args;
      if (cur() == "," || cur() == ";") {
        ++pos_;
        continue;
      }
      if (cur() == ")") {
        ++pos_;
        return args;
      }
      ++pos_;  // stray token inside args: skip
    }
  }

  void skip_to_close(const std::string& /*close*/) {
    int depth = 1;
    while (!at_end()) {
      const std::string& t = cur();
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") {
        if (--depth == 0) {
          ++pos_;
          return;
        }
      }
      ++pos_;
    }
  }

  /// Skips a balanced template argument list `<...>` if one plausibly
  /// starts at pos_; returns the collected type tokens.
  bool skip_template_args(std::vector<std::string>* out) {
    if (at_end() || cur() != "<") return false;
    std::size_t save = pos_;
    int depth = 0;
    while (!at_end()) {
      const std::string& t = cur();
      if (t == "<") ++depth;
      else if (t == ">") {
        if (--depth == 0) {
          ++pos_;
          return true;
        }
      } else if (t == ";" || t == "(" || t == "{") {
        pos_ = save;
        if (out) out->clear();
        return false;
      } else if (out && depth > 0) {
        out->push_back(t);
      }
      ++pos_;
    }
    pos_ = save;
    if (out) out->clear();
    return false;
  }

  /// Identifier chains: declarations, casts, factories, variables, calls.
  Value parse_identifier_chain() {
    const int line = cur_line();
    std::string first = cur();

    // explicit casts: static_cast<T>(expr)
    if (first == "static_cast" || first == "const_cast" ||
        first == "reinterpret_cast" || first == "dynamic_cast") {
      ++pos_;
      std::vector<std::string> targs;
      skip_template_args(&targs);
      Value v;
      v.line = line;
      v.kind = Kind::kUnknown;
      for (const std::string& a : targs) {
        const Kind k = type_kind(a);
        if (k != Kind::kUnknown) {
          v.kind = k;
          break;
        }
      }
      parse_call_args();  // still check inside the cast
      v.name = "cast";
      return v;
    }

    // skip the sg:: qualifier so sg::Duration reads like Duration
    if (first == "sg" && pos_ + 1 < end_ && tok(pos_ + 1).text == "::") {
      pos_ += 2;
      if (at_end()) return {};
      first = cur();
    }

    const Kind tk = type_kind(first);
    if (tk != Kind::kUnknown || first == "auto" || first == "const" ||
        first == "void") {
      return parse_declaration_or_construction(line);
    }

    // plain chain: a::b, a.b, a->b ... possibly ending in a call
    std::string prev_sep;
    std::string name = first;
    std::string qualifier;
    ++pos_;
    for (;;) {
      if (!at_end() && cur() == "::") {
        qualifier = name;
        prev_sep = "::";
        ++pos_;
        if (at_end()) return {};
        name = cur();
        ++pos_;
        continue;
      }
      if (!at_end() && (cur() == "." || cur() == "->")) {
        prev_sep = cur();
        ++pos_;
        if (at_end()) return {};
        qualifier.clear();
        name = cur();
        ++pos_;
        continue;
      }
      if (!at_end() && cur() == "[") {
        ++pos_;
        parse_expression(0);
        skip_to_close("]");
        continue;
      }
      if (!at_end() && cur() == "(") {
        const std::vector<Value> args = parse_call_args();
        Value v;
        v.line = line;
        v.name = name;
        Kind bk;
        if (!qualifier.empty() &&
            builtin_static(qualifier + "::" + name) != Kind::kUnknown) {
          v.kind = builtin_static(qualifier + "::" + name);
        } else if (builtin_call(name, &bk)) {
          v.kind = bk;
        } else if (const auto it = fn_return_.find(name);
                   it != fn_return_.end()) {
          v.kind = it->second;
        }
        check_call_args(name, args, line);
        // method chaining: .ns() etc on the result
        if (!at_end() && (cur() == "." || cur() == "->")) continue;
        return v;
      }
      break;
    }

    Value v;
    v.line = line;
    v.name = name;
    v.kind = lookup(name);
    return v;
  }

  /// After seeing a kind-carrying type name (or auto/const): this is either
  /// a declaration (`Duration d = ...`, function signature), an explicit
  /// construction (`Duration{...}`, `SimTime(...)`), or a qualified static
  /// call (`Duration::ms(..)`).
  Value parse_declaration_or_construction(int line) {
    // Collect decl prefix keywords and the type name.
    std::string type_name;
    while (!at_end()) {
      const std::string& t = cur();
      if (t == "const" || t == "constexpr" || t == "static" || t == "inline" ||
          t == "friend" || t == "mutable" || t == "volatile" ||
          t == "unsigned" || t == "signed" || t == "auto") {
        if (t == "auto" || t == "unsigned") type_name = t;
        ++pos_;
        continue;
      }
      if (t == "sg" && pos_ + 1 < end_ && tok(pos_ + 1).text == "::") {
        pos_ += 2;
        continue;
      }
      if (t == "std" && pos_ + 1 < end_ && tok(pos_ + 1).text == "::") {
        pos_ += 2;
        continue;
      }
      if (type_kind(t) != Kind::kUnknown || t == "void") {
        type_name = t;  // void: signature parsing still registers params
        ++pos_;
        break;
      }
      break;
    }
    if (type_name.empty()) return {};
    const Kind tkind = type_kind(type_name);

    // `Duration::ms(5)` — qualified static factory, not a declaration.
    if (!at_end() && cur() == "::") {
      ++pos_;
      if (at_end()) return {};
      const std::string member = cur();
      ++pos_;
      const Kind k = builtin_static(type_name + "::" + member);
      const std::vector<Value> args = parse_call_args();
      check_call_args(member, args, line);
      Value v;
      v.line = line;
      v.kind = k;
      v.name = type_name + "::" + member;
      return v;
    }
    // `Duration{expr}` / `Duration(expr)` — explicit construction.
    if (!at_end() && cur() == "(") {
      parse_call_args();
      Value v;
      v.line = line;
      v.kind = tkind;
      v.name = type_name;
      return v;
    }
    // (brace construction `Duration{expr}` is cut by the fragmenter at '{';
    //  the declaration below handles `Duration d{...}` without the init.)

    // declarator: [*&]* name
    while (!at_end() && (cur() == "*" || cur() == "&" || cur() == "const")) {
      ++pos_;
    }
    if (at_end()) return {};
    const std::string name = cur();
    if (!(std::isalpha(static_cast<unsigned char>(name[0])) ||
          name[0] == '_')) {
      return Value{tkind, false, false, line, type_name};
    }
    ++pos_;

    // function signature: `Kind name(params...)`
    if (!at_end() && cur() == "(") {
      parse_signature(name, tkind);
      Value v;
      v.line = line;
      v.kind = Kind::kUnknown;
      v.name = name;
      return v;
    }

    // variable declaration
    Value v;
    v.line = line;
    v.kind = tkind;
    v.name = name;
    if (!at_end() && cur() == "=") {
      ++pos_;
      const Value init = parse_expression(0);
      if (type_name == "auto") {
        v.kind = init.kind;  // dataflow: auto adopts the initializer's kind
      } else {
        check_init(type_name, tkind, init, line, name);
      }
    }
    declare(name, v.kind);
    // `SimTime a = 0, b = 0;` — continue through the comma chain.
    while (!at_end() && cur() == ",") {
      ++pos_;
      while (!at_end() && (cur() == "*" || cur() == "&")) ++pos_;
      if (at_end()) break;
      const std::string extra = cur();
      if (!(std::isalpha(static_cast<unsigned char>(extra[0])) ||
            extra[0] == '_')) {
        break;
      }
      ++pos_;
      Kind ek = tkind;
      if (!at_end() && cur() == "=") {
        ++pos_;
        const Value init = parse_expression(0);
        if (type_name == "auto") ek = init.kind;
        else check_init(type_name, tkind, init, line, extra);
      }
      declare(extra, ek);
    }
    return v;
  }

  /// Parses `(T1 p1, T2 p2, ...)` after a function name: records the return
  /// kind, parameter kinds (for U2 argument checks), and stages parameter
  /// names for the body scope.
  void parse_signature(const std::string& name, Kind return_kind) {
    std::vector<Kind> params;
    std::vector<std::pair<std::string, Kind>> named;
    ++pos_;  // '('
    int depth = 1;
    Kind cur_kind = Kind::kUnknown;
    std::string last_ident;
    while (!at_end() && depth > 0) {
      const std::string& t = cur();
      if (t == "(") ++depth;
      else if (t == ")") {
        if (--depth == 0) break;
      } else if (t == "<") {
        if (!skip_template_args(nullptr)) ++pos_;  // lone '<': comparison
        continue;
      } else if (t == "," && depth == 1) {
        params.push_back(cur_kind);
        if (!last_ident.empty()) named.push_back({last_ident, cur_kind});
        cur_kind = Kind::kUnknown;
        last_ident.clear();
      } else if (type_kind(t) != Kind::kUnknown && cur_kind == Kind::kUnknown) {
        cur_kind = type_kind(t);
      } else if (!t.empty() &&
                 (std::isalpha(static_cast<unsigned char>(t[0])) ||
                  t[0] == '_') &&
                 t != "const" && t != "sg" && t != "std") {
        last_ident = t;
      }
      ++pos_;
    }
    if (!at_end()) ++pos_;  // ')'
    if (cur_kind != Kind::kUnknown || !last_ident.empty()) {
      params.push_back(cur_kind);
      if (!last_ident.empty()) named.push_back({last_ident, cur_kind});
    }
    // Record return/param kinds; conflicting overloads disable the entry.
    if (const auto it = fn_return_.find(name); it != fn_return_.end()) {
      if (it->second != return_kind) it->second = Kind::kUnknown;
    } else {
      fn_return_[name] = return_kind;
    }
    if (const auto it = fn_params_.find(name); it != fn_params_.end()) {
      if (it->second != params) {  // true overload: disable the U2 check
        fn_params_.erase(it);
        ambiguous_fns_.insert(name);
      }
    } else if (ambiguous_fns_.count(name) == 0) {
      fn_params_[name] = params;
    }
    pending_params_ = std::move(named);
  }

  // ---- checks ------------------------------------------------------------

  void add(int line, const char* rule, const std::string& msg) {
    if (!seeding_) findings_.push_back({line, rule, msg});
  }

  /// U2: literal arguments against known time-typed parameters.
  void check_call_args(const std::string& fn, const std::vector<Value>& args,
                       int line) {
    const auto it = fn_params_.find(fn);
    if (it == fn_params_.end() || ambiguous_fns_.count(fn) != 0) return;
    const std::vector<Kind>& params = it->second;
    for (std::size_t i = 0; i < args.size() && i < params.size(); ++i) {
      if (is_time_kind(params[i]) && args[i].lone_int_literal &&
          !args[i].zero) {
        add(line, "U2",
            "raw integer literal '" + args[i].name +
                "' passed as time-typed parameter of '" + fn +
                "': use a unit literal (5_ms) or an explicit factory");
      }
    }
  }

  void check_init(const std::string& type_name, Kind tkind, const Value& init,
                  int line, const std::string& var) {
    // U3: time/energy quantity silently squeezed into a narrow type.
    if (is_narrow_type(type_name) &&
        (is_time_kind(init.kind) || init.kind == Kind::kEnergy)) {
      add(line, "U3",
          "implicit narrowing of " + std::string(kind_name(init.kind)) +
              " into '" + type_name + " " + var +
              "': unwrap explicitly (.ns(), static_cast)");
      return;
    }
    // U1: TimePoint <- Duration or Duration <- TimePoint.
    if ((tkind == Kind::kPoint && init.kind == Kind::kDur) ||
        (tkind == Kind::kDur && init.kind == Kind::kPoint)) {
      add(line, "U1",
          "initializing " + std::string(kind_name(tkind)) + " '" + var +
              "' from a " + kind_name(init.kind) +
              ": timestamps and durations are distinct kinds");
      return;
    }
    // U2: raw nonzero literal into a time-typed variable.
    if (is_time_kind(tkind) && init.lone_int_literal && !init.zero) {
      add(line, "U2",
          "raw integer literal '" + init.name + "' initializes time-typed '" +
              var + "': use a unit literal (5_ms) or a named constant");
    }
  }

  void check_assign(const std::string& op, const Value& lhs, const Value& rhs,
                    int line) {
    if (op == "=") {
      if ((lhs.kind == Kind::kPoint && rhs.kind == Kind::kDur) ||
          (lhs.kind == Kind::kDur && rhs.kind == Kind::kPoint)) {
        add(line, "U1",
            "assigning a " + std::string(kind_name(rhs.kind)) + " to " +
                kind_name(lhs.kind) + " '" + lhs.name +
                "': timestamps and durations are distinct kinds");
        return;
      }
      if (is_time_kind(lhs.kind) && rhs.lone_int_literal && !rhs.zero) {
        add(line, "U2",
            "raw integer literal '" + rhs.name +
                "' assigned to time-typed '" + lhs.name +
                "': use a unit literal (5_ms) or a named constant");
      }
      return;
    }
    if (op == "+=" || op == "-=") {
      // point += duration is the only legal mixed compound op.
      if (lhs.kind == Kind::kPoint && rhs.kind == Kind::kPoint) {
        add(line, "U1",
            "'" + op + "' between two TimePoints: adding timestamps is "
            "meaningless (subtract them to get a Duration)");
        return;
      }
      if (lhs.kind == Kind::kDur && rhs.kind == Kind::kPoint) {
        add(line, "U1",
            "'" + op + "' of a TimePoint into Duration '" + lhs.name +
                "': durations accumulate durations");
        return;
      }
      if (is_time_kind(lhs.kind) && rhs.lone_int_literal && !rhs.zero) {
        add(line, "U2",
            "raw integer literal '" + rhs.name + "' folded into time-typed '" +
                lhs.name + "': use a unit literal or a named constant");
      }
      return;
    }
    if (op == "*=" || op == "/=") {
      if (is_time_kind(lhs.kind) && is_time_kind(rhs.kind)) {
        add(line, "U4",
            "'" + op + "' between two time quantities: time x time is not a "
            "tracked dimension");
      }
    }
  }

  Value combine(const std::string& op, const Value& a, const Value& b,
                int line) {
    Value out;
    out.line = line;
    const Kind ka = a.kind;
    const Kind kb = b.kind;

    if (op == "+" || op == "-") {
      out.kind = combine_additive(op, a, b, line);
      return out;
    }
    if (op == "*") {
      out.kind = combine_multiply(a, b, line);
      return out;
    }
    if (op == "/") {
      out.kind = combine_divide(a, b, line);
      return out;
    }
    if (op == "<" || op == ">" || op == "<=" || op == ">=" || op == "==" ||
        op == "!=") {
      // U1: ordering a timestamp against a duration.
      if ((ka == Kind::kPoint && kb == Kind::kDur) ||
          (ka == Kind::kDur && kb == Kind::kPoint)) {
        add(line, "U1",
            "comparing a TimePoint with a Duration: convert explicitly "
            "(point - origin, or anchor the duration)");
      } else if (is_time_kind(ka) && b.lone_int_literal && !b.zero) {
        add(line, "U2",
            "time-typed '" + a.name + "' compared with raw literal '" +
                b.name + "': use a unit literal (5_ms) or a named constant");
      } else if (is_time_kind(kb) && a.lone_int_literal && !a.zero) {
        add(line, "U2",
            "raw literal '" + a.name + "' compared with time-typed '" +
                b.name + "': use a unit literal (5_ms) or a named constant");
      }
      out.kind = Kind::kScalar;
      return out;
    }
    out.kind = Kind::kUnknown;
    return out;
  }

  Kind combine_additive(const std::string& op, const Value& a, const Value& b,
                        int line) {
    const Kind ka = a.kind;
    const Kind kb = b.kind;
    if (ka == Kind::kUnknown || kb == Kind::kUnknown) return Kind::kUnknown;
    // SimTime bridges: unknown point-vs-duration role, U1-exempt.
    if (ka == Kind::kTime && is_time_kind(kb)) return Kind::kTime;
    if (kb == Kind::kTime && is_time_kind(ka)) return Kind::kTime;
    if (ka == Kind::kPoint && kb == Kind::kPoint) {
      if (op == "-") return Kind::kDur;  // point - point -> duration
      add(line, "U1",
          "adding two TimePoints: timestamps don't add (subtract them to "
          "get a Duration)");
      return Kind::kUnknown;
    }
    if (ka == Kind::kPoint && kb == Kind::kDur) return Kind::kPoint;
    if (ka == Kind::kDur && kb == Kind::kPoint) {
      if (op == "+") return Kind::kPoint;  // dur + point -> point
      add(line, "U1",
          "subtracting a TimePoint from a Duration: reverse the operands "
          "(point - point) or anchor the duration");
      return Kind::kUnknown;
    }
    if (ka == Kind::kDur && kb == Kind::kDur) return Kind::kDur;
    if (ka == kb) return ka;  // freq+freq, energy+energy, scalar+scalar
    if ((ka == Kind::kScalar && is_dimensioned(kb)) ||
        (kb == Kind::kScalar && is_dimensioned(ka))) {
      // scalar + quantity: numeric literals against SimTime are pervasive
      // and legal (it IS an integer); strong kinds don't get here because
      // their operators reject it at compile time. Stay quiet, absorb.
      return is_dimensioned(ka) ? ka : kb;
    }
    add(line, "U4",
        std::string("'") + op + "' between " + kind_name(ka) + " and " +
            kind_name(kb) + ": dimensions don't match");
    return Kind::kUnknown;
  }

  static bool is_dimensioned(Kind k) {
    return is_time_kind(k) || k == Kind::kFreq || k == Kind::kEnergy;
  }

  Kind combine_multiply(const Value& a, const Value& b, int line) {
    const Kind ka = a.kind;
    const Kind kb = b.kind;
    if (ka == Kind::kUnknown || kb == Kind::kUnknown) return Kind::kUnknown;
    if (ka == Kind::kScalar && kb == Kind::kScalar) return Kind::kScalar;
    if (ka == Kind::kScalar) return kb;  // scalar scaling preserves kind
    if (kb == Kind::kScalar) return ka;
    // freq x time -> cycles (dimensionless), either order.
    if ((ka == Kind::kFreq && is_time_kind(kb)) ||
        (is_time_kind(ka) && kb == Kind::kFreq)) {
      return Kind::kScalar;
    }
    add(line, "U4",
        std::string("multiplying ") + kind_name(ka) + " by " + kind_name(kb) +
            ": not in the allowed dimension table (freq x time is the only "
            "legal quantity product)");
    return Kind::kUnknown;
  }

  Kind combine_divide(const Value& a, const Value& b, int line) {
    const Kind ka = a.kind;
    const Kind kb = b.kind;
    if (ka == Kind::kUnknown || kb == Kind::kUnknown) return Kind::kUnknown;
    if (kb == Kind::kScalar) return ka;  // quantity / scalar
    if (is_time_kind(ka) && is_time_kind(kb)) return Kind::kScalar;  // ratio
    if (ka == Kind::kEnergy && is_time_kind(kb)) return Kind::kScalar;  // W
    if (ka == Kind::kEnergy && kb == Kind::kEnergy) return Kind::kScalar;
    if (ka == Kind::kFreq && kb == Kind::kFreq) return Kind::kScalar;
    add(line, "U4",
        std::string("dividing ") + kind_name(ka) + " by " + kind_name(kb) +
            ": not in the allowed dimension table (time/time, energy/time, "
            "energy/energy, freq/freq)");
    return Kind::kUnknown;
  }

  // ---- state -------------------------------------------------------------

  const std::vector<Token>* toks_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  bool seeding_ = false;
  std::vector<Scope> scopes_;
  std::map<std::string, Kind> fn_return_;
  std::map<std::string, std::vector<Kind>> fn_params_;
  std::set<std::string> ambiguous_fns_;
  std::vector<std::pair<std::string, Kind>> pending_params_;
  std::vector<UnitFinding> findings_;
};

}  // namespace sglint
