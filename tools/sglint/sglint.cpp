// sg-lint: the project's determinism firewall, static half.
//
// Walks C++ sources and enforces the invariants every SurgeGuard result
// rests on — bit-reproducible runs for a fixed seed — as named, suppressible
// rules (see rules.hpp for the rule table). The compile-time half is
// src/common/poison.hpp, which makes the D2 symbols fail the build outright;
// sg-lint covers what the preprocessor cannot see (iteration order, include
// hygiene, allocation discipline) and reports precise lines.
//
// Usage:
//   sglint [--machine] [--selftest] <file-or-dir>...
//
//   default     lint the given paths; exit 1 when any unsuppressed finding
//               remains. Directories are walked recursively; directories
//               named `sglint_fixtures`, `build`, or starting with '.' are
//               skipped unless passed explicitly.
//   --machine   one finding per line as `path:line:RULE` (for diffing
//               against expected-output files).
//   --selftest  fixture mode: findings must match the `sglint: expect(R)`
//               annotations in the files exactly (rule id + line), clean
//               files must stay clean. Exit 0 only on an exact match.
//
// The tool intentionally has no dependency on the simulator libraries: it
// must build and run even when src/ itself is broken.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "sglint_fixtures" || name == "build" ||
         (!name.empty() && name[0] == '.');
}

void collect_files(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_regular_file(root)) {
    if (has_cxx_extension(root)) out->push_back(root);
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "sglint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(root)) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& e : entries) {
    if (fs::is_directory(e)) {
      if (!skip_directory(e)) collect_files(e, out);
    } else if (has_cxx_extension(e)) {
      out->push_back(e);
    }
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::cerr << "sglint: cannot read " << p << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Path as reported in findings and used for path-scoped rules: relative to
/// the deepest ancestor that contains a `src` or `tests` directory (the repo
/// root), falling back to the path as given.
std::string relative_display_path(const fs::path& p) {
  const fs::path abs = fs::weakly_canonical(p);
  for (fs::path a = abs.parent_path(); !a.empty() && a != a.root_path();
       a = a.parent_path()) {
    if (fs::exists(a / "src") && fs::exists(a / "ROADMAP.md")) {
      return fs::relative(abs, a).generic_string();
    }
  }
  return p.generic_string();
}

struct FileReport {
  std::string display_path;
  std::vector<sglint::Finding> findings;
  std::vector<sglint::Directive> expects;
};

FileReport lint_file(const fs::path& path) {
  FileReport report;
  report.display_path = relative_display_path(path);
  const std::string src = read_file(path);
  sglint::Lexer lexer(src);
  const sglint::LexResult lex = lexer.run();
  sglint::RuleEngine engine;
  // Data members are declared in the paired header and iterated in the
  // .cpp: seed the declaration pass from the same-stem sibling header so
  // D1 sees across that boundary.
  if (path.extension() == ".cpp") {
    for (const char* ext : {".hpp", ".h"}) {
      const fs::path header = fs::path(path).replace_extension(ext);
      if (fs::is_regular_file(header)) {
        const std::string hdr_src = read_file(header);
        sglint::Lexer hdr_lexer(hdr_src);
        const sglint::LexResult hdr_lex = hdr_lexer.run();
        engine.seed_declarations(hdr_lex);
        break;
      }
    }
  }
  report.findings = engine.run(report.display_path, lex);
  for (const sglint::Directive& d : sglint::parse_directives(lex.comments)) {
    if (d.kind == "expect") report.expects.push_back(d);
  }
  return report;
}

int run_lint(const std::vector<fs::path>& files, bool machine) {
  std::size_t total = 0;
  for (const fs::path& f : files) {
    const FileReport report = lint_file(f);
    for (const sglint::Finding& fi : report.findings) {
      ++total;
      if (machine) {
        std::cout << fi.file << ":" << fi.line << ":" << fi.rule << "\n";
      } else {
        std::cout << fi.file << ":" << fi.line << ": [" << fi.rule << "] "
                  << fi.message << "\n";
      }
    }
  }
  if (!machine) {
    if (total == 0) {
      std::cout << "sglint: " << files.size() << " files clean\n";
    } else {
      std::cout << "sglint: " << total << " finding(s) across "
                << files.size() << " files\n";
    }
  }
  return total == 0 ? 0 : 1;
}

/// Fixture mode: every finding must be announced by an expect() directive on
/// its line, and every expect() must be hit — exact (line, rule) multiset
/// equality per file.
int run_selftest(const std::vector<fs::path>& files) {
  int mismatches = 0;
  std::size_t expected_total = 0;
  for (const fs::path& f : files) {
    const FileReport report = lint_file(f);
    std::multiset<std::pair<int, std::string>> want;
    for (const sglint::Directive& d : report.expects) {
      for (const std::string& r : d.rules) {
        want.insert({d.target_line, r});
        ++expected_total;
      }
    }
    std::multiset<std::pair<int, std::string>> got;
    for (const sglint::Finding& fi : report.findings) {
      got.insert({fi.line, fi.rule});
    }
    for (const auto& [line, rule] : want) {
      const auto it = got.find({line, rule});
      if (it != got.end()) {
        got.erase(it);
        continue;
      }
      ++mismatches;
      std::cout << report.display_path << ":" << line << ": MISSING expected "
                << rule << " finding\n";
    }
    for (const auto& [line, rule] : got) {
      ++mismatches;
      std::cout << report.display_path << ":" << line << ": UNEXPECTED "
                << rule << " finding\n";
    }
  }
  if (mismatches == 0) {
    std::cout << "sglint selftest: " << files.size() << " fixture files, "
              << expected_total << " expected findings, all matched\n";
    return 0;
  }
  std::cout << "sglint selftest: " << mismatches << " mismatch(es)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool machine = false;
  bool selftest = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      machine = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sglint [--machine] [--selftest] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sglint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: sglint [--machine] [--selftest] <file-or-dir>...\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const fs::path& r : roots) collect_files(r, &files);
  if (files.empty()) {
    std::cerr << "sglint: no C++ sources under the given paths\n";
    return 2;
  }
  return selftest ? run_selftest(files) : run_lint(files, machine);
}
