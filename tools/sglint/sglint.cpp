// sg-lint: the project's determinism firewall, static half.
//
// Walks C++ sources and enforces the invariants every SurgeGuard result
// rests on — bit-reproducible runs for a fixed seed — as named, suppressible
// rules (see rules.hpp for the rule table). The compile-time half is
// src/common/poison.hpp, which makes the D2 symbols fail the build outright;
// sg-lint covers what the preprocessor cannot see (iteration order, include
// hygiene, allocation discipline) and reports precise lines.
//
// Usage:
//   sglint [--machine] [--selftest] [--fix [--dry-run]] <file-or-dir>...
//
//   default     lint the given paths; exit 1 when any unsuppressed finding
//               remains. Directories are walked recursively; directories
//               named `sglint_fixtures`, `sglint_fixable`, `build`, or
//               starting with '.' are skipped unless passed explicitly.
//   --machine   one finding per line as `path:line:rule:message`, sorted
//               by (path, line, rule) — a stable format for golden files
//               and editor integrations (pinned by sglint_machine_golden).
//   --selftest  fixture mode: findings must match the `sglint: expect(R)`
//               annotations in the files exactly (rule id + line), clean
//               files must stay clean. Exit 0 only on an exact match.
//   --fix       apply mechanical fixes in place: H1 own-header reordering
//               (moves the own header to the top of the include block) and
//               directive normalization (`allow (D1)` -> `allow(D1)`,
//               lowercase rule ids uppercased — malformed spellings the
//               parser would otherwise silently ignore). With --dry-run,
//               print the would-be changes as a diff and write nothing.
//
// The tool intentionally has no dependency on the simulator libraries: it
// must build and run even when src/ itself is broken.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "sglint_fixtures" || name == "sglint_fixable" ||
         name == "build" || (!name.empty() && name[0] == '.');
}

void collect_files(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_regular_file(root)) {
    if (has_cxx_extension(root)) out->push_back(root);
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "sglint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(root)) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& e : entries) {
    if (fs::is_directory(e)) {
      if (!skip_directory(e)) collect_files(e, out);
    } else if (has_cxx_extension(e)) {
      out->push_back(e);
    }
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::cerr << "sglint: cannot read " << p << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Path as reported in findings and used for path-scoped rules: relative to
/// the deepest ancestor that contains a `src` or `tests` directory (the repo
/// root), falling back to the path as given.
std::string relative_display_path(const fs::path& p) {
  const fs::path abs = fs::weakly_canonical(p);
  for (fs::path a = abs.parent_path(); !a.empty() && a != a.root_path();
       a = a.parent_path()) {
    if (fs::exists(a / "src") && fs::exists(a / "ROADMAP.md")) {
      return fs::relative(abs, a).generic_string();
    }
  }
  return p.generic_string();
}

struct FileReport {
  std::string display_path;
  std::vector<sglint::Finding> findings;
  std::vector<sglint::Directive> expects;
};

FileReport lint_file(const fs::path& path) {
  FileReport report;
  report.display_path = relative_display_path(path);
  const std::string src = read_file(path);
  sglint::Lexer lexer(src);
  const sglint::LexResult lex = lexer.run();
  sglint::RuleEngine engine;
  // Data members are declared in the paired header and iterated in the
  // .cpp: seed the declaration pass from the same-stem sibling header so
  // D1 sees across that boundary.
  if (path.extension() == ".cpp") {
    for (const char* ext : {".hpp", ".h"}) {
      const fs::path header = fs::path(path).replace_extension(ext);
      if (fs::is_regular_file(header)) {
        const std::string hdr_src = read_file(header);
        sglint::Lexer hdr_lexer(hdr_src);
        const sglint::LexResult hdr_lex = hdr_lexer.run();
        engine.seed_declarations(hdr_lex);
        break;
      }
    }
  }
  report.findings = engine.run(report.display_path, lex);
  for (const sglint::Directive& d : sglint::parse_directives(lex.comments)) {
    if (d.kind == "expect") report.expects.push_back(d);
  }
  return report;
}

int run_lint(const std::vector<fs::path>& files, bool machine) {
  std::vector<sglint::Finding> all;
  for (const fs::path& f : files) {
    FileReport report = lint_file(f);
    for (sglint::Finding& fi : report.findings) all.push_back(std::move(fi));
  }
  if (machine) {
    // Pinned machine format: `path:line:rule:message`, globally sorted by
    // (path, line, rule, message) so output is diffable against goldens.
    std::sort(all.begin(), all.end(),
              [](const sglint::Finding& a, const sglint::Finding& b) {
                return std::tie(a.file, a.line, a.rule, a.message) <
                       std::tie(b.file, b.line, b.rule, b.message);
              });
    for (const sglint::Finding& fi : all) {
      std::cout << fi.file << ":" << fi.line << ":" << fi.rule << ":"
                << fi.message << "\n";
    }
  } else {
    for (const sglint::Finding& fi : all) {
      std::cout << fi.file << ":" << fi.line << ": [" << fi.rule << "] "
                << fi.message << "\n";
    }
    if (all.empty()) {
      std::cout << "sglint: " << files.size() << " files clean\n";
    } else {
      std::cout << "sglint: " << all.size() << " finding(s) across "
                << files.size() << " files\n";
    }
  }
  return all.empty() ? 0 : 1;
}

// --- --fix: mechanical repairs -------------------------------------------

std::vector<std::string> split_lines(const std::string& src) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : src) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Normalizes sglint directive spelling on one line: `allow (D1)` ->
/// `allow(D1)` and lowercase rule ids uppercased — both spellings the
/// directive parser silently ignores, turning an intended suppression into
/// a no-op. Returns true if the line changed.
bool fix_directive_spelling(std::string* line) {
  const std::size_t tag = line->find("sglint:");
  if (tag == std::string::npos) return false;
  const std::string before = *line;
  std::string& s = *line;
  for (const char* kw : {"allow", "expect"}) {
    const std::size_t kwlen = std::string(kw).size();
    std::size_t i = tag;
    while ((i = s.find(kw, i)) != std::string::npos) {
      std::size_t j = i + kwlen;
      // collapse spaces between the keyword and '('
      std::size_t k = j;
      while (k < s.size() && s[k] == ' ') ++k;
      if (k < s.size() && s[k] == '(' && k > j) {
        s.erase(j, k - j);
      }
      // uppercase the rule list inside the parens
      if (j < s.size() && s[j] == '(') {
        for (std::size_t r = j + 1; r < s.size() && s[r] != ')'; ++r) {
          s[r] = static_cast<char>(
              std::toupper(static_cast<unsigned char>(s[r])));
        }
      }
      i = j;
    }
  }
  return s != before;
}

bool is_include_line(const std::string& line, std::string* target,
                     bool* quoted) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, 8, "#include") != 0) return false;
  i += 8;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) return false;
  const char open = line[i];
  const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return false;
  const std::size_t end = line.find(close, i + 1);
  if (end == std::string::npos) return false;
  *target = line.substr(i + 1, end - i - 1);
  *quoted = open == '"';
  return true;
}

/// H1 repair: if the .cpp's own header is included but not first, move its
/// include line to the top of the include block. Returns true on change.
bool fix_own_header_order(const fs::path& path,
                          std::vector<std::string>* lines) {
  if (path.extension() != ".cpp") return false;
  const std::string stem = path.stem().string();
  std::size_t first_include = lines->size();
  std::size_t own_include = lines->size();
  for (std::size_t i = 0; i < lines->size(); ++i) {
    std::string target;
    bool quoted = false;
    if (!is_include_line((*lines)[i], &target, &quoted)) continue;
    if (first_include == lines->size()) first_include = i;
    std::string base = target;
    const std::size_t s = base.find_last_of('/');
    if (s != std::string::npos) base = base.substr(s + 1);
    if (quoted && (base == stem + ".hpp" || base == stem + ".h")) {
      own_include = i;
      break;
    }
  }
  if (own_include >= lines->size() || own_include <= first_include) {
    return false;
  }
  const std::string own = (*lines)[own_include];
  lines->erase(lines->begin() + static_cast<std::ptrdiff_t>(own_include));
  lines->insert(lines->begin() + static_cast<std::ptrdiff_t>(first_include),
                own);
  return true;
}

int run_fix(const std::vector<fs::path>& files, bool dry_run) {
  std::size_t files_changed = 0;
  for (const fs::path& f : files) {
    const std::string src = read_file(f);
    std::vector<std::string> lines = split_lines(src);
    const std::vector<std::string> original = lines;
    bool changed = false;
    for (std::string& line : lines) {
      changed |= fix_directive_spelling(&line);
    }
    changed |= fix_own_header_order(f, &lines);
    if (!changed) continue;
    ++files_changed;
    const std::string display = relative_display_path(f);
    if (dry_run) {
      // Minimal line diff: pair off by index where counts match (they
      // always do here — both fixes preserve the line count).
      for (std::size_t i = 0; i < lines.size() && i < original.size(); ++i) {
        if (lines[i] != original[i]) {
          std::cout << display << ":" << (i + 1) << ": - " << original[i]
                    << "\n";
          std::cout << display << ":" << (i + 1) << ": + " << lines[i]
                    << "\n";
        }
      }
    } else {
      std::ofstream out(f, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "sglint: cannot write " << f << "\n";
        return 2;
      }
      out << join_lines(lines);
      std::cout << "sglint: fixed " << display << "\n";
    }
  }
  std::cout << "sglint: " << (dry_run ? "would fix " : "fixed ")
            << files_changed << " file(s)\n";
  return 0;
}

/// Fixture mode: every finding must be announced by an expect() directive on
/// its line, and every expect() must be hit — exact (line, rule) multiset
/// equality per file.
int run_selftest(const std::vector<fs::path>& files) {
  int mismatches = 0;
  std::size_t expected_total = 0;
  for (const fs::path& f : files) {
    const FileReport report = lint_file(f);
    std::multiset<std::pair<int, std::string>> want;
    for (const sglint::Directive& d : report.expects) {
      for (const std::string& r : d.rules) {
        want.insert({d.target_line, r});
        ++expected_total;
      }
    }
    std::multiset<std::pair<int, std::string>> got;
    for (const sglint::Finding& fi : report.findings) {
      got.insert({fi.line, fi.rule});
    }
    for (const auto& [line, rule] : want) {
      const auto it = got.find({line, rule});
      if (it != got.end()) {
        got.erase(it);
        continue;
      }
      ++mismatches;
      std::cout << report.display_path << ":" << line << ": MISSING expected "
                << rule << " finding\n";
    }
    for (const auto& [line, rule] : got) {
      ++mismatches;
      std::cout << report.display_path << ":" << line << ": UNEXPECTED "
                << rule << " finding\n";
    }
  }
  if (mismatches == 0) {
    std::cout << "sglint selftest: " << files.size() << " fixture files, "
              << expected_total << " expected findings, all matched\n";
    return 0;
  }
  std::cout << "sglint selftest: " << mismatches << " mismatch(es)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool machine = false;
  bool selftest = false;
  bool fix = false;
  bool dry_run = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      machine = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sglint [--machine] [--selftest] "
                   "[--fix [--dry-run]] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sglint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty() || (dry_run && !fix)) {
    std::cerr << "usage: sglint [--machine] [--selftest] "
                 "[--fix [--dry-run]] <file-or-dir>...\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const fs::path& r : roots) collect_files(r, &files);
  if (files.empty()) {
    std::cerr << "sglint: no C++ sources under the given paths\n";
    return 2;
  }
  if (fix) return run_fix(files, dry_run);
  return selftest ? run_selftest(files) : run_lint(files, machine);
}
