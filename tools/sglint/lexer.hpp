// sg-lint lexer: a minimal, dependency-free C++ tokenizer.
//
// The rules (rules.hpp) operate on a token stream with comments, string
// literals, and char literals stripped, so a banned identifier inside a
// string or a comment can never produce a false positive. Comments are kept
// on the side: they carry the `sglint:` control directives (allow/expect).
//
// This is deliberately NOT a C++ parser. Every rule sg-lint enforces is
// expressible over tokens plus a little local context (balanced template
// brackets, "previous token"), which keeps the tool self-contained — no
// libclang, no compile database — and fast enough to run on every build.
#pragma once

#include <cctype>
#include <string>
#include <vector>

namespace sglint {

struct Token {
  std::string text;
  int line = 0;
};

/// A comment, with enough position info to decide which source line its
/// directives apply to: a trailing comment governs its own line, a
/// whole-line comment governs the next line.
struct Comment {
  std::string text;
  int line = 0;
  bool code_before = false;  // true when code precedes it on the same line
};

/// One #include directive, in file order.
struct Include {
  std::string target;  // path between the delimiters
  bool quoted = false;  // "..." vs <...>
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult run() {
    LexResult out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_had_code_ = false;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        out.comments.push_back(line_comment());
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        out.comments.push_back(block_comment());
        continue;
      }
      if (c == '#' && !line_had_code_) {
        preprocessor_line(out);
        continue;
      }
      if (c == '"') {
        if (!out.tokens.empty() && out.tokens.back().text == "R" &&
            out.tokens.back().line == line_) {
          raw_string();
        } else {
          string_literal();
        }
        line_had_code_ = true;
        continue;
      }
      if (c == '\'') {
        char_literal();
        line_had_code_ = true;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.tokens.push_back(identifier());
        line_had_code_ = true;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.tokens.push_back(number());
        line_had_code_ = true;
        continue;
      }
      // `::` is one token so rules can tell scope resolution from a
      // range-for colon without extra lookahead.
      if (c == ':' && peek(1) == ':') {
        out.tokens.push_back({"::", line_});
        pos_ += 2;
        line_had_code_ = true;
        continue;
      }
      out.tokens.push_back({std::string(1, c), line_});
      ++pos_;
      line_had_code_ = true;
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  Comment line_comment() {
    Comment c{"", line_, line_had_code_};
    pos_ += 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') c.text += src_[pos_++];
    return c;
  }

  Comment block_comment() {
    Comment c{"", line_, line_had_code_};
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') {
        ++line_;
        line_had_code_ = false;
      }
      c.text += src_[pos_++];
    }
    pos_ = pos_ + 2 <= src_.size() ? pos_ + 2 : src_.size();
    return c;
  }

  void preprocessor_line(LexResult& out) {
    const int start_line = line_;
    std::string text;
    // Collect the full logical line (honoring backslash continuations).
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '/' && peek(1) == '/') break;  // trailing comment
      text += src_[pos_++];
    }
    // Only #include carries rule-relevant structure; other directives are
    // opaque to every current rule.
    std::size_t i = 1;  // past '#'
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (text.compare(i, 7, "include") == 0) {
      i += 7;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      if (i < text.size() && (text[i] == '"' || text[i] == '<')) {
        const char close = text[i] == '"' ? '"' : '>';
        const bool quoted = text[i] == '"';
        std::string target;
        for (++i; i < text.size() && text[i] != close; ++i) target += text[i];
        out.includes.push_back({target, quoted, start_line});
      }
    }
  }

  void string_literal() {
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\') ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void raw_string() {
    // R"delim( ... )delim"  — the R token was already emitted; swallow the
    // rest so nothing inside reaches the rules.
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    const std::string close = ")" + delim + "\"";
    const std::size_t end = src_.find(close, pos_);
    const std::size_t stop = end == std::string::npos ? src_.size() : end + close.size();
    for (; pos_ < stop; ++pos_) {
      if (src_[pos_] == '\n') ++line_;
    }
  }

  void char_literal() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
  }

  Token identifier() {
    Token t{"", line_};
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      t.text += src_[pos_++];
    }
    return t;
  }

  Token number() {
    Token t{"", line_};
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' || src_[pos_] == '\'')) {
      t.text += src_[pos_++];
    }
    return t;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_had_code_ = false;
};

}  // namespace sglint
