# Pins the `sglint --machine` output format (path:line:rule:message, sorted)
# against a checked-in golden file.
#
#   cmake -DSGLINT=<binary> -DFIXTURE=<file> -DGOLDEN=<file> -P golden_test.cmake
execute_process(
  COMMAND ${SGLINT} --machine ${FIXTURE}
  OUTPUT_VARIABLE got
  RESULT_VARIABLE rc)
if(rc GREATER 1)
  message(FATAL_ERROR "sglint --machine failed to run (exit ${rc})")
endif()
file(READ ${GOLDEN} want)
if(NOT got STREQUAL want)
  message(FATAL_ERROR "sglint --machine output drifted from the golden file "
                      "${GOLDEN}\n--- got ---\n${got}--- want ---\n${want}")
endif()
