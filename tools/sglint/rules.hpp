// sg-lint rule engine: project determinism invariants as named, suppressible
// checks over the token stream produced by lexer.hpp.
//
//   D1  no iteration over std::unordered_map / std::unordered_set —
//       hash-order iteration is the canonical source of run-to-run
//       divergence in decision and export paths. Lookups (find/count/at/[])
//       are fine; range-for and .begin()/.cbegin() are not.
//   D2  no ambient randomness or wall-clock reads in simulation code: all
//       randomness flows through sg::Rng, all time through the simulator
//       clock. Bans std::random_device, rand, srand, std::time,
//       system_clock/steady_clock/high_resolution_clock, clock_gettime,
//       gettimeofday, timespec_get.
//   D3  no float/double keys or values in unordered containers — FP
//       accumulation in hash order is order-sensitive even without explicit
//       iteration (rehash changes bucket walk of internal operations, and
//       any future iteration silently inherits the hazard).
//   D4  no raw new/delete outside src/common/ — ownership goes through
//       containers and smart pointers; raw allocation in sim code has
//       repeatedly been the source of leak-driven address reuse, which
//       perturbs pointer-keyed containers between runs.
//   D5  no threading primitives (std::thread/jthread, std::mutex family,
//       std::atomic, std::condition_variable) outside src/sim/shard* and
//       src/common/ — the sharded event loop owns ALL cross-thread
//       synchronization (DESIGN.md §8). Ad-hoc threading anywhere else
//       bypasses the conservative-sync protocol and its determinism proof.
//       Replication-level parallelism (driving many independent
//       simulations) is legitimate and suppressed explicitly.
//   H1  include hygiene: a .cpp includes its own header first (catches
//       headers that are not self-contained), and headers never contain
//       `using namespace`.
//   A0  malformed suppression: `sglint: allow(...)` without a justification
//       string. An unexplained suppression is itself a finding, so the
//       requirement cannot be bypassed silently.
//   U1-U4  flow-aware unit-safety rules (TimePoint/Duration mixing, raw
//       time literals, quantity narrowing, dimension mismatches) — see
//       units.hpp for the analyzer and the allowed-operation tables.
//
// Suppression syntax (trailing comment governs its own line, a whole-line
// comment governs the next line):
//
//   code();  // sglint: allow(D1) hash map is snapshot-sorted two lines down
//
// The reason text is mandatory; rule lists may be comma-separated.
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "units.hpp"

namespace sglint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A parsed `sglint: allow(...)` or `sglint: expect(...)` directive.
struct Directive {
  std::string kind;  // "allow" or "expect"
  std::vector<std::string> rules;
  std::string reason;  // text after the closing paren, trimmed
  int target_line = 0;  // source line the directive governs
  int line = 0;         // line the comment itself sits on
};

inline std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Extracts sglint directives from the file's comments.
inline std::vector<Directive> parse_directives(
    const std::vector<Comment>& comments) {
  std::vector<Directive> out;
  for (const Comment& c : comments) {
    const std::string text = trim(c.text);
    const std::size_t tag = text.find("sglint:");
    if (tag == std::string::npos) continue;
    std::size_t i = tag + 7;
    while (i < text.size()) {
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      std::string kind;
      while (i < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[i]))) {
        kind += text[i++];
      }
      if ((kind != "allow" && kind != "expect") || i >= text.size() ||
          text[i] != '(') {
        break;
      }
      Directive d;
      d.kind = kind;
      d.line = c.line;
      d.target_line = c.code_before ? c.line : c.line + 1;
      std::string rule;
      for (++i; i < text.size() && text[i] != ')'; ++i) {
        if (text[i] == ',') {
          if (!trim(rule).empty()) d.rules.push_back(trim(rule));
          rule.clear();
        } else {
          rule += text[i];
        }
      }
      if (!trim(rule).empty()) d.rules.push_back(trim(rule));
      if (i < text.size()) ++i;  // ')'
      // Reason: everything up to the next directive on the same comment.
      const std::size_t reason_end =
          std::min({text.size(), text.find("allow(", i), text.find("expect(", i)});
      d.reason = trim(text.substr(i, reason_end - i));
      out.push_back(d);
      i = reason_end;
    }
  }
  return out;
}

class RuleEngine {
 public:
  /// Seeds the unordered-name set from another file's tokens — used to make
  /// data members declared in a .cpp's paired header visible when linting
  /// the .cpp (the header reports its own D3 findings when linted itself).
  void seed_declarations(const LexResult& lex) {
    collect_unordered_decls(lex.tokens, /*report_d3=*/false);
    units_.seed_declarations(lex);
  }

  /// `relative_path` decides path-scoped rules (D4 exempts src/common/).
  std::vector<Finding> run(const std::string& relative_path,
                           const LexResult& lex) {
    file_ = relative_path;
    findings_.clear();
    const std::vector<Directive> directives = parse_directives(lex.comments);

    collect_unordered_decls(lex.tokens, /*report_d3=*/true);
    rule_d1_iteration(lex.tokens);
    rule_d2_time_and_rng(lex.tokens);
    rule_d4_raw_new_delete(lex.tokens);
    rule_d5_threading_primitives(lex.tokens);
    rule_h1_include_hygiene(lex);
    rule_a0_malformed_suppressions(directives);
    // The quantity layer itself is where the raw algebra is legal by
    // definition (it implements the operator tables the U rules enforce),
    // so it is exempt — the same way src/common/ may use raw new (D4).
    if (file_ != "src/common/time.hpp") {
      for (const UnitFinding& u : units_.run(lex)) {
        add(u.line, u.rule, u.message);
      }
    }

    apply_suppressions(directives);
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return findings_;
  }

 private:
  void add(int line, const std::string& rule, const std::string& message) {
    findings_.push_back({file_, line, rule, message});
  }

  static bool is_ident(const std::string& t) {
    return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) ||
                          t[0] == '_');
  }

  bool ends_with(const std::string& s, const std::string& suffix) const {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  /// Skips a balanced <...> starting at tokens[i] == "<". Returns the index
  /// one past the closing ">", collecting the argument tokens.
  static std::size_t skip_template_args(const std::vector<Token>& toks,
                                        std::size_t i,
                                        std::vector<std::string>* args) {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return i + 1;
      } else if (depth > 0 && args != nullptr) {
        args->push_back(t);
      }
    }
    return i;
  }

  /// Pass 1: names declared with an unordered container type (variables and
  /// data members, including `using` aliases and declarations through them);
  /// also fires D3 when the template arguments contain float/double. Names
  /// accumulate across calls so seed_declarations() can contribute.
  void collect_unordered_decls(const std::vector<Token>& toks,
                               bool report_d3) {
    std::set<std::string> aliases;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t != "unordered_map" && t != "unordered_set" &&
          t != "unordered_multimap" && t != "unordered_multiset") {
        continue;
      }
      const int decl_line = toks[i].line;
      std::size_t j = i + 1;
      std::vector<std::string> targs;
      if (j < toks.size() && toks[j].text == "<") {
        j = skip_template_args(toks, j, &targs);
      }
      if (report_d3 &&
          (std::find(targs.begin(), targs.end(), "float") != targs.end() ||
           std::find(targs.begin(), targs.end(), "double") != targs.end())) {
        add(decl_line, "D3",
            "float/double in an unordered container: accumulation order "
            "follows hash order; use std::map or an ordered snapshot");
      }
      // `using Alias = std::unordered_map<...>` — remember the alias so
      // declarations through it are tracked too.
      if (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
          i >= 4 && toks[i - 3].text == "=" && is_ident(toks[i - 4].text)) {
        if (i >= 5 && toks[i - 5].text == "using") {
          aliases.insert(toks[i - 4].text);
          continue;
        }
      }
      // Declarator names: `std::unordered_map<K,V> a, *b, &c;`. A name
      // followed by '(' is a function returning the container — returning
      // one is fine, iterating it is what D1 polices at the call site.
      while (j < toks.size()) {
        const std::string& d = toks[j].text;
        if (d == "*" || d == "&" || d == "const") {
          ++j;
          continue;
        }
        if (!is_ident(d)) break;
        const bool is_function =
            j + 1 < toks.size() && toks[j + 1].text == "(";
        if (!is_function) unordered_names_.insert(d);
        ++j;
        if (j < toks.size() && toks[j].text == ",") {
          ++j;
          continue;
        }
        break;
      }
    }
    // Second sweep: declarations through recorded aliases.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (aliases.count(toks[i].text) == 0) continue;
      std::size_t j = i + 1;
      while (j < toks.size() && (toks[j].text == "*" || toks[j].text == "&" ||
                                 toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && is_ident(toks[j].text) &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        unordered_names_.insert(toks[j].text);
      }
    }
  }

  /// D1: range-for over an unordered-declared name, or .begin()/.cbegin()
  /// on one (feeding iterator loops, std algorithms, or bulk-copy
  /// constructors — every spelling of "walk it in hash order").
  void rule_d1_iteration(const std::vector<Token>& toks) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text == "for" && toks[i + 1].text == "(") {
        std::size_t colon = 0;
        int depth = 0;
        std::size_t close = toks.size();
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          const std::string& t = toks[j].text;
          if (t == "(") ++depth;
          if (t == ")" && --depth == 0) {
            close = j;
            break;
          }
          if (t == ":" && depth == 1 && colon == 0) colon = j;
          if (t == ";" && depth == 1) break;  // classic for, not range-for
        }
        if (colon != 0) {
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (unordered_names_.count(toks[j].text) != 0) {
              add(toks[i].line, "D1",
                  "iteration over unordered container '" + toks[j].text +
                      "': order is hash-dependent; use std::map or a "
                      "sorted snapshot");
              break;
            }
          }
        }
      }
      if ((toks[i + 1].text == "begin" || toks[i + 1].text == "cbegin") &&
          i + 2 < toks.size() && toks[i + 2].text == "(" &&
          toks[i].text == "." && i >= 1 &&
          unordered_names_.count(toks[i - 1].text) != 0) {
        add(toks[i].line, "D1",
            "begin() on unordered container '" + toks[i - 1].text +
                "': traversal order is hash-dependent; use std::map or a "
                "sorted snapshot");
      }
    }
  }

  /// D2: ambient randomness / wall-clock reads.
  void rule_d2_time_and_rng(const std::vector<Token>& toks) {
    static const std::set<std::string> kBanned = {
        "random_device", "srand",         "system_clock",
        "steady_clock",  "high_resolution_clock", "clock_gettime",
        "gettimeofday",  "timespec_get",
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (kBanned.count(t) != 0) {
        add(toks[i].line, "D2",
            "'" + t +
                "' in simulation code: randomness must come from sg::Rng "
                "and time from the simulator clock");
        continue;
      }
      // rand() / std::rand() — the bare identifier is too common as a
      // fragment, so require the call shape.
      if (t == "rand" && i + 1 < toks.size() && toks[i + 1].text == "(" &&
          (i == 0 || toks[i - 1].text != ".")) {
        add(toks[i].line, "D2",
            "'rand()' in simulation code: use sg::Rng (seeded, forkable, "
            "reproducible)");
      }
      // std::time(...) — bare `time` is ubiquitous (fields, locals), so
      // only the namespace-qualified call is flagged.
      if (t == "time" && i >= 2 && toks[i - 1].text == "::" &&
          toks[i - 2].text == "std" && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        add(toks[i].line, "D2",
            "'std::time' in simulation code: time must come from the "
            "simulator clock");
      }
    }
  }

  /// D4: raw new/delete outside src/common/.
  void rule_d4_raw_new_delete(const std::vector<Token>& toks) {
    if (file_.rfind("src/common/", 0) == 0) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      const std::string prev = i > 0 ? toks[i - 1].text : "";
      if (t == "new" && prev != "operator") {
        add(toks[i].line, "D4",
            "raw 'new' outside src/common/: own it with a container or "
            "std::make_unique/make_shared");
      }
      if (t == "delete" && prev != "operator" && prev != "=") {
        add(toks[i].line, "D4",
            "raw 'delete' outside src/common/: ownership belongs to a "
            "smart pointer or container");
      }
    }
  }

  /// D5: threading primitives outside src/sim/shard* and src/common/.
  /// Only the std::-qualified name is flagged (bare `mutex`/`atomic` are
  /// common as locals and fields), mirroring D2's std::time handling.
  void rule_d5_threading_primitives(const std::vector<Token>& toks) {
    if (file_.rfind("src/common/", 0) == 0) return;
    if (file_.rfind("src/sim/shard", 0) == 0) return;
    static const std::set<std::string> kPrimitives = {
        "thread",        "jthread",
        "mutex",         "recursive_mutex",
        "timed_mutex",   "shared_mutex",
        "shared_timed_mutex",
        "atomic",        "atomic_flag",
        "atomic_ref",
        "condition_variable", "condition_variable_any",
    };
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (kPrimitives.count(t) == 0) continue;
      if (toks[i - 1].text != "::" || toks[i - 2].text != "std") continue;
      add(toks[i].line, "D5",
          "'std::" + t +
              "' outside src/sim/shard*: cross-thread synchronization "
              "belongs to the sharded event loop (DESIGN.md §8)");
    }
  }

  /// H1: own header first in a .cpp; no `using namespace` in headers.
  void rule_h1_include_hygiene(const LexResult& lex) {
    const bool is_header = ends_with(file_, ".hpp") || ends_with(file_, ".h");
    if (is_header) {
      for (std::size_t i = 0; i + 1 < lex.tokens.size(); ++i) {
        if (lex.tokens[i].text == "using" &&
            lex.tokens[i + 1].text == "namespace") {
          add(lex.tokens[i].line, "H1",
              "'using namespace' in a header leaks into every includer");
        }
      }
      return;
    }
    if (!ends_with(file_, ".cpp") || lex.includes.empty()) return;
    std::string stem = file_;
    const std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos) stem = stem.substr(slash + 1);
    stem = stem.substr(0, stem.size() - 4);  // drop ".cpp"
    for (std::size_t i = 0; i < lex.includes.size(); ++i) {
      const Include& inc = lex.includes[i];
      std::string base = inc.target;
      const std::size_t s = base.find_last_of('/');
      if (s != std::string::npos) base = base.substr(s + 1);
      if (inc.quoted && (base == stem + ".hpp" || base == stem + ".h")) {
        if (i != 0) {
          add(inc.line, "H1",
              "own header must be the first include (proves it is "
              "self-contained)");
        }
        break;
      }
    }
  }

  /// A0: allow() without a justification.
  void rule_a0_malformed_suppressions(const std::vector<Directive>& ds) {
    for (const Directive& d : ds) {
      if (d.kind == "allow" && d.reason.empty()) {
        add(d.line, "A0",
            "suppression without justification: write 'sglint: "
            "allow(RULE) <reason>'");
      }
    }
  }

  void apply_suppressions(const std::vector<Directive>& ds) {
    std::map<int, std::set<std::string>> allowed;
    for (const Directive& d : ds) {
      if (d.kind != "allow" || d.reason.empty()) continue;
      for (const std::string& r : d.rules) allowed[d.target_line].insert(r);
    }
    if (allowed.empty()) return;
    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      const auto it = allowed.find(f.line);
      if (it != allowed.end() && it->second.count(f.rule) != 0) continue;
      kept.push_back(std::move(f));
    }
    findings_ = std::move(kept);
  }

  std::string file_;
  std::set<std::string> unordered_names_;
  std::vector<Finding> findings_;
  UnitAnalyzer units_;
};

}  // namespace sglint
