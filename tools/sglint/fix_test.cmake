# End-to-end contract of `sglint --fix`:
#   1. the fixable corpus has findings before fixing,
#   2. --fix --dry-run prints a diff but modifies nothing,
#   3. --fix makes the corpus scan clean.
#
#   cmake -DSGLINT=<binary> -DSRC_DIR=<fixable corpus> -DWORK_DIR=<scratch>
#         -P fix_test.cmake
file(REMOVE_RECURSE ${WORK_DIR})
file(COPY ${SRC_DIR}/ DESTINATION ${WORK_DIR})

execute_process(COMMAND ${SGLINT} ${WORK_DIR} RESULT_VARIABLE rc_before)
if(rc_before EQUAL 0)
  message(FATAL_ERROR "fixable corpus scanned clean before --fix — the "
                      "fixtures no longer exercise the fixer")
endif()

execute_process(COMMAND ${SGLINT} --fix --dry-run ${WORK_DIR}
                OUTPUT_VARIABLE dry_out RESULT_VARIABLE rc_dry)
if(NOT rc_dry EQUAL 0)
  message(FATAL_ERROR "sglint --fix --dry-run failed (exit ${rc_dry})")
endif()
if(NOT dry_out MATCHES "would fix")
  message(FATAL_ERROR "--dry-run did not report pending fixes:\n${dry_out}")
endif()

execute_process(COMMAND ${SGLINT} ${WORK_DIR} RESULT_VARIABLE rc_still)
if(rc_still EQUAL 0)
  message(FATAL_ERROR "--dry-run modified the tree (scan is clean without "
                      "--fix having run)")
endif()

execute_process(COMMAND ${SGLINT} --fix ${WORK_DIR}
                OUTPUT_VARIABLE fix_out RESULT_VARIABLE rc_fix)
if(NOT rc_fix EQUAL 0)
  message(FATAL_ERROR "sglint --fix failed (exit ${rc_fix}):\n${fix_out}")
endif()

execute_process(COMMAND ${SGLINT} ${WORK_DIR} RESULT_VARIABLE rc_after
                OUTPUT_VARIABLE after_out)
if(NOT rc_after EQUAL 0)
  message(FATAL_ERROR "corpus still has findings after --fix:\n${after_out}")
endif()
